//===--- Interpreter.h - IR execution engine --------------------*- C++ -*-===//
//
// Executes the mini-IR directly, so that generated code — including the
// outlined parallel regions calling into the OpenMP runtime — actually
// runs, on real threads. This is the testbed substitute that lets every
// transformation be validated end-to-end (DESIGN.md substitution #4).
//
// Two backends share this interface (DESIGN.md "Bytecode execution
// engine"): the tree-walking reference interpreter, and a register-
// allocated bytecode engine that translates each function once into a
// flat instruction array executed by a direct-threaded dispatch loop.
// Both produce bit-identical results; the differential corpus pins that.
//
// Memory model: allocas and globals live in host memory; IR 'ptr' values
// are host addresses. Runtime entry points (__kmpc_*) are bound natively to
// the mini-kmp runtime; additional externals (e.g. a test's "body"
// recorder) can be registered per engine.
//
// Thread safety: after construction the engine is immutable except for
// statistics; runFunction may be called concurrently from team threads.
// In particular the bytecode table (translated eagerly in the
// constructor) is published read-only — hot-team threads invoke outlined
// regions with zero re-translation and zero locking.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_INTERP_INTERPRETER_H
#define MCC_INTERP_INTERPRETER_H

#include "interp/Bytecode.h"
#include "ir/IR.h"

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace mcc::interp {

namespace jit {
struct CompiledFunction; // see jit/JIT.h — the native execution tier
}

/// A runtime value: integers & pointers in I (pointers as host addresses),
/// doubles in D. The static IR type decides which field is meaningful.
struct RTValue {
  std::int64_t I = 0;
  double D = 0.0;

  static RTValue ofInt(std::int64_t V) {
    RTValue R;
    R.I = V;
    return R;
  }
  static RTValue ofDouble(double V) {
    RTValue R;
    R.D = V;
    return R;
  }
  static RTValue ofPtr(void *P) {
    return ofInt(static_cast<std::int64_t>(reinterpret_cast<std::intptr_t>(P)));
  }
  [[nodiscard]] void *asPtr() const {
    return reinterpret_cast<void *>(static_cast<std::intptr_t>(I));
  }
};

using ExternalFn = std::function<RTValue(std::span<const RTValue>)>;

/// Which execution backend an engine uses. Default defers the choice to
/// the MCC_EXEC_ENGINE environment variable (bytecode when unset), so the
/// knob stays a plain enum in CompilerOptions without dragging a link
/// dependency into every driver consumer. Native compiles every function
/// to machine code up front (unsupported ones fall back to bytecode);
/// Tiered starts on bytecode and promotes hot functions — mid-loop, via
/// on-stack replacement — to native.
enum class ExecEngineKind : std::uint8_t {
  Walker,
  Bytecode,
  Native,
  Tiered,
  Default,
};

/// Parses "walker" / "bytecode" / "native" / "tiered" (anything else:
/// Default with false return).
bool parseExecEngineKind(std::string_view Name, ExecEngineKind &Out);
const char *execEngineKindName(ExecEngineKind K);
/// Resolves Default against MCC_EXEC_ENGINE; identity otherwise.
ExecEngineKind resolveExecEngineKind(ExecEngineKind K);
/// Non-empty diagnostic when MCC_EXEC_ENGINE is set to an unrecognized
/// name. resolveExecEngineKind() stays permissive (library users get the
/// default engine); drivers call this at startup so a typo'd environment
/// fails as loudly as a typo'd --exec-engine= flag.
std::string execEngineEnvError();
/// Same contract for the native-tier knobs: non-empty diagnostic when
/// MCC_JIT_CALL_THRESHOLD / MCC_JIT_OSR_THRESHOLD is not a positive
/// 32-bit decimal or MCC_JIT_FORCE_FALLBACK_OP names no bytecode op.
/// The engine itself stays permissive and keeps its defaults.
std::string jitEnvError();

/// Point-in-time execution statistics (see renderExecStats()).
struct ExecStats {
  ExecEngineKind Engine = ExecEngineKind::Walker;
  const char *Dispatch = "tree-walk";
  std::uint64_t FunctionsPrepared = 0;
  bool TranslatedHere = false; ///< false: bytecode came precompiled (L3 hit)
  std::uint64_t BytecodeBytes = 0;
  std::uint64_t SuperinstsEmitted = 0;
  std::uint64_t InstructionsExecuted = 0;
  std::uint64_t SuperinstHits = 0;
  std::uint64_t FramesExecuted = 0;
  std::uint64_t RuntimeCalls = 0;
  // Native-tier counters (zero unless the engine is Native or Tiered).
  // Native frames do not contribute to InstructionsExecuted — machine
  // code does not count bytecode steps.
  std::uint64_t JITFunctionsCompiled = 0;
  std::uint64_t JITCodeBytes = 0;
  std::uint64_t JITOSRPromotions = 0;
  std::uint64_t JITFallbacks = 0; ///< functions kept on bytecode
  std::uint64_t JITNativeFrames = 0;
  std::uint64_t JITRegAllocSlots = 0;  ///< frame slots promoted to registers
  std::uint64_t JITSpills = 0;         ///< spill/reload sites emitted
  std::uint64_t JITFusedTemplates = 0; ///< fused native templates + peepholes
  /// CallBC sites compiled with an inline native→native fast path. A
  /// compile-time count: each site also keeps its helper slow path for
  /// not-yet-compiled callees, so this counts patched sites, not calls.
  std::uint64_t JITDirectCallSites = 0;
};

class ExecutionEngine {
public:
  /// Translation (for the bytecode backend) happens here, eagerly, so the
  /// engine is immutable — and therefore lock-free — afterwards. Passing
  /// \p Precompiled (e.g. from an L3 compile-service artifact) skips
  /// translation entirely; it must have been compiled from \p M.
  explicit ExecutionEngine(
      const ir::Module &M, ExecEngineKind Kind = ExecEngineKind::Default,
      std::shared_ptr<const bc::BytecodeModule> Precompiled = nullptr);
  ~ExecutionEngine();
  ExecutionEngine(const ExecutionEngine &) = delete;
  ExecutionEngine &operator=(const ExecutionEngine &) = delete;

  /// Binds a declared (body-less) function to a host implementation.
  /// Must be called before any runFunction.
  void bindExternal(const std::string &Name, ExternalFn Fn);

  RTValue runFunction(const ir::Function *F, std::vector<RTValue> Args);
  RTValue runFunction(const std::string &Name, std::vector<RTValue> Args);

  /// Host address of a global variable's storage.
  [[nodiscard]] void *getGlobalAddress(const std::string &Name) const;

  /// Total instructions interpreted (across all threads). The walker
  /// counts IR instructions; the bytecode engine counts bytecode
  /// instructions (a fused superinstruction counts once).
  [[nodiscard]] std::uint64_t getInstructionsExecuted() const {
    return InstructionsExecuted.load(std::memory_order_relaxed);
  }

  /// The backend this engine resolved to (never Default).
  [[nodiscard]] ExecEngineKind getKind() const { return Kind; }

  [[nodiscard]] ExecStats statsSnapshot() const;
  /// Renders statsSnapshot() in the --rt-stats block style.
  [[nodiscard]] std::string renderExecStats() const;
  /// Renders statsSnapshot() as a single JSON object (--exec-stats=json).
  [[nodiscard]] std::string renderExecStatsJSON() const;

  /// Quiesces the shared OpenMP runtime: joins the hot-team worker pool
  /// and zeroes its counters. Tests that assert exact runtime statistics
  /// (or want a TSan-clean exit) call this between runs; the pool
  /// respawns lazily on the next fork.
  static void resetOpenMPRuntime();

  [[nodiscard]] const ir::Module &getModule() const { return M; }

private:
  struct FunctionInfo {
    // Slot indices for arguments and instructions producing values.
    std::map<const ir::Value *, unsigned> Slots;
    unsigned NumSlots = 0;
    // Fixed-size allocas coalesced into one per-frame arena: instruction
    // -> (arena offset, byte size). Variable-count allocas fall back to
    // the heap.
    std::map<const ir::Instruction *, std::pair<std::size_t, std::size_t>>
        FixedAllocas;
    std::size_t ArenaBytes = 0;
  };

  const FunctionInfo &getInfo(const ir::Function *F);
  RTValue interpret(const ir::Function *F, std::span<const RTValue> Args);
  RTValue executeBytecode(std::uint32_t FnIdx, std::span<const RTValue> Args);
  /// Non-walker dispatch: native unit when one is published (compiling
  /// lazily in Tiered mode once a function is hot), bytecode otherwise.
  RTValue executeTiered(std::uint32_t FnIdx, std::span<const RTValue> Args);
  /// Runs a whole frame natively (frame setup identical to bytecode).
  RTValue runNative(std::uint32_t FnIdx, const jit::CompiledFunction &CF,
                    std::span<const RTValue> Args);
  /// Enters native code on an existing frame at a bytecode instruction
  /// boundary — the shared path of runNative and OSR promotion.
  RTValue enterNative(const jit::CompiledFunction &CF,
                      const bc::BCFunction &BF, RTValue *Frame, char *Arena,
                      std::vector<void *> *Dyn, std::uint32_t ResumeIdx);
  /// On-stack replacement: promotes a hot *running* bytecode frame. True
  /// when the frame completed natively (result in Out); false when the
  /// function is a fallback unit and the caller should stop probing.
  bool tryOSR(std::uint32_t FnIdx, RTValue *Frame, char *Arena,
              std::uint32_t TargetIdx, std::vector<void *> &Dyn,
              RTValue &Out);
  /// Returns the published unit, compiling and publishing on first call.
  const jit::CompiledFunction *jitUnitFor(std::uint32_t FnIdx);
  void initJITTier();
  /// Dispatches a call to a *defined* function through the active backend
  /// (the runtime's fork_call trampoline funnels through here too).
  RTValue invokeDefined(const ir::Function *F, std::span<const RTValue> Args);
  RTValue callRuntime(const std::string &Name,
                      std::span<const RTValue> Args);
  RTValue callRuntimeResolved(bc::RTCallee Callee, const std::string &Name,
                              std::span<const RTValue> Args);

  const ir::Module &M;
  ExecEngineKind Kind;
  std::map<const ir::Function *, FunctionInfo> Infos;
  std::map<std::string, ExternalFn> Externals;
  std::map<const ir::GlobalVariable *, void *> GlobalStorage;

  /// Bytecode backend state: the shared immutable translation plus this
  /// engine's constant pools with global relocations applied (frame
  /// prefix templates; one flat array indexed via PoolOffsets).
  std::shared_ptr<const bc::BytecodeModule> BCMod;
  std::vector<RTValue> PatchedPools;
  std::vector<std::size_t> PoolOffsets;
  bool TranslatedHere = false;

  /// Native-tier state (publication table, compile lock, host helper
  /// table; defined in JITTier.h). Null unless Kind is Native or Tiered.
  struct JITState;
  friend struct JITHelpers; ///< host helpers called from generated code
  std::unique_ptr<JITState> JIT;
  /// Hot-loop promotion is armed only in Tiered mode; the bytecode loop
  /// pays one predictable branch per taken backward branch for it.
  bool OSRActive = false;
  std::uint32_t OSRThreshold = 0;

  std::atomic<std::uint64_t> InstructionsExecuted{0};
  std::atomic<std::uint64_t> SuperinstHits{0};
  std::atomic<std::uint64_t> FramesExecuted{0};
  std::atomic<std::uint64_t> RuntimeCalls{0};
  std::atomic<std::uint64_t> JITCompiled{0};
  std::atomic<std::uint64_t> JITCodeBytes{0};
  std::atomic<std::uint64_t> JITFallbackFns{0};
  std::atomic<std::uint64_t> JITOSRPromotions{0};
  std::atomic<std::uint64_t> JITNativeFrames{0};
  std::atomic<std::uint64_t> JITRegAllocSlots{0};
  std::atomic<std::uint64_t> JITSpillSites{0};
  std::atomic<std::uint64_t> JITFusedTemplates{0};
  std::atomic<std::uint64_t> JITDirectCallSites{0};
};

} // namespace mcc::interp

#endif // MCC_INTERP_INTERPRETER_H
