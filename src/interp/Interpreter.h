//===--- Interpreter.h - IR execution engine --------------------*- C++ -*-===//
//
// Executes the mini-IR directly, so that generated code — including the
// outlined parallel regions calling into the OpenMP runtime — actually
// runs, on real threads. This is the testbed substitute that lets every
// transformation be validated end-to-end (DESIGN.md substitution #4).
//
// Memory model: allocas and globals live in host memory; IR 'ptr' values
// are host addresses. Runtime entry points (__kmpc_*) are bound natively to
// the mini-kmp runtime; additional externals (e.g. a test's "body"
// recorder) can be registered per engine.
//
// Thread safety: after construction the engine is immutable except for
// statistics; runFunction may be called concurrently from team threads.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_INTERP_INTERPRETER_H
#define MCC_INTERP_INTERPRETER_H

#include "ir/IR.h"

#include <atomic>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace mcc::interp {

/// A runtime value: integers & pointers in I (pointers as host addresses),
/// doubles in D. The static IR type decides which field is meaningful.
struct RTValue {
  std::int64_t I = 0;
  double D = 0.0;

  static RTValue ofInt(std::int64_t V) {
    RTValue R;
    R.I = V;
    return R;
  }
  static RTValue ofDouble(double V) {
    RTValue R;
    R.D = V;
    return R;
  }
  static RTValue ofPtr(void *P) {
    return ofInt(static_cast<std::int64_t>(reinterpret_cast<std::intptr_t>(P)));
  }
  [[nodiscard]] void *asPtr() const {
    return reinterpret_cast<void *>(static_cast<std::intptr_t>(I));
  }
};

using ExternalFn = std::function<RTValue(std::span<const RTValue>)>;

class ExecutionEngine {
public:
  explicit ExecutionEngine(const ir::Module &M);
  ~ExecutionEngine();
  ExecutionEngine(const ExecutionEngine &) = delete;
  ExecutionEngine &operator=(const ExecutionEngine &) = delete;

  /// Binds a declared (body-less) function to a host implementation.
  /// Must be called before any runFunction.
  void bindExternal(const std::string &Name, ExternalFn Fn);

  RTValue runFunction(const ir::Function *F, std::vector<RTValue> Args);
  RTValue runFunction(const std::string &Name, std::vector<RTValue> Args);

  /// Host address of a global variable's storage.
  [[nodiscard]] void *getGlobalAddress(const std::string &Name) const;

  /// Total instructions interpreted (across all threads).
  [[nodiscard]] std::uint64_t getInstructionsExecuted() const {
    return InstructionsExecuted.load(std::memory_order_relaxed);
  }

  /// Quiesces the shared OpenMP runtime: joins the hot-team worker pool
  /// and zeroes its counters. Tests that assert exact runtime statistics
  /// (or want a TSan-clean exit) call this between runs; the pool
  /// respawns lazily on the next fork.
  static void resetOpenMPRuntime();

  [[nodiscard]] const ir::Module &getModule() const { return M; }

private:
  struct FunctionInfo {
    // Slot indices for arguments and instructions producing values.
    std::map<const ir::Value *, unsigned> Slots;
    unsigned NumSlots = 0;
  };

  const FunctionInfo &getInfo(const ir::Function *F);
  RTValue interpret(const ir::Function *F, std::span<const RTValue> Args);
  RTValue callRuntime(const std::string &Name,
                      std::span<const RTValue> Args);

  const ir::Module &M;
  std::map<const ir::Function *, FunctionInfo> Infos;
  std::map<std::string, ExternalFn> Externals;
  std::map<const ir::GlobalVariable *, void *> GlobalStorage;
  std::atomic<std::uint64_t> InstructionsExecuted{0};
};

} // namespace mcc::interp

#endif // MCC_INTERP_INTERPRETER_H
