#include "lex/Preprocessor.h"

#include <algorithm>
#include <cassert>

namespace mcc {

bool Preprocessor::enterMainFile(const std::string &Path) {
  const MemoryBuffer *Buf = FM.getBuffer(Path);
  if (!Buf)
    return false;
  enterBuffer(SM.createFileID(Buf));
  return true;
}

void Preprocessor::enterBuffer(FileID FID) {
  IncludeStack.push_back(std::make_unique<Lexer>(FID, SM, Diags));
}

void Preprocessor::enterTokenStream(std::span<const Token> Toks) {
  assert(IncludeStack.empty() && Pending.empty() &&
         "replay cannot be mixed with live lexing");
  ReplayCur = Toks.data();
  ReplayEnd = Toks.data() + Toks.size();
}

void Preprocessor::defineCommandLineMacro(const std::string &Name,
                                          const std::string &Value) {
  // Lex the replacement text out of a synthetic buffer that the
  // SourceManager keeps alive.
  OwnedStrings.push_back(std::make_unique<std::string>(Value));
  auto Buf = MemoryBuffer::getMemBuffer(*OwnedStrings.back(),
                                        "<command line>");
  const MemoryBuffer *Raw = Buf.get();
  OwnedBuffers.push_back(std::move(Buf));
  FileID FID = SM.createFileID(Raw);
  Lexer L(FID, SM, Diags);
  MacroInfo MI;
  Token Tok;
  while (L.lex(Tok))
    MI.Body.push_back(Tok);
  Macros[Name] = std::move(MI);
}

bool Preprocessor::lexRawToken(Token &Tok) {
  while (!IncludeStack.empty()) {
    if (currentLexer().lex(Tok))
      return true;
    // EOF of this buffer.
    if (IncludeStack.size() == 1)
      return false; // caller emits tok::eof
    IncludeStack.pop_back();
  }
  return false;
}

void Preprocessor::lex(Token &Result) {
  if (ReplayCur) {
    // Replaying a cached, fully preprocessed stream: no directives, no
    // macro expansion, no include stack — just the recorded tokens.
    if (ReplayCur != ReplayEnd && !ReplayCur->is(tok::eof)) {
      Result = *ReplayCur++;
      return;
    }
    Result.startToken();
    Result.setKind(tok::eof);
    return;
  }
  while (true) {
    // Drain pending (macro-expanded / pragma-annotation) tokens first.
    if (!Pending.empty()) {
      PendingToken PT = Pending.front();
      Pending.pop_front();
      if (PT.Tok.is(tok::identifier)) {
        std::string Name(PT.Tok.getText());
        bool Hidden = PT.HideSet && PT.HideSet->count(Name);
        if (!Hidden && Macros.count(Name)) {
          if (expandMacro(PT.Tok, PT.HideSet))
            continue;
        }
      }
      Result = PT.Tok;
      return;
    }

    if (IncludeStack.empty() || ReachedEOF) {
      Result.startToken();
      Result.setKind(tok::eof);
      return;
    }

    Token Tok;
    if (!lexRawToken(Tok)) {
      ReachedEOF = true;
      if (!Conditionals.empty())
        Diags.report(SourceLocation(), diag::err_pp_unterminated_conditional);
      Result = Tok; // tok::eof
      return;
    }

    if (Tok.is(tok::hash) && Tok.isAtStartOfLine()) {
      handleDirective(Tok);
      continue;
    }

    if (isSkipping())
      continue;

    if (Tok.is(tok::identifier)) {
      std::string Name(Tok.getText());
      if (Macros.count(Name)) {
        if (expandMacro(Tok, nullptr))
          continue;
      }
    }

    Result = Tok;
    return;
  }
}

std::vector<Token> Preprocessor::readDirectiveTokens() {
  std::vector<Token> Toks;
  Token Tok;
  while (currentLexer().lex(Tok) && !Tok.is(tok::eod))
    Toks.push_back(Tok);
  return Toks;
}

void Preprocessor::skipToEod() {
  Token Tok;
  while (currentLexer().lex(Tok) && !Tok.is(tok::eod))
    ;
}

void Preprocessor::handleDirective(const Token &HashTok) {
  Lexer &L = currentLexer();
  L.setParsingPreprocessorDirective(true);

  Token DirTok;
  L.lex(DirTok);

  if (DirTok.is(tok::eod)) {
    // Null directive "#" alone on a line: valid, ignored.
    L.setParsingPreprocessorDirective(false);
    return;
  }

  std::string_view Dir = DirTok.getText();

  // Directives that must be processed even while skipping (to track
  // conditional nesting).
  if (Dir == "ifdef" || Dir == "ifndef" || Dir == "if") {
    if (Dir == "if")
      handleIf(true, /*IsIfdef=*/false);
    else
      handleIf(Dir == "ifdef", /*IsIfdef=*/true);
  } else if (Dir == "elif") {
    handleElif();
  } else if (Dir == "else") {
    handleElse(DirTok);
  } else if (Dir == "endif") {
    handleEndif(DirTok);
  } else if (isSkipping()) {
    skipToEod();
  } else if (Dir == "define") {
    handleDefine();
  } else if (Dir == "undef") {
    handleUndef();
  } else if (Dir == "include") {
    handleInclude(DirTok);
  } else if (Dir == "pragma") {
    handlePragma(DirTok);
  } else if (Dir == "error") {
    skipToEod();
    Diags.report(DirTok.getLocation(), diag::err_pp_unknown_directive)
        << "error (user #error directive)";
  } else {
    skipToEod();
    Diags.report(DirTok.getLocation(), diag::err_pp_unknown_directive)
        << std::string(Dir);
  }

  L.setParsingPreprocessorDirective(false);
  (void)HashTok;
}

void Preprocessor::handleDefine() {
  Lexer &L = currentLexer();
  Token NameTok;
  L.lex(NameTok);
  if (!NameTok.is(tok::identifier) &&
      !(NameTok.getKind() >= tok::kw_int)) { // keywords may be #defined too
    Diags.report(NameTok.getLocation(), diag::err_pp_expected_macro_name);
    skipToEod();
    return;
  }
  std::string Name(NameTok.getText());

  MacroInfo MI;
  MI.DefLoc = NameTok.getLocation();

  Token Tok;
  L.lex(Tok);
  // "NAME(" with no space => function-like macro.
  if (Tok.is(tok::l_paren) && !Tok.hasLeadingSpace()) {
    MI.IsFunctionLike = true;
    bool First = true;
    while (true) {
      L.lex(Tok);
      if (Tok.is(tok::r_paren) && First)
        break;
      if (!Tok.is(tok::identifier)) {
        Diags.report(Tok.getLocation(), diag::err_pp_expected_macro_name);
        skipToEod();
        return;
      }
      MI.Params.emplace_back(Tok.getText());
      First = false;
      L.lex(Tok);
      if (Tok.is(tok::r_paren))
        break;
      if (!Tok.is(tok::comma)) {
        Diags.report(Tok.getLocation(), diag::err_pp_expected_macro_name);
        skipToEod();
        return;
      }
    }
    L.lex(Tok);
  }

  while (!Tok.is(tok::eod)) {
    MI.Body.push_back(Tok);
    L.lex(Tok);
  }

  auto It = Macros.find(Name);
  if (It != Macros.end()) {
    Diags.report(MI.DefLoc, diag::warn_pp_macro_redefined) << Name;
    Diags.report(It->second.DefLoc, diag::note_pp_prev_definition);
  }
  Macros[Name] = std::move(MI);
}

void Preprocessor::handleUndef() {
  Lexer &L = currentLexer();
  Token NameTok;
  L.lex(NameTok);
  if (!NameTok.is(tok::identifier)) {
    Diags.report(NameTok.getLocation(), diag::err_pp_expected_macro_name);
    skipToEod();
    return;
  }
  Macros.erase(std::string(NameTok.getText()));
  skipToEod();
}

void Preprocessor::handleInclude(const Token &DirTok) {
  Lexer &L = currentLexer();
  Token Tok;
  L.lex(Tok);

  std::string Filename;
  if (Tok.is(tok::string_literal)) {
    std::string_view Text = Tok.getText();
    Filename = std::string(Text.substr(1, Text.size() - 2));
  } else if (Tok.is(tok::less)) {
    // <...> includes: accumulate raw token text until '>'.
    while (true) {
      L.lex(Tok);
      if (Tok.is(tok::greater) || Tok.is(tok::eod))
        break;
      Filename += std::string(Tok.getText());
    }
    if (!Tok.is(tok::greater)) {
      Diags.report(DirTok.getLocation(), diag::err_pp_expected_filename);
      return;
    }
  } else {
    Diags.report(Tok.getLocation(), diag::err_pp_expected_filename);
    skipToEod();
    return;
  }
  skipToEod();

  if (IncludeStack.size() >= MaxIncludeDepth) {
    Diags.report(DirTok.getLocation(), diag::err_pp_include_depth);
    return;
  }

  const MemoryBuffer *Buf = FM.getBuffer(Filename);
  if (!Buf) {
    for (const std::string &Dir : IncludeDirs) {
      Buf = FM.getBuffer(Dir + "/" + Filename);
      if (Buf)
        break;
    }
  }
  if (!Buf) {
    Diags.report(DirTok.getLocation(), diag::err_pp_file_not_found)
        << Filename;
    return;
  }
  // The directive-mode flag belongs to the *including* lexer; make sure the
  // included file starts in normal mode.
  currentLexer().setParsingPreprocessorDirective(false);
  enterBuffer(SM.createFileID(Buf));
}

void Preprocessor::handleIf(bool Sense, bool IsIfdef) {
  bool WasActive = !isSkipping();

  bool CondValue = false;
  if (IsIfdef) {
    Lexer &L = currentLexer();
    Token NameTok;
    L.lex(NameTok);
    if (!NameTok.is(tok::identifier)) {
      Diags.report(NameTok.getLocation(), diag::err_pp_expected_macro_name);
    } else {
      bool Defined = Macros.count(std::string(NameTok.getText())) != 0;
      CondValue = Sense ? Defined : !Defined;
    }
    skipToEod();
  } else {
    std::vector<Token> Toks = readDirectiveTokens();
    CondValue = WasActive && evaluateIfCondition(std::move(Toks));
  }

  ConditionalInfo CI;
  CI.ParentActive = WasActive;
  CI.Active = WasActive && CondValue;
  CI.TakenBranch = CI.Active;
  Conditionals.push_back(CI);
}

void Preprocessor::handleElif() {
  std::vector<Token> Toks = readDirectiveTokens();
  if (Conditionals.empty()) {
    Diags.report(SourceLocation(), diag::err_pp_else_without_if);
    return;
  }
  ConditionalInfo &CI = Conditionals.back();
  if (CI.ParentActive && !CI.TakenBranch) {
    CI.Active = evaluateIfCondition(std::move(Toks));
    CI.TakenBranch = CI.Active;
  } else {
    CI.Active = false;
  }
}

void Preprocessor::handleElse(const Token &DirTok) {
  skipToEod();
  if (Conditionals.empty()) {
    Diags.report(DirTok.getLocation(), diag::err_pp_else_without_if);
    return;
  }
  ConditionalInfo &CI = Conditionals.back();
  CI.Active = CI.ParentActive && !CI.TakenBranch && !CI.InElse;
  CI.TakenBranch = CI.TakenBranch || CI.Active;
  CI.InElse = true;
}

void Preprocessor::handleEndif(const Token &DirTok) {
  skipToEod();
  if (Conditionals.empty()) {
    Diags.report(DirTok.getLocation(), diag::err_pp_endif_without_if);
    return;
  }
  Conditionals.pop_back();
}

void Preprocessor::handlePragma(const Token &DirTok) {
  std::vector<Token> Toks = readDirectiveTokens();

  if (isSkipping())
    return;

  bool IsOpenMP = !Toks.empty() && Toks.front().is(tok::identifier) &&
                  Toks.front().getText() == "omp";
  if (!IsOpenMP || !OpenMPEnabled)
    return; // Unknown pragmas (and OpenMP with -fno-openmp) are discarded.

  // Fold into: annot_pragma_openmp <tokens after 'omp'> annot_pragma_openmp_end
  Token Begin;
  Begin.startToken();
  Begin.setKind(tok::annot_pragma_openmp);
  Begin.setLocation(Toks.front().getLocation());

  Token End;
  End.startToken();
  End.setKind(tok::annot_pragma_openmp_end);
  End.setLocation(Toks.back().getLocation());

  Pending.push_back({End, nullptr});
  for (auto It = Toks.rbegin(); It != Toks.rend() - 1; ++It)
    Pending.push_front({*It, nullptr});
  Pending.push_front({Begin, nullptr});
  (void)DirTok;
}

bool Preprocessor::expandMacro(
    const Token &NameTok, std::shared_ptr<std::set<std::string>> HideSet) {
  std::string Name(NameTok.getText());
  const MacroInfo &MI = Macros.at(Name);

  std::vector<std::vector<Token>> Args;
  if (MI.IsFunctionLike) {
    // Peek: the next token must be '('; otherwise this is not an invocation.
    Token Next;
    bool FromPending = false;
    PendingToken SavedPending;
    if (!Pending.empty()) {
      SavedPending = Pending.front();
      Next = SavedPending.Tok;
      FromPending = true;
    } else {
      if (!lexRawToken(Next)) {
        ReachedEOF = true;
        return false;
      }
    }
    if (!Next.is(tok::l_paren)) {
      // Not an invocation: re-queue what we peeked and emit the identifier.
      if (!FromPending)
        Pending.push_front({Next, nullptr});
      return false;
    }
    if (FromPending)
      Pending.pop_front();

    // Collect arguments, balancing parentheses.
    std::vector<Token> Current;
    int Depth = 1;
    while (Depth > 0) {
      Token Tok;
      if (!Pending.empty()) {
        Tok = Pending.front().Tok;
        Pending.pop_front();
      } else if (!lexRawToken(Tok)) {
        ReachedEOF = true;
        return false;
      }
      if (Tok.is(tok::l_paren))
        ++Depth;
      else if (Tok.is(tok::r_paren)) {
        --Depth;
        if (Depth == 0)
          break;
      } else if (Tok.is(tok::comma) && Depth == 1) {
        Args.push_back(std::move(Current));
        Current.clear();
        continue;
      }
      Current.push_back(Tok);
    }
    if (!Current.empty() || !Args.empty() || !MI.Params.empty())
      Args.push_back(std::move(Current));
  }

  auto NewHideSet = std::make_shared<std::set<std::string>>();
  if (HideSet)
    *NewHideSet = *HideSet;
  NewHideSet->insert(Name);

  // Substitute parameters and queue the replacement tokens.
  std::vector<PendingToken> Replacement;
  for (const Token &BodyTok : MI.Body) {
    if (MI.IsFunctionLike && BodyTok.is(tok::identifier)) {
      auto PIt = std::find(MI.Params.begin(), MI.Params.end(),
                           std::string(BodyTok.getText()));
      if (PIt != MI.Params.end()) {
        std::size_t Index =
            static_cast<std::size_t>(PIt - MI.Params.begin());
        if (Index < Args.size())
          for (const Token &ArgTok : Args[Index])
            Replacement.push_back({ArgTok, HideSet});
        continue;
      }
    }
    Replacement.push_back({BodyTok, NewHideSet});
  }
  for (auto It = Replacement.rbegin(); It != Replacement.rend(); ++It)
    Pending.push_front(*It);
  return true;
}

namespace {
/// Minimal recursive-descent evaluator for #if constant expressions.
class IfExprEvaluator {
public:
  IfExprEvaluator(const std::vector<Token> &Toks,
                  const std::map<std::string, MacroInfo> &Macros)
      : Toks(Toks), Macros(Macros) {
    EofTok.startToken();
    EofTok.setKind(tok::eof);
  }

  long long evaluate() { return parseLogicalOr(); }

private:
  const Token &peek() const {
    return Pos < Toks.size() ? Toks[Pos] : EofTok;
  }
  Token next() {
    Token T = peek();
    ++Pos;
    return T;
  }
  bool accept(tok::TokenKind K) {
    if (peek().is(K)) {
      ++Pos;
      return true;
    }
    return false;
  }

  long long parsePrimary() {
    Token T = next();
    if (T.is(tok::numeric_constant)) {
      std::string Text(T.getText());
      // Strip suffixes.
      while (!Text.empty() &&
             (Text.back() == 'u' || Text.back() == 'U' || Text.back() == 'l' ||
              Text.back() == 'L'))
        Text.pop_back();
      return std::stoll(Text, nullptr, 0);
    }
    if (T.is(tok::identifier)) {
      std::string Name(T.getText());
      if (Name == "defined") {
        bool Paren = accept(tok::l_paren);
        Token NameTok = next();
        if (Paren)
          accept(tok::r_paren);
        return Macros.count(std::string(NameTok.getText())) ? 1 : 0;
      }
      // Expand object-like macros whose body is a single literal; anything
      // else (including undefined identifiers) evaluates to 0, per C.
      auto It = Macros.find(Name);
      if (It != Macros.end() && !It->second.IsFunctionLike &&
          It->second.Body.size() == 1 &&
          It->second.Body[0].is(tok::numeric_constant)) {
        std::string Text(It->second.Body[0].getText());
        return std::stoll(Text, nullptr, 0);
      }
      return 0;
    }
    if (T.is(tok::l_paren)) {
      long long V = parseLogicalOr();
      accept(tok::r_paren);
      return V;
    }
    if (T.is(tok::exclaim))
      return !parsePrimary();
    if (T.is(tok::minus))
      return -parsePrimary();
    if (T.is(tok::plus))
      return parsePrimary();
    return 0;
  }

  long long parseMul() {
    long long L = parsePrimary();
    while (true) {
      if (accept(tok::star))
        L *= parsePrimary();
      else if (accept(tok::slash)) {
        long long R = parsePrimary();
        L = R ? L / R : 0;
      } else if (accept(tok::percent)) {
        long long R = parsePrimary();
        L = R ? L % R : 0;
      } else
        return L;
    }
  }

  long long parseAdd() {
    long long L = parseMul();
    while (true) {
      if (accept(tok::plus))
        L += parseMul();
      else if (accept(tok::minus))
        L -= parseMul();
      else
        return L;
    }
  }

  long long parseCompare() {
    long long L = parseAdd();
    while (true) {
      if (accept(tok::less))
        L = L < parseAdd();
      else if (accept(tok::greater))
        L = L > parseAdd();
      else if (accept(tok::lessequal))
        L = L <= parseAdd();
      else if (accept(tok::greaterequal))
        L = L >= parseAdd();
      else if (accept(tok::equalequal))
        L = L == parseAdd();
      else if (accept(tok::exclaimequal))
        L = L != parseAdd();
      else
        return L;
    }
  }

  long long parseLogicalAnd() {
    long long L = parseCompare();
    while (accept(tok::ampamp)) {
      long long R = parseCompare();
      L = L && R;
    }
    return L;
  }

  long long parseLogicalOr() {
    long long L = parseLogicalAnd();
    while (accept(tok::pipepipe)) {
      long long R = parseLogicalAnd();
      L = L || R;
    }
    return L;
  }

  const std::vector<Token> &Toks;
  const std::map<std::string, MacroInfo> &Macros;
  std::size_t Pos = 0;
  // Per-evaluator eof sentinel (deliberately not a function-local static:
  // service workers preprocess concurrently).
  Token EofTok;
};
} // namespace

bool Preprocessor::evaluateIfCondition(std::vector<Token> Toks) {
  IfExprEvaluator Eval(Toks, Macros);
  return Eval.evaluate() != 0;
}

} // namespace mcc
