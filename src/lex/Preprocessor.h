//===--- Preprocessor.h - Macro expansion, includes, OpenMP pragmas -*- C++ -*-===//
//
// The Preprocessor layer of the paper's Fig. 1. Sits between the Lexer and
// the Parser: the parser pulls fully preprocessed tokens from here.
//
// Supported: object-like and function-like #define (no # / ## operators),
// #undef, #include (virtual-FS backed), #ifdef/#ifndef/#if/#elif/#else/
// #endif with a constant-expression evaluator and defined(), and #pragma.
//
// "#pragma omp ..." is folded into the token stream as
//   annot_pragma_openmp <pragma tokens...> annot_pragma_openmp_end
// exactly like Clang, so OpenMP directives flow through the normal
// parser instead of a side channel. Tokens inside the pragma undergo macro
// expansion (OpenMP 5.1 requires this), enabling e.g.
//   #define TILE 32
//   #pragma omp tile sizes(TILE, TILE)
//
//===----------------------------------------------------------------------===//
#ifndef MCC_LEX_PREPROCESSOR_H
#define MCC_LEX_PREPROCESSOR_H

#include "lex/Lexer.h"
#include "support/FileManager.h"

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

namespace mcc {

/// A single macro definition.
struct MacroInfo {
  SourceLocation DefLoc;
  bool IsFunctionLike = false;
  std::vector<std::string> Params;
  std::vector<Token> Body;
};

class Preprocessor {
public:
  Preprocessor(FileManager &FM, SourceManager &SM, DiagnosticsEngine &Diags)
      : FM(FM), SM(SM), Diags(Diags) {}

  Preprocessor(const Preprocessor &) = delete;
  Preprocessor &operator=(const Preprocessor &) = delete;

  /// Starts preprocessing \p Path (resolved through the FileManager).
  /// Returns false if the file cannot be read.
  bool enterMainFile(const std::string &Path);

  /// Starts preprocessing an already-registered buffer.
  void enterBuffer(FileID FID);

  /// Replay mode: serves a previously produced, fully preprocessed token
  /// stream instead of lexing. Directive handling and macro expansion are
  /// bypassed entirely — the stream already went through them — which is
  /// what makes a cached token stream (compile service L1 artifact)
  /// replayable bit-for-bit. \p Toks (and the buffers its tokens' text and
  /// locations point into) must outlive this preprocessor; after the last
  /// token, lex() synthesizes eof indefinitely.
  void enterTokenStream(std::span<const Token> Toks);

  /// Produces the next preprocessed token.
  void lex(Token &Result);

  /// Define a macro from the command line ("-DNAME=VALUE" handling).
  void defineCommandLineMacro(const std::string &Name,
                              const std::string &Value);

  [[nodiscard]] bool isMacroDefined(const std::string &Name) const {
    return Macros.count(Name) != 0;
  }

  /// Include search directories for #include resolution.
  void addIncludeDir(std::string Dir) {
    IncludeDirs.push_back(std::move(Dir));
  }

  [[nodiscard]] SourceManager &getSourceManager() { return SM; }
  [[nodiscard]] DiagnosticsEngine &getDiagnostics() { return Diags; }

  /// True while OpenMP pragma recognition is enabled (-fopenmp). When off,
  /// "#pragma omp" lines are discarded like unknown pragmas.
  void setOpenMPEnabled(bool V) { OpenMPEnabled = V; }
  [[nodiscard]] bool isOpenMPEnabled() const { return OpenMPEnabled; }

private:
  struct PendingToken {
    Token Tok;
    // Macros that must not expand for this token (recursion prevention).
    std::shared_ptr<std::set<std::string>> HideSet;
  };

  struct ConditionalInfo {
    bool ParentActive;  // were we emitting tokens when the #if was seen
    bool TakenBranch;   // has any branch of this chain been taken yet
    bool Active;        // is the current branch emitting tokens
    bool InElse = false;
  };

  Lexer &currentLexer() { return *IncludeStack.back(); }
  bool lexRawToken(Token &Tok); // from the current lexer, popping includes

  void handleDirective(const Token &HashTok);
  void handleDefine();
  void handleUndef();
  void handleInclude(const Token &DirTok);
  void handleIf(bool Sense /*true: #if(def), false: #ifndef*/, bool IsIfdef);
  void handleElif();
  void handleElse(const Token &DirTok);
  void handleEndif(const Token &DirTok);
  void handlePragma(const Token &DirTok);
  void skipToEod();
  std::vector<Token> readDirectiveTokens();

  bool isSkipping() const {
    return !Conditionals.empty() && !Conditionals.back().Active;
  }

  /// Expands macro \p Name (already verified to be defined) whose invocation
  /// started with \p NameTok. Function-like macros consume their argument
  /// list from the token stream. Expanded tokens are pushed to the front of
  /// the pending queue. Returns false if a function-like macro name is not
  /// followed by '(' (in which case it is not an invocation).
  bool expandMacro(const Token &NameTok,
                   std::shared_ptr<std::set<std::string>> HideSet);

  /// Evaluates the constant expression of an #if/#elif line.
  bool evaluateIfCondition(std::vector<Token> Toks);

  FileManager &FM;
  SourceManager &SM;
  DiagnosticsEngine &Diags;

  std::vector<std::unique_ptr<Lexer>> IncludeStack;
  std::map<std::string, MacroInfo> Macros;
  std::deque<PendingToken> Pending;
  std::vector<ConditionalInfo> Conditionals;
  std::vector<std::string> IncludeDirs;
  bool OpenMPEnabled = true;
  bool ReachedEOF = false;

  // Replay mode (enterTokenStream): cursor over an externally owned,
  // already-preprocessed stream. Null when lexing normally.
  const Token *ReplayCur = nullptr;
  const Token *ReplayEnd = nullptr;

  static constexpr unsigned MaxIncludeDepth = 64;

  // Owns token text for synthesized tokens (command-line macros).
  std::vector<std::unique_ptr<std::string>> OwnedStrings;
  std::vector<std::unique_ptr<MemoryBuffer>> OwnedBuffers;
};

} // namespace mcc

#endif // MCC_LEX_PREPROCESSOR_H
