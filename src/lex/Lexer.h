//===--- Lexer.h - Character stream -> token stream -------------*- C++ -*-===//
//
// The Lexer layer of the paper's Fig. 1. A raw lexer over one MemoryBuffer:
// it knows nothing about the preprocessor; directives and pragma handling
// live one layer up (Preprocessor).
//
//===----------------------------------------------------------------------===//
#ifndef MCC_LEX_LEXER_H
#define MCC_LEX_LEXER_H

#include "lex/Token.h"
#include "support/Diagnostic.h"
#include "support/SourceManager.h"

namespace mcc {

class Lexer {
public:
  /// Lexes the content of \p FID. Diagnostics (bad characters, unterminated
  /// comments/strings) are reported to \p Diags.
  Lexer(FileID FID, const SourceManager &SM, DiagnosticsEngine &Diags);

  Lexer(const Lexer &) = delete;
  Lexer &operator=(const Lexer &) = delete;

  /// Lexes the next token into \p Result. Returns false once (and forever
  /// after) the end of the buffer is reached, with Result set to tok::eof.
  bool lex(Token &Result);

  /// When true, a newline terminates the current "line context" and is
  /// reported as a tok::eod token (used while lexing preprocessor
  /// directives); otherwise newlines are plain whitespace.
  void setParsingPreprocessorDirective(bool V) { LexingDirective = V; }

  [[nodiscard]] FileID getFileID() const { return FID; }

  /// Maps an identifier's text to its keyword token kind, or
  /// tok::identifier if it is not a keyword.
  static tok::TokenKind getKeywordKind(std::string_view Text);

private:
  SourceLocation getLoc(const char *Ptr) const {
    return SM.getLoc(FID, static_cast<unsigned>(Ptr - BufferStart));
  }

  void formToken(Token &Result, const char *TokStart, const char *TokEnd,
                 tok::TokenKind Kind);
  void skipLineComment();
  bool skipBlockComment(); // false if unterminated
  void lexNumericConstant(Token &Result, const char *TokStart);
  void lexIdentifier(Token &Result, const char *TokStart);
  void lexStringLiteral(Token &Result, const char *TokStart, char Terminator);

  FileID FID;
  const SourceManager &SM;
  DiagnosticsEngine &Diags;
  const char *BufferStart;
  const char *BufferEnd;
  const char *Ptr;
  bool AtStartOfLine = true;
  bool HasLeadingSpace = false;
  bool LexingDirective = false;
};

} // namespace mcc

#endif // MCC_LEX_LEXER_H
