//===--- Token.h - MiniC token representation -------------------*- C++ -*-===//
#ifndef MCC_LEX_TOKEN_H
#define MCC_LEX_TOKEN_H

#include "support/SourceLocation.h"

#include <string_view>

namespace mcc {

namespace tok {
enum TokenKind : unsigned short {
#define TOK(X) X,
#include "lex/TokenKinds.def"
  NUM_TOKENS
};

/// Returns the constant spelling of a punctuator/keyword, or the generic
/// name ("identifier", "numeric constant", ...) for variable-spelling kinds.
const char *getTokenName(TokenKind Kind);
const char *getPunctuatorSpelling(TokenKind Kind);
} // namespace tok

/// A lexed token: kind, location, and the exact source text it covers.
/// Tokens are value types and cheap to copy.
class Token {
public:
  void startToken() {
    Kind = tok::unknown;
    Loc = SourceLocation();
    Text = {};
    Flags = 0;
  }

  [[nodiscard]] tok::TokenKind getKind() const { return Kind; }
  void setKind(tok::TokenKind K) { Kind = K; }

  [[nodiscard]] bool is(tok::TokenKind K) const { return Kind == K; }
  [[nodiscard]] bool isNot(tok::TokenKind K) const { return Kind != K; }
  template <typename... Ts> [[nodiscard]] bool isOneOf(Ts... Ks) const {
    return (is(Ks) || ...);
  }

  [[nodiscard]] SourceLocation getLocation() const { return Loc; }
  void setLocation(SourceLocation L) { Loc = L; }
  [[nodiscard]] SourceLocation getEndLoc() const {
    return Loc.getLocWithOffset(static_cast<std::int32_t>(Text.size()));
  }

  [[nodiscard]] std::string_view getText() const { return Text; }
  void setText(std::string_view T) { Text = T; }
  [[nodiscard]] unsigned getLength() const {
    return static_cast<unsigned>(Text.size());
  }

  /// True if this token was the first on its line (needed to recognize
  /// preprocessor directives).
  [[nodiscard]] bool isAtStartOfLine() const { return Flags & StartOfLine; }
  void setAtStartOfLine(bool V) {
    Flags = V ? (Flags | StartOfLine) : (Flags & ~StartOfLine);
  }

  [[nodiscard]] bool hasLeadingSpace() const { return Flags & LeadingSpace; }
  void setHasLeadingSpace(bool V) {
    Flags = V ? (Flags | LeadingSpace) : (Flags & ~LeadingSpace);
  }

  [[nodiscard]] bool isIdentifierNamed(std::string_view Name) const {
    return Kind == tok::identifier && Text == Name;
  }

private:
  enum TokenFlags : unsigned { StartOfLine = 1, LeadingSpace = 2 };

  tok::TokenKind Kind = tok::unknown;
  SourceLocation Loc;
  std::string_view Text;
  unsigned Flags = 0;
};

} // namespace mcc

#endif // MCC_LEX_TOKEN_H
