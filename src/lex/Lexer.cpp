#include "lex/Lexer.h"

#include <cctype>
#include <unordered_map>

namespace mcc {

namespace tok {

const char *getTokenName(TokenKind Kind) {
  switch (Kind) {
#define TOK(X)                                                                 \
  case X:                                                                      \
    return #X;
#include "lex/TokenKinds.def"
  default:
    return "<unknown>";
  }
}

const char *getPunctuatorSpelling(TokenKind Kind) {
  switch (Kind) {
#define PUNCT(X, Y)                                                            \
  case X:                                                                      \
    return Y;
#define TOK(X)
#include "lex/TokenKinds.def"
  default:
    return nullptr;
  }
}

} // namespace tok

tok::TokenKind Lexer::getKeywordKind(std::string_view Text) {
  static const std::unordered_map<std::string_view, tok::TokenKind> Keywords =
      {
#define KEYWORD(X) {#X, tok::kw_##X},
#define TOK(X)
#include "lex/TokenKinds.def"
      };
  auto It = Keywords.find(Text);
  return It == Keywords.end() ? tok::identifier : It->second;
}

Lexer::Lexer(FileID FID, const SourceManager &SM, DiagnosticsEngine &Diags)
    : FID(FID), SM(SM), Diags(Diags) {
  const MemoryBuffer *Buf = SM.getBuffer(FID);
  BufferStart = Buf->getBufferStart();
  BufferEnd = Buf->getBufferEnd();
  Ptr = BufferStart;
}

void Lexer::formToken(Token &Result, const char *TokStart, const char *TokEnd,
                      tok::TokenKind Kind) {
  Result.startToken();
  Result.setKind(Kind);
  Result.setLocation(getLoc(TokStart));
  Result.setText(std::string_view(TokStart,
                                  static_cast<std::size_t>(TokEnd - TokStart)));
  Result.setAtStartOfLine(AtStartOfLine);
  Result.setHasLeadingSpace(HasLeadingSpace);
  AtStartOfLine = false;
  HasLeadingSpace = false;
  Ptr = TokEnd;
}

void Lexer::skipLineComment() {
  while (Ptr != BufferEnd && *Ptr != '\n')
    ++Ptr;
}

bool Lexer::skipBlockComment() {
  // Ptr points after the "/*".
  while (Ptr + 1 < BufferEnd) {
    if (Ptr[0] == '*' && Ptr[1] == '/') {
      Ptr += 2;
      return true;
    }
    ++Ptr;
  }
  Ptr = BufferEnd;
  return false;
}

void Lexer::lexNumericConstant(Token &Result, const char *TokStart) {
  const char *P = Ptr;
  bool SeenDot = false;
  bool SeenExp = false;
  // Hex literals.
  if (P[-1] == '0' && P != BufferEnd && (*P == 'x' || *P == 'X')) {
    ++P;
    while (P != BufferEnd && std::isxdigit(static_cast<unsigned char>(*P)))
      ++P;
  } else {
    while (P != BufferEnd) {
      char C = *P;
      if (std::isdigit(static_cast<unsigned char>(C))) {
        ++P;
      } else if (C == '.' && !SeenDot && !SeenExp) {
        SeenDot = true;
        ++P;
      } else if ((C == 'e' || C == 'E') && !SeenExp) {
        SeenExp = true;
        ++P;
        if (P != BufferEnd && (*P == '+' || *P == '-'))
          ++P;
      } else {
        break;
      }
    }
  }
  // Suffixes: u, U, l, L, ul, lu, f, F (order-insensitive, at most two).
  while (P != BufferEnd && (*P == 'u' || *P == 'U' || *P == 'l' || *P == 'L' ||
                            *P == 'f' || *P == 'F'))
    ++P;
  formToken(Result, TokStart, P, tok::numeric_constant);
}

void Lexer::lexIdentifier(Token &Result, const char *TokStart) {
  const char *P = Ptr;
  while (P != BufferEnd &&
         (std::isalnum(static_cast<unsigned char>(*P)) || *P == '_' ||
          *P == '.')) {
    // '.' only continues an identifier for internal names like
    // '.capture_expr.' that Sema synthesizes; real source cannot contain
    // them because '.' never *starts* an identifier here.
    if (*P == '.' && TokStart[0] != '.')
      break;
    ++P;
  }
  formToken(Result, TokStart, P, tok::identifier);
  tok::TokenKind KW = getKeywordKind(Result.getText());
  if (KW != tok::identifier)
    Result.setKind(KW);
}

void Lexer::lexStringLiteral(Token &Result, const char *TokStart,
                             char Terminator) {
  const char *P = Ptr;
  while (P != BufferEnd && *P != Terminator && *P != '\n') {
    if (*P == '\\' && P + 1 != BufferEnd)
      ++P; // skip escaped char
    ++P;
  }
  if (P == BufferEnd || *P == '\n') {
    Diags.report(getLoc(TokStart), Terminator == '"'
                                       ? diag::err_unterminated_string
                                       : diag::err_unterminated_char);
    formToken(Result, TokStart, P, tok::unknown);
    return;
  }
  ++P; // consume terminator
  formToken(Result, TokStart, P,
            Terminator == '"' ? tok::string_literal : tok::char_constant);
}

bool Lexer::lex(Token &Result) {
  // Skip whitespace and comments.
  while (true) {
    if (Ptr == BufferEnd) {
      formToken(Result, Ptr, Ptr, LexingDirective ? tok::eod : tok::eof);
      return false;
    }
    char C = *Ptr;
    if (C == '\n') {
      if (LexingDirective) {
        formToken(Result, Ptr, Ptr + 1, tok::eod);
        AtStartOfLine = true;
        return true;
      }
      ++Ptr;
      AtStartOfLine = true;
      HasLeadingSpace = false;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r' || C == '\v' || C == '\f') {
      ++Ptr;
      HasLeadingSpace = true;
      continue;
    }
    if (C == '\\' && Ptr + 1 != BufferEnd && Ptr[1] == '\n') {
      Ptr += 2; // line continuation
      continue;
    }
    if (C == '/' && Ptr + 1 != BufferEnd) {
      if (Ptr[1] == '/') {
        Ptr += 2;
        skipLineComment();
        HasLeadingSpace = true;
        continue;
      }
      if (Ptr[1] == '*') {
        const char *CommentStart = Ptr;
        Ptr += 2;
        if (!skipBlockComment())
          Diags.report(getLoc(CommentStart), diag::err_unterminated_comment);
        HasLeadingSpace = true;
        continue;
      }
    }
    break;
  }

  const char *TokStart = Ptr;
  char C = *Ptr++;

  if (std::isdigit(static_cast<unsigned char>(C))) {
    lexNumericConstant(Result, TokStart);
    return true;
  }
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    lexIdentifier(Result, TokStart);
    return true;
  }

  auto Peek = [&](char Want) {
    if (Ptr != BufferEnd && *Ptr == Want) {
      ++Ptr;
      return true;
    }
    return false;
  };

  tok::TokenKind Kind = tok::unknown;
  switch (C) {
  case '(': Kind = tok::l_paren; break;
  case ')': Kind = tok::r_paren; break;
  case '{': Kind = tok::l_brace; break;
  case '}': Kind = tok::r_brace; break;
  case '[': Kind = tok::l_square; break;
  case ']': Kind = tok::r_square; break;
  case ';': Kind = tok::semi; break;
  case ',': Kind = tok::comma; break;
  case '?': Kind = tok::question; break;
  case ':': Kind = tok::colon; break;
  case '~': Kind = tok::tilde; break;
  case '#': Kind = tok::hash; break;
  case '+':
    Kind = Peek('+') ? tok::plusplus : Peek('=') ? tok::plusequal : tok::plus;
    break;
  case '-':
    Kind = Peek('-')   ? tok::minusminus
           : Peek('=') ? tok::minusequal
           : Peek('>') ? tok::arrow
                       : tok::minus;
    break;
  case '*':
    Kind = Peek('=') ? tok::starequal : tok::star;
    break;
  case '/':
    Kind = Peek('=') ? tok::slashequal : tok::slash;
    break;
  case '%':
    Kind = Peek('=') ? tok::percentequal : tok::percent;
    break;
  case '=':
    Kind = Peek('=') ? tok::equalequal : tok::equal;
    break;
  case '!':
    Kind = Peek('=') ? tok::exclaimequal : tok::exclaim;
    break;
  case '<':
    Kind = Peek('=') ? tok::lessequal : Peek('<') ? tok::lessless : tok::less;
    break;
  case '>':
    Kind = Peek('=')   ? tok::greaterequal
           : Peek('>') ? tok::greatergreater
                       : tok::greater;
    break;
  case '&':
    Kind = Peek('&') ? tok::ampamp : Peek('=') ? tok::ampequal : tok::amp;
    break;
  case '|':
    Kind = Peek('|') ? tok::pipepipe : Peek('=') ? tok::pipeequal : tok::pipe;
    break;
  case '^':
    Kind = Peek('=') ? tok::caretequal : tok::caret;
    break;
  case '.': Kind = tok::period; break;
  case '"':
    lexStringLiteral(Result, TokStart, '"');
    return true;
  case '\'':
    lexStringLiteral(Result, TokStart, '\'');
    return true;
  default:
    Diags.report(getLoc(TokStart), diag::err_invalid_character)
        << std::string(1, C);
    Kind = tok::unknown;
    break;
  }
  formToken(Result, TokStart, Ptr, Kind);
  return true;
}

} // namespace mcc
