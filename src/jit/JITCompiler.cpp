//===--- JITCompiler.cpp - bc::Inst → x86-64 template emission -------------===//
//
// One emission pass over the function's instruction array: each bc::Op has
// a machine-code template whose operand bytes are patched with the frame
// displacements the BytecodeCompiler already resolved. Branch targets
// become rel32 fixups resolved after the pass from the per-instruction
// offset table (the same table OSR uses to resume a bytecode frame
// mid-loop). There is no register allocator — the frame *is* the register
// file — but a slot-kind analysis finds int-only slots (loop IVs and
// accumulators) and pins the two hottest in r14/r15; soundness falls out
// of the classification: a pinned slot is provably never read through
// frame memory (helper operands, call arguments and 16-byte copies all
// force a slot off the pin list).
//
// Semantics mirror BytecodeInterpreter.cpp handler for handler: the same
// sign-extension discipline (InterpOps.h), the same field-write behaviour
// (int ops leave the D lane untouched; Mov/Gep/Select/calls write what
// the bytecode handler writes), the same trap messages via host helpers.
//
//===----------------------------------------------------------------------===//
#include "jit/JIT.h"

#include <cstring>
#include <limits>

namespace mcc::interp::jit {

const char *opName(bc::Op O) {
  static const char *const Names[] = {
      "Mov",      "Add",         "Sub",       "Mul",      "SDiv",
      "UDiv",     "SRem",        "URem",      "And",      "Or",
      "Xor",      "Shl",         "AShr",      "LShr",     "FAdd",
      "FSub",     "FMul",        "FDiv",      "FNeg",     "ICmp",
      "FCmp",     "SExt",        "ZExt",      "Trunc",    "SIToFP",
      "UIToFP",   "FPToSI",      "FPToUI",    "Load1",    "Load4",
      "Load8",    "LoadF64",     "Store1",    "Store4",   "Store8",
      "StoreF64", "Gep",         "AllocaFixed", "AllocaDyn", "Select",
      "Jmp",      "CondBr",      "Ret",       "Unreachable", "CallBC",
      "CallRT",   "CmpBr",       "LoadOpStore4", "LoadOpStore8",
  };
  static_assert(sizeof(Names) / sizeof(Names[0]) ==
                static_cast<std::size_t>(bc::Op::NumOps));
  auto Idx = static_cast<std::size_t>(O);
  return Idx < static_cast<std::size_t>(bc::Op::NumOps) ? Names[Idx] : "?";
}

bool parseOpName(std::string_view Name, bc::Op &Out) {
  for (std::size_t I = 0; I < static_cast<std::size_t>(bc::Op::NumOps); ++I)
    if (Name == opName(static_cast<bc::Op>(I))) {
      Out = static_cast<bc::Op>(I);
      return true;
    }
  return false;
}

namespace {

// General-purpose register numbers (hardware encoding).
enum Reg : unsigned {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};
enum Xmm : unsigned { XMM0 = 0, XMM1 = 1 };

// Condition-code nibbles for 0F 8x / 0F 9x.
enum CC : unsigned {
  CC_B = 0x2,  // unsigned <   (also: ucomisd unordered-or-below)
  CC_AE = 0x3, // unsigned >=
  CC_E = 0x4,
  CC_NE = 0x5,
  CC_BE = 0x6, // unsigned <=
  CC_A = 0x7,  // unsigned >
  CC_P = 0xA,
  CC_NP = 0xB,
  CC_L = 0xC,
  CC_GE = 0xD,
  CC_LE = 0xE,
  CC_G = 0xF,
};

/// Flat byte emitter: raw encodings only, no state beyond the buffer.
class Asm {
public:
  std::vector<std::uint8_t> B;

  [[nodiscard]] std::size_t pos() const { return B.size(); }
  void u8(std::uint8_t V) { B.push_back(V); }
  void u32(std::uint32_t V) {
    for (int I = 0; I < 4; ++I)
      B.push_back(static_cast<std::uint8_t>(V >> (I * 8)));
  }
  void u64(std::uint64_t V) {
    for (int I = 0; I < 8; ++I)
      B.push_back(static_cast<std::uint8_t>(V >> (I * 8)));
  }
  void patch32(std::size_t Pos, std::int32_t V) {
    for (int I = 0; I < 4; ++I)
      B[Pos + I] = static_cast<std::uint8_t>(
          static_cast<std::uint32_t>(V) >> (I * 8));
  }

  /// REX prefix when needed (64-bit width or extended registers).
  void rex(bool W, unsigned Reg, unsigned Rm) {
    if (W || Reg >= 8 || Rm >= 8)
      u8(0x40 | (W ? 8 : 0) | ((Reg >> 3) & 1) << 2 | ((Rm >> 3) & 1));
  }

  /// ModRM(+SIB+disp) for [Base + Disp]; Reg is the reg field (mod 8
  /// applied here, extension bits handled by rex()).
  void mem(unsigned Reg, unsigned Base, std::int32_t Disp) {
    unsigned Bl = Base & 7, Rl = Reg & 7;
    bool Sib = (Bl == 4); // rsp/r12 need a SIB byte
    unsigned Mod;
    if (Disp == 0 && Bl != 5) // rbp/r13 always need a displacement
      Mod = 0;
    else if (Disp >= -128 && Disp <= 127)
      Mod = 1;
    else
      Mod = 2;
    u8(static_cast<std::uint8_t>(Mod << 6 | Rl << 3 | (Sib ? 4 : Bl)));
    if (Sib)
      u8(0x24); // no index, base = Bl
    if (Mod == 1)
      u8(static_cast<std::uint8_t>(Disp));
    else if (Mod == 2)
      u32(static_cast<std::uint32_t>(Disp));
  }
  void direct(unsigned Reg, unsigned Rm) {
    u8(static_cast<std::uint8_t>(0xC0 | (Reg & 7) << 3 | (Rm & 7)));
  }

  // --- GP moves ---
  void movRI64(unsigned R, std::uint64_t V) {
    rex(true, 0, R);
    u8(0xB8 + (R & 7));
    u64(V);
  }
  void movRI32(unsigned R, std::uint32_t V) {
    rex(false, 0, R);
    u8(0xB8 + (R & 7));
    u32(V);
  }
  void movRR(unsigned D, unsigned S) { // 64-bit
    rex(true, S, D);
    u8(0x89);
    direct(S, D);
  }
  void movRM(unsigned R, unsigned Base, std::int32_t Disp) {
    rex(true, R, Base);
    u8(0x8B);
    mem(R, Base, Disp);
  }
  void movMR(unsigned Base, std::int32_t Disp, unsigned R) {
    rex(true, R, Base);
    u8(0x89);
    mem(R, Base, Disp);
  }
  void mov32MR(unsigned Base, std::int32_t Disp, unsigned R) {
    rex(false, R, Base);
    u8(0x89);
    mem(R, Base, Disp);
  }
  void mov8MR(unsigned Base, std::int32_t Disp, unsigned R) {
    rex(false, R, Base); // R must be rax/rcx/rdx (al/cl/dl)
    u8(0x88);
    mem(R, Base, Disp);
  }
  void movMI32(unsigned Base, std::int32_t Disp, std::int32_t V) {
    rex(true, 0, Base); // mov qword [m], sext(imm32)
    u8(0xC7);
    mem(0, Base, Disp);
    u32(static_cast<std::uint32_t>(V));
  }
  void movsx8RM(unsigned R, unsigned Base, std::int32_t Disp) {
    rex(true, R, Base);
    u8(0x0F);
    u8(0xBE);
    mem(R, Base, Disp);
  }
  void movsxdRM(unsigned R, unsigned Base, std::int32_t Disp) {
    rex(true, R, Base);
    u8(0x63);
    mem(R, Base, Disp);
  }
  void movsx8RR(unsigned D, unsigned S) {
    rex(true, D, S);
    u8(0x0F);
    u8(0xBE);
    direct(D, S);
  }
  void movzx8RR(unsigned D, unsigned S) {
    rex(true, D, S);
    u8(0x0F);
    u8(0xB6);
    direct(D, S);
  }
  void movsxdRR(unsigned D, unsigned S) {
    rex(true, D, S);
    u8(0x63);
    direct(D, S);
  }
  void mov32RR(unsigned D, unsigned S) { // zero-extends to 64
    rex(false, S, D);
    u8(0x89);
    direct(S, D);
  }
  void leaRM(unsigned R, unsigned Base, std::int32_t Disp) {
    rex(true, R, Base);
    u8(0x8D);
    mem(R, Base, Disp);
  }

  // --- GP arithmetic (MR forms: op rm64, r64) ---
  void alu(std::uint8_t Opc, unsigned D, unsigned S) {
    rex(true, S, D);
    u8(Opc);
    direct(S, D);
  }
  void addRR(unsigned D, unsigned S) { alu(0x01, D, S); }
  void subRR(unsigned D, unsigned S) { alu(0x29, D, S); }
  void andRR(unsigned D, unsigned S) { alu(0x21, D, S); }
  void orRR(unsigned D, unsigned S) { alu(0x09, D, S); }
  void xorRR(unsigned D, unsigned S) { alu(0x31, D, S); }
  void cmpRR(unsigned D, unsigned S) { alu(0x39, D, S); }
  void testRR(unsigned D, unsigned S) { alu(0x85, D, S); }
  void imulRR(unsigned D, unsigned S) {
    rex(true, D, S);
    u8(0x0F);
    u8(0xAF);
    direct(D, S);
  }
  void imulRRI(unsigned D, unsigned S, std::int32_t V) {
    rex(true, D, S);
    u8(0x69);
    direct(D, S);
    u32(static_cast<std::uint32_t>(V));
  }
  /// 81/83 group: ext ∈ {0 add, 1 or, 4 and, 5 sub, 6 xor, 7 cmp}.
  void aluRI(unsigned Ext, unsigned R, std::int32_t V) {
    rex(true, 0, R);
    if (V >= -128 && V <= 127) {
      u8(0x83);
      direct(Ext, R);
      u8(static_cast<std::uint8_t>(V));
    } else {
      u8(0x81);
      direct(Ext, R);
      u32(static_cast<std::uint32_t>(V));
    }
  }
  void and32RI8(unsigned R, std::uint8_t V) { // and r32, imm8 (clears hi)
    rex(false, 0, R);
    u8(0x83);
    direct(4, R);
    u8(V);
  }
  void negR(unsigned R) {
    rex(true, 0, R);
    u8(0xF7);
    direct(3, R);
  }
  /// D3 group shifts by cl: ext ∈ {4 shl, 5 shr, 7 sar}.
  void shiftCl(unsigned Ext, unsigned R) {
    rex(true, 0, R);
    u8(0xD3);
    direct(Ext, R);
  }
  void cmpMI8(unsigned Base, std::int32_t Disp, std::uint8_t V) {
    rex(true, 7, Base); // cmp qword [m], imm8
    u8(0x83);
    mem(7, Base, Disp);
    u8(V);
  }
  void setcc(unsigned CC, unsigned R8) { // R8 must be al/cl/dl
    u8(0x0F);
    u8(0x90 + CC);
    direct(0, R8);
  }
  void xor32RR(unsigned D, unsigned S) {
    rex(false, S, D);
    u8(0x31);
    direct(S, D);
  }

  // --- control flow ---
  std::size_t jmpRel32() {
    u8(0xE9);
    std::size_t P = pos();
    u32(0);
    return P;
  }
  std::size_t jccRel32(unsigned CC) {
    u8(0x0F);
    u8(0x80 + CC);
    std::size_t P = pos();
    u32(0);
    return P;
  }
  void jmpR(unsigned R) {
    rex(false, 0, R);
    u8(0xFF);
    direct(4, R);
  }
  void callM(unsigned Base, std::int32_t Disp) {
    rex(false, 0, Base);
    u8(0xFF);
    mem(2, Base, Disp);
  }
  void pushR(unsigned R) {
    rex(false, 0, R);
    u8(0x50 + (R & 7));
  }
  void popR(unsigned R) {
    rex(false, 0, R);
    u8(0x58 + (R & 7));
  }
  void ret() { u8(0xC3); }
  void repStosb() {
    u8(0xF3);
    u8(0xAA);
  }

  // --- SSE ---
  void sse(std::uint8_t Prefix, std::uint8_t Op, unsigned R, unsigned Rm,
           bool RexW = false) { // reg-reg form
    if (Prefix)
      u8(Prefix);
    rex(RexW, R, Rm);
    u8(0x0F);
    u8(Op);
    direct(R, Rm);
  }
  void sseM(std::uint8_t Prefix, std::uint8_t Op, unsigned R, unsigned Base,
            std::int32_t Disp) {
    if (Prefix)
      u8(Prefix);
    rex(false, R, Base);
    u8(0x0F);
    u8(Op);
    mem(R, Base, Disp);
  }
  void movsdXM(unsigned X, unsigned Base, std::int32_t D) {
    sseM(0xF2, 0x10, X, Base, D);
  }
  void movsdMX(unsigned Base, std::int32_t D, unsigned X) {
    sseM(0xF2, 0x11, X, Base, D);
  }
  void movupsXM(unsigned X, unsigned Base, std::int32_t D) {
    sseM(0, 0x10, X, Base, D);
  }
  void movupsMX(unsigned Base, std::int32_t D, unsigned X) {
    sseM(0, 0x11, X, Base, D);
  }
  void addsd(unsigned D, unsigned S) { sse(0xF2, 0x58, D, S); }
  void subsd(unsigned D, unsigned S) { sse(0xF2, 0x5C, D, S); }
  void mulsd(unsigned D, unsigned S) { sse(0xF2, 0x59, D, S); }
  void divsd(unsigned D, unsigned S) { sse(0xF2, 0x5E, D, S); }
  void ucomisd(unsigned A, unsigned B2) { sse(0x66, 0x2E, A, B2); }
  void xorpd(unsigned D, unsigned S) { sse(0x66, 0x57, D, S); }
  void xorps(unsigned D, unsigned S) { sse(0, 0x57, D, S); }
  void cvtsi2sd(unsigned X, unsigned R) { sse(0xF2, 0x2A, X, R, true); }
  void cvttsd2si(unsigned R, unsigned X) { sse(0xF2, 0x2C, R, X, true); }
  void movqXR(unsigned X, unsigned R) { sse(0x66, 0x6E, X, R, true); }
};

/// How a frame slot is observed across the function. Int ⊔ FP = Full;
/// Full slots are copied 16 bytes at a time and are never pinned.
enum class SlotKind : std::uint8_t { Unused = 0, Int = 1, FP = 2, Full = 3 };

inline SlotKind join(SlotKind A, SlotKind B) {
  return static_cast<SlotKind>(static_cast<unsigned>(A) |
                               static_cast<unsigned>(B));
}

class FunctionEmitter {
public:
  FunctionEmitter(const bc::BCFunction &BF, const CompileOptions &Opts)
      : BF(BF), Opts(Opts) {}

  std::unique_ptr<CompiledFunction> run();

private:
  struct Fixup {
    std::size_t Pos;        ///< position of the rel32 to patch
    std::uint32_t Target;   ///< bytecode inst index (N = epilogue, N+1 = trap)
  };

  const bc::BCFunction &BF;
  const CompileOptions &Opts;
  Asm A;
  std::vector<SlotKind> Kinds;
  std::vector<Fixup> Fixups;
  std::int32_t Pin[2] = {-1, -1};
  bool OK = true;

  static constexpr unsigned FrameReg = RBX, ArenaReg = R12, InvReg = R13;
  static constexpr unsigned PinRegs[2] = {R14, R15};

  [[nodiscard]] std::uint32_t epilogueIdx() const {
    return static_cast<std::uint32_t>(BF.Code.size());
  }
  [[nodiscard]] std::uint32_t trapIdx() const { return epilogueIdx() + 1; }

  void mark(std::uint32_t Slot, SlotKind K) {
    Kinds[Slot] = join(Kinds[Slot], K);
  }
  void classify();
  void choosePins();

  [[nodiscard]] int pinOf(std::uint32_t Slot) const {
    if (Pin[0] == static_cast<std::int32_t>(Slot))
      return 0;
    if (Pin[1] == static_cast<std::int32_t>(Slot))
      return 1;
    return -1;
  }
  [[nodiscard]] static std::int32_t dispI(std::uint32_t Slot) {
    return static_cast<std::int32_t>(Slot) * 16;
  }
  [[nodiscard]] static std::int32_t dispD(std::uint32_t Slot) {
    return static_cast<std::int32_t>(Slot) * 16 + 8;
  }

  void loadSlotI(unsigned R, std::uint32_t Slot) {
    int P = pinOf(Slot);
    if (P >= 0)
      A.movRR(R, PinRegs[P]);
    else
      A.movRM(R, FrameReg, dispI(Slot));
  }
  /// mov only — never touches flags (CmpBr relies on that).
  void storeSlotI(unsigned R, std::uint32_t Slot) {
    int P = pinOf(Slot);
    if (P >= 0)
      A.movRR(PinRegs[P], R);
    else
      A.movMR(FrameReg, dispI(Slot), R);
  }
  void loadSlotD(unsigned X, std::uint32_t Slot) {
    A.movsdXM(X, FrameReg, dispD(Slot));
  }
  void storeSlotD(unsigned X, std::uint32_t Slot) {
    A.movsdMX(FrameReg, dispD(Slot), X);
  }
  /// Mirrors the bytecode's full-RTValue writes (ofPtr leaves D = 0) when
  /// someone may read the slot 16 bytes at a time.
  void zeroSlotDIfFull(std::uint32_t Slot) {
    if (Kinds[Slot] == SlotKind::Full)
      A.movMI32(FrameReg, dispD(Slot), 0);
  }

  void sext(unsigned R, unsigned W) {
    if (W >= 64)
      return;
    if (W == 32)
      A.movsxdRR(R, R);
    else if (W == 8)
      A.movsx8RR(R, R);
    else { // W == 1: bit0 ? -1 : 0
      A.and32RI8(R, 1);
      A.negR(R);
    }
  }
  void zext(unsigned R, unsigned W) {
    if (W >= 64)
      return;
    if (W == 32)
      A.mov32RR(R, R);
    else if (W == 8)
      A.movzx8RR(R, R);
    else
      A.and32RI8(R, 1);
  }
  [[nodiscard]] static bool widthOk(unsigned W) {
    return W == 1 || W == 8 || W == 32 || W == 64;
  }

  void emitHelper(HelperIndex H, const bc::Inst *In) {
    A.movRR(RDI, InvReg);
    A.movRI64(RSI, reinterpret_cast<std::uint64_t>(In));
    A.movRM(RAX, InvReg, static_cast<std::int32_t>(kInvOpsOffset));
    A.callM(RAX, static_cast<std::int32_t>(H) * 8);
    A.cmpMI8(InvReg, static_cast<std::int32_t>(kInvTrapOffset), 0);
    Fixups.push_back({A.jccRel32(CC_NE), trapIdx()});
  }

  /// Loads, width-extends and compares the ICmp/CmpBr operands; returns
  /// the condition code that is true when the predicate holds.
  unsigned emitIntCompare(ir::CmpPred P, std::uint32_t L, std::uint32_t R,
                          unsigned W) {
    loadSlotI(RAX, L);
    loadSlotI(RCX, R);
    bool Signed = false;
    unsigned CC = CC_E;
    switch (P) {
    case ir::CmpPred::EQ:
      CC = CC_E;
      break;
    case ir::CmpPred::NE:
      CC = CC_NE;
      break;
    case ir::CmpPred::SLT:
      CC = CC_L;
      Signed = true;
      break;
    case ir::CmpPred::SLE:
      CC = CC_LE;
      Signed = true;
      break;
    case ir::CmpPred::SGT:
      CC = CC_G;
      Signed = true;
      break;
    case ir::CmpPred::SGE:
      CC = CC_GE;
      Signed = true;
      break;
    case ir::CmpPred::ULT:
      CC = CC_B;
      break;
    case ir::CmpPred::ULE:
      CC = CC_BE;
      break;
    case ir::CmpPred::UGT:
      CC = CC_A;
      break;
    case ir::CmpPred::UGE:
      CC = CC_AE;
      break;
    default:
      OK = false;
      break;
    }
    if (Signed) {
      sext(RAX, W);
      sext(RCX, W);
    } else {
      zext(RAX, W);
      zext(RCX, W);
    }
    A.cmpRR(RAX, RCX);
    return CC;
  }

  void emitInst(std::uint32_t Idx);
};

void FunctionEmitter::classify() {
  Kinds.assign(BF.NumFrame, SlotKind::Unused);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> MovEdges;
  for (const bc::Inst &In : BF.Code) {
    switch (In.Code) {
    case bc::Op::Mov:
      MovEdges.emplace_back(In.A, In.B);
      break;
    case bc::Op::Add:
    case bc::Op::Sub:
    case bc::Op::Mul:
    case bc::Op::And:
    case bc::Op::Or:
    case bc::Op::Xor:
    case bc::Op::Shl:
    case bc::Op::AShr:
    case bc::Op::LShr:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      mark(In.C, SlotKind::Int);
      break;
    case bc::Op::SDiv:
    case bc::Op::UDiv:
    case bc::Op::SRem:
    case bc::Op::URem:
      // Helper op: reads and writes frame memory directly.
      mark(In.A, SlotKind::Full);
      mark(In.B, SlotKind::Full);
      mark(In.C, SlotKind::Full);
      break;
    case bc::Op::FAdd:
    case bc::Op::FSub:
    case bc::Op::FMul:
    case bc::Op::FDiv:
      mark(In.A, SlotKind::FP);
      mark(In.B, SlotKind::FP);
      mark(In.C, SlotKind::FP);
      break;
    case bc::Op::FNeg:
      mark(In.A, SlotKind::FP);
      mark(In.B, SlotKind::FP);
      break;
    case bc::Op::ICmp:
    case bc::Op::CmpBr:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      mark(In.C, SlotKind::Int);
      break;
    case bc::Op::FCmp:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::FP);
      mark(In.C, SlotKind::FP);
      break;
    case bc::Op::SExt:
    case bc::Op::ZExt:
    case bc::Op::Trunc:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      break;
    case bc::Op::SIToFP:
      mark(In.A, SlotKind::FP);
      mark(In.B, SlotKind::Int);
      break;
    case bc::Op::UIToFP:
    case bc::Op::FPToUI:
      mark(In.A, SlotKind::Full); // helper op
      mark(In.B, SlotKind::Full);
      break;
    case bc::Op::FPToSI:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::FP);
      break;
    case bc::Op::Load1:
    case bc::Op::Load4:
    case bc::Op::Load8:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      break;
    case bc::Op::LoadF64:
      mark(In.A, SlotKind::FP);
      mark(In.B, SlotKind::Int);
      break;
    case bc::Op::Store1:
    case bc::Op::Store4:
    case bc::Op::Store8:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      break;
    case bc::Op::StoreF64:
      mark(In.A, SlotKind::FP);
      mark(In.B, SlotKind::Int);
      break;
    case bc::Op::Gep:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      mark(In.C, SlotKind::Int);
      break;
    case bc::Op::AllocaFixed:
      mark(In.A, SlotKind::Int);
      break;
    case bc::Op::AllocaDyn:
      mark(In.A, SlotKind::Full); // helper op
      mark(In.B, SlotKind::Full);
      break;
    case bc::Op::Select:
      // Copied 16 bytes at a time (branchy template); the condition is
      // an int read.
      mark(In.A, SlotKind::Full);
      mark(In.B, SlotKind::Int);
      mark(In.C, SlotKind::Full);
      mark(In.D, SlotKind::Full);
      break;
    case bc::Op::Jmp:
    case bc::Op::Unreachable:
      break;
    case bc::Op::CondBr:
      mark(In.A, SlotKind::Int);
      break;
    case bc::Op::Ret:
      if (In.Sub)
        mark(In.A, SlotKind::Full); // 16-byte copy into Inv->Ret
      break;
    case bc::Op::CallBC:
    case bc::Op::CallRT:
      // Helper op: result and every argument slot cross the helper
      // boundary through frame memory as full RTValues.
      mark(In.A, SlotKind::Full);
      for (std::uint32_t K = 0; K < In.D; ++K)
        mark(BF.ArgPool[In.C + K], SlotKind::Full);
      break;
    case bc::Op::LoadOpStore4:
    case bc::Op::LoadOpStore8:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      mark(In.C, SlotKind::Int);
      mark(In.D, SlotKind::Int);
      break;
    case bc::Op::NumOps:
      OK = false;
      break;
    }
  }
  // A Mov copies by the *joined* kind of its endpoints, so propagate
  // kinds across Mov edges to a fixpoint (a slot moved into an FP
  // context and used as int elsewhere must become Full on both sides —
  // otherwise a one-lane copy could drop live bits).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto &[Dst, Src] : MovEdges) {
      SlotKind J = join(Kinds[Dst], Kinds[Src]);
      if (J != Kinds[Dst] || J != Kinds[Src]) {
        Kinds[Dst] = Kinds[Src] = J;
        Changed = true;
      }
    }
  }
}

void FunctionEmitter::choosePins() {
  // Weight each slot's accesses, boosting instructions that sit inside a
  // back-edge range (between a backward branch's target and the branch):
  // that is where loop IVs and accumulators live.
  const std::uint32_t N = static_cast<std::uint32_t>(BF.Code.size());
  std::vector<std::int32_t> LoopDepth(N + 1, 0);
  for (std::uint32_t I = 0; I < N; ++I) {
    const bc::Inst &In = BF.Code[I];
    auto Range = [&](std::uint32_t T) {
      if (T <= I) {
        ++LoopDepth[T];
        --LoopDepth[I + 1];
      }
    };
    if (In.Code == bc::Op::Jmp)
      Range(In.A);
    else if (In.Code == bc::Op::CondBr) {
      Range(In.B);
      Range(In.C);
    } else if (In.Code == bc::Op::CmpBr) {
      Range(static_cast<std::uint32_t>(In.Imm));
      Range(static_cast<std::uint32_t>(In.Imm >> 32));
    }
  }
  std::vector<std::uint64_t> Weight(BF.NumFrame, 0);
  std::int64_t Depth = 0;
  for (std::uint32_t I = 0; I < N; ++I) {
    Depth += LoopDepth[I];
    const std::uint64_t W = Depth > 0 ? 16 : 1;
    const bc::Inst &In = BF.Code[I];
    auto Acc = [&](std::uint32_t S) {
      if (S < BF.NumFrame && Kinds[S] == SlotKind::Int)
        Weight[S] += W;
    };
    switch (In.Code) {
    case bc::Op::Jmp:
    case bc::Op::Unreachable:
      break;
    case bc::Op::Ret:
    case bc::Op::CondBr:
      Acc(In.A);
      break;
    case bc::Op::CallBC:
    case bc::Op::CallRT:
      break; // Full slots anyway
    default:
      Acc(In.A);
      Acc(In.B);
      Acc(In.C);
      Acc(In.D);
      break;
    }
  }
  for (int P = 0; P < 2; ++P) {
    std::uint64_t Best = 1; // require at least weight 2
    std::int32_t BestSlot = -1;
    for (std::uint32_t S = 0; S < BF.NumFrame; ++S) {
      if (static_cast<std::int32_t>(S) == Pin[0])
        continue;
      if (Weight[S] > Best) {
        Best = Weight[S];
        BestSlot = static_cast<std::int32_t>(S);
      }
    }
    if (BestSlot < 0)
      break;
    Pin[P] = BestSlot;
    Weight[BestSlot] = 0;
  }
}

void FunctionEmitter::emitInst(std::uint32_t Idx) {
  const bc::Inst &In = BF.Code[Idx];
  if (In.Code == Opts.ForceUnsupported) {
    OK = false;
    return;
  }
  switch (In.Code) {
  case bc::Op::Mov: {
    switch (join(Kinds[In.A], Kinds[In.B])) {
    case SlotKind::Unused:
    case SlotKind::Int:
      loadSlotI(RAX, In.B);
      storeSlotI(RAX, In.A);
      break;
    case SlotKind::FP:
      A.movRM(RAX, FrameReg, dispD(In.B));
      A.movMR(FrameReg, dispD(In.A), RAX);
      break;
    case SlotKind::Full:
      A.movupsXM(XMM0, FrameReg, dispI(In.B));
      A.movupsMX(FrameReg, dispI(In.A), XMM0);
      break;
    }
    break;
  }
  case bc::Op::Add:
  case bc::Op::Sub:
  case bc::Op::Mul: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    loadSlotI(RAX, In.B);
    loadSlotI(RCX, In.C);
    if (In.Code == bc::Op::Add)
      A.addRR(RAX, RCX);
    else if (In.Code == bc::Op::Sub)
      A.subRR(RAX, RCX);
    else
      A.imulRR(RAX, RCX);
    sext(RAX, In.W);
    storeSlotI(RAX, In.A);
    break;
  }
  case bc::Op::And:
  case bc::Op::Or:
  case bc::Op::Xor: {
    loadSlotI(RAX, In.B);
    loadSlotI(RCX, In.C);
    if (In.Code == bc::Op::And)
      A.andRR(RAX, RCX);
    else if (In.Code == bc::Op::Or)
      A.orRR(RAX, RCX);
    else
      A.xorRR(RAX, RCX);
    storeSlotI(RAX, In.A);
    break;
  }
  case bc::Op::Shl:
  case bc::Op::AShr:
  case bc::Op::LShr: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    loadSlotI(RAX, In.B);
    if (In.Code == bc::Op::AShr)
      sext(RAX, In.W);
    else if (In.Code == bc::Op::LShr)
      zext(RAX, In.W);
    loadSlotI(RCX, In.C);
    A.aluRI(4, RCX, static_cast<std::int32_t>(In.W) - 1); // mask shift
    A.shiftCl(In.Code == bc::Op::Shl   ? 4u
              : In.Code == bc::Op::LShr ? 5u
                                        : 7u,
              RAX);
    if (In.Code != bc::Op::AShr) // AShr result is already in range
      sext(RAX, In.W);
    storeSlotI(RAX, In.A);
    break;
  }
  case bc::Op::SDiv:
  case bc::Op::UDiv:
  case bc::Op::SRem:
  case bc::Op::URem:
    emitHelper(HelperIntDiv, &In);
    break;
  case bc::Op::FAdd:
  case bc::Op::FSub:
  case bc::Op::FMul:
  case bc::Op::FDiv: {
    loadSlotD(XMM0, In.B);
    loadSlotD(XMM1, In.C);
    if (In.Code == bc::Op::FAdd)
      A.addsd(XMM0, XMM1);
    else if (In.Code == bc::Op::FSub)
      A.subsd(XMM0, XMM1);
    else if (In.Code == bc::Op::FMul)
      A.mulsd(XMM0, XMM1);
    else
      A.divsd(XMM0, XMM1);
    storeSlotD(XMM0, In.A);
    break;
  }
  case bc::Op::FNeg: {
    loadSlotD(XMM0, In.B);
    A.movRI64(RAX, 0x8000000000000000ULL);
    A.movqXR(XMM1, RAX);
    A.xorpd(XMM0, XMM1);
    storeSlotD(XMM0, In.A);
    break;
  }
  case bc::Op::ICmp: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    unsigned CC =
        emitIntCompare(static_cast<ir::CmpPred>(In.Sub), In.B, In.C, In.W);
    A.setcc(CC, RDX);
    A.movzx8RR(RDX, RDX);
    storeSlotI(RDX, In.A);
    break;
  }
  case bc::Op::FCmp: {
    auto P = static_cast<ir::CmpPred>(In.Sub);
    // ucomisd raises CF on unordered, so A<B / A<=B are emitted as the
    // swapped B>A / B>=A to stay false on NaN — exactly the C semantics
    // of evalFCmp. ONE is true on NaN (C's operator!=).
    bool Swap = (P == ir::CmpPred::OLT || P == ir::CmpPred::OLE);
    loadSlotD(XMM0, Swap ? In.C : In.B);
    loadSlotD(XMM1, Swap ? In.B : In.C);
    A.ucomisd(XMM0, XMM1);
    switch (P) {
    case ir::CmpPred::OEQ:
      A.setcc(CC_E, RAX);
      A.setcc(CC_NP, RCX);
      A.u8(0x20); // and al, cl
      A.direct(RCX, RAX);
      break;
    case ir::CmpPred::ONE:
      A.setcc(CC_NE, RAX);
      A.setcc(CC_P, RCX);
      A.u8(0x08); // or al, cl
      A.direct(RCX, RAX);
      break;
    case ir::CmpPred::OLT:
    case ir::CmpPred::OGT:
      A.setcc(CC_A, RAX);
      break;
    case ir::CmpPred::OLE:
    case ir::CmpPred::OGE:
      A.setcc(CC_AE, RAX);
      break;
    default:
      OK = false;
      return;
    }
    A.movzx8RR(RAX, RAX);
    storeSlotI(RAX, In.A);
    break;
  }
  case bc::Op::SExt:
  case bc::Op::Trunc: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    loadSlotI(RAX, In.B);
    sext(RAX, In.W);
    storeSlotI(RAX, In.A);
    break;
  }
  case bc::Op::ZExt: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    loadSlotI(RAX, In.B);
    zext(RAX, In.W);
    storeSlotI(RAX, In.A);
    break;
  }
  case bc::Op::SIToFP: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    loadSlotI(RAX, In.B);
    sext(RAX, In.W);
    A.cvtsi2sd(XMM0, RAX);
    storeSlotD(XMM0, In.A);
    break;
  }
  case bc::Op::UIToFP:
    emitHelper(HelperUIToFP, &In);
    break;
  case bc::Op::FPToSI: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    loadSlotD(XMM0, In.B);
    A.cvttsd2si(RAX, XMM0);
    sext(RAX, In.W);
    storeSlotI(RAX, In.A);
    break;
  }
  case bc::Op::FPToUI:
    emitHelper(HelperFPToUI, &In);
    break;
  case bc::Op::Load1: {
    loadSlotI(RCX, In.B);
    A.movsx8RM(RAX, RCX, 0);
    storeSlotI(RAX, In.A);
    break;
  }
  case bc::Op::Load4: {
    loadSlotI(RCX, In.B);
    A.movsxdRM(RAX, RCX, 0);
    storeSlotI(RAX, In.A);
    break;
  }
  case bc::Op::Load8: {
    loadSlotI(RCX, In.B);
    A.movRM(RAX, RCX, 0);
    storeSlotI(RAX, In.A);
    break;
  }
  case bc::Op::LoadF64: {
    loadSlotI(RCX, In.B);
    A.movsdXM(XMM0, RCX, 0);
    storeSlotD(XMM0, In.A);
    break;
  }
  case bc::Op::Store1: {
    loadSlotI(RAX, In.A);
    loadSlotI(RCX, In.B);
    A.mov8MR(RCX, 0, RAX);
    break;
  }
  case bc::Op::Store4: {
    loadSlotI(RAX, In.A);
    loadSlotI(RCX, In.B);
    A.mov32MR(RCX, 0, RAX);
    break;
  }
  case bc::Op::Store8: {
    loadSlotI(RAX, In.A);
    loadSlotI(RCX, In.B);
    A.movMR(RCX, 0, RAX);
    break;
  }
  case bc::Op::StoreF64: {
    loadSlotD(XMM0, In.A);
    loadSlotI(RCX, In.B);
    A.movsdMX(RCX, 0, XMM0);
    break;
  }
  case bc::Op::Gep: {
    if (In.Imm < 1 || In.Imm > std::numeric_limits<std::int32_t>::max()) {
      OK = false;
      return;
    }
    loadSlotI(RAX, In.C);
    A.imulRRI(RAX, RAX, static_cast<std::int32_t>(In.Imm));
    loadSlotI(RCX, In.B);
    A.addRR(RAX, RCX);
    storeSlotI(RAX, In.A);
    zeroSlotDIfFull(In.A);
    break;
  }
  case bc::Op::AllocaFixed: {
    if (In.Imm < 0 || In.Imm > std::numeric_limits<std::int32_t>::max()) {
      OK = false;
      return;
    }
    // Zero the arena block with rep stosb (DF is clear per the ABI).
    A.leaRM(RDI, ArenaReg, static_cast<std::int32_t>(In.Imm));
    A.xor32RR(RAX, RAX);
    A.movRI32(RCX, In.B);
    A.repStosb();
    A.leaRM(RAX, ArenaReg, static_cast<std::int32_t>(In.Imm));
    storeSlotI(RAX, In.A);
    zeroSlotDIfFull(In.A);
    break;
  }
  case bc::Op::AllocaDyn:
    emitHelper(HelperAllocaDyn, &In);
    break;
  case bc::Op::Select: {
    loadSlotI(RAX, In.B);
    A.testRR(RAX, RAX);
    std::size_t JZ = A.jccRel32(CC_E);
    A.movupsXM(XMM0, FrameReg, dispI(In.C));
    std::size_t JEnd = A.jmpRel32();
    A.patch32(JZ, static_cast<std::int32_t>(A.pos() - (JZ + 4)));
    A.movupsXM(XMM0, FrameReg, dispI(In.D));
    A.patch32(JEnd, static_cast<std::int32_t>(A.pos() - (JEnd + 4)));
    A.movupsMX(FrameReg, dispI(In.A), XMM0);
    break;
  }
  case bc::Op::Jmp:
    Fixups.push_back({A.jmpRel32(), In.A});
    break;
  case bc::Op::CondBr: {
    loadSlotI(RAX, In.A);
    A.testRR(RAX, RAX);
    Fixups.push_back({A.jccRel32(CC_NE), In.B});
    Fixups.push_back({A.jmpRel32(), In.C});
    break;
  }
  case bc::Op::Ret: {
    if (In.Sub)
      A.movupsXM(XMM0, FrameReg, dispI(In.A));
    else
      A.xorps(XMM0, XMM0);
    A.movupsMX(InvReg, static_cast<std::int32_t>(kInvRetOffset), XMM0);
    A.xor32RR(RAX, RAX);
    Fixups.push_back({A.jmpRel32(), epilogueIdx()});
    break;
  }
  case bc::Op::Unreachable: {
    emitHelper(HelperUnreachable, &In);
    Fixups.push_back({A.jmpRel32(), trapIdx()});
    break;
  }
  case bc::Op::CallBC:
    emitHelper(HelperCallBC, &In);
    break;
  case bc::Op::CallRT:
    emitHelper(HelperCallRT, &In);
    break;
  case bc::Op::CmpBr: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    unsigned CC =
        emitIntCompare(static_cast<ir::CmpPred>(In.Sub), In.B, In.C, In.W);
    A.setcc(CC, RDX);
    A.movzx8RR(RDX, RDX);
    storeSlotI(RDX, In.A); // plain movs: the cmp flags survive
    Fixups.push_back(
        {A.jccRel32(CC), static_cast<std::uint32_t>(In.Imm & 0xffffffff)});
    Fixups.push_back({A.jmpRel32(), static_cast<std::uint32_t>(
                                        static_cast<std::uint64_t>(In.Imm) >>
                                        32)});
    break;
  }
  case bc::Op::LoadOpStore4:
  case bc::Op::LoadOpStore8: {
    const bool Is32 = In.Code == bc::Op::LoadOpStore4;
    loadSlotI(RSI, In.A); // pointer stays live across the sequence
    if (Is32)
      A.movsxdRM(RAX, RSI, 0);
    else
      A.movRM(RAX, RSI, 0);
    storeSlotI(RAX, In.C);
    loadSlotI(RCX, In.B); // after the C write: rhs may alias it (x op x)
    switch (static_cast<bc::FusedOp>(In.Sub)) {
    case bc::FusedOp::Add:
      A.addRR(RAX, RCX);
      break;
    case bc::FusedOp::Sub:
      A.subRR(RAX, RCX);
      break;
    case bc::FusedOp::Mul:
      A.imulRR(RAX, RCX);
      break;
    case bc::FusedOp::And:
      A.andRR(RAX, RCX);
      break;
    case bc::FusedOp::Or:
      A.orRR(RAX, RCX);
      break;
    case bc::FusedOp::Xor:
      A.xorRR(RAX, RCX);
      break;
    }
    if (Is32)
      sext(RAX, 32);
    storeSlotI(RAX, In.D);
    if (Is32)
      A.mov32MR(RSI, 0, RAX);
    else
      A.movMR(RSI, 0, RAX);
    break;
  }
  case bc::Op::NumOps:
    OK = false;
    break;
  }
}

std::unique_ptr<CompiledFunction> FunctionEmitter::run() {
  auto CF = std::make_unique<CompiledFunction>();
  // Frame displacements must fit rel32 addressing.
  if (!isSupported() ||
      static_cast<std::uint64_t>(BF.NumFrame) * 16 + 16 >
          static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max()))
    return CF;

  classify();
  if (!OK)
    return CF;
  choosePins();

  // Prologue: save callee-saved registers, establish the pinned state,
  // then tail into Resume (entry or an OSR instruction boundary). Stack
  // stays 16-aligned at every helper call site.
  A.pushR(RBP);
  A.movRR(RBP, RSP);
  A.pushR(RBX);
  A.pushR(R12);
  A.pushR(R13);
  A.pushR(R14);
  A.pushR(R15);
  A.aluRI(5, RSP, 8); // sub rsp, 8
  A.movRR(InvReg, RDI);
  A.movRR(FrameReg, RSI);
  A.movRR(ArenaReg, RDX);
  for (int P = 0; P < 2; ++P)
    if (Pin[P] >= 0)
      A.movRM(PinRegs[P], FrameReg,
              dispI(static_cast<std::uint32_t>(Pin[P])));
  A.jmpR(RCX);

  const auto N = static_cast<std::uint32_t>(BF.Code.size());
  CF->InstOffsets.resize(N + 2, 0);
  for (std::uint32_t I = 0; I < N && OK; ++I) {
    CF->InstOffsets[I] = static_cast<std::uint32_t>(A.pos());
    emitInst(I);
  }
  if (!OK)
    return CF;

  // Trap exit falls through into the epilogue with eax = 1.
  CF->InstOffsets[trapIdx()] = static_cast<std::uint32_t>(A.pos());
  A.movRI32(RAX, 1);
  CF->InstOffsets[epilogueIdx()] = static_cast<std::uint32_t>(A.pos());
  A.aluRI(0, RSP, 8); // add rsp, 8
  A.popR(R15);
  A.popR(R14);
  A.popR(R13);
  A.popR(R12);
  A.popR(RBX);
  A.popR(RBP);
  A.ret();

  for (const Fixup &F : Fixups)
    A.patch32(F.Pos, static_cast<std::int32_t>(
                         static_cast<std::int64_t>(CF->InstOffsets[F.Target]) -
                         static_cast<std::int64_t>(F.Pos + 4)));

  if (!CF->Code.map(A.B.size()) || !CF->Code.finalize(A.B.data(), A.B.size()))
    return std::make_unique<CompiledFunction>(); // mapping failed: fallback
  CF->Supported = true;
  CF->PinnedSlots =
      static_cast<std::uint32_t>((Pin[0] >= 0) + (Pin[1] >= 0));
  return CF;
}

} // namespace

std::unique_ptr<CompiledFunction>
compileFunction(const bc::BCFunction &BF, const CompileOptions &Opts) {
  return FunctionEmitter(BF, Opts).run();
}

} // namespace mcc::interp::jit
