//===--- JITCompiler.cpp - bc::Inst → x86-64 template emission -------------===//
//
// One emission pass over the function's instruction array: each bc::Op has
// a machine-code template whose operand bytes are patched with the frame
// displacements the BytecodeCompiler already resolved. Branch targets
// become rel32 fixups resolved after the pass from the per-instruction
// offset table (the same table OSR uses to resume a bytecode frame
// mid-loop).
//
// On top of the templates sit three optimizing layers:
//
//  * A linear-scan register allocator over frame slots. The slot-kind
//    analysis below finds int-only and double-only slots; the hottest
//    (by the BytecodeCompiler's back-edge-weighted SlotMeta) get whole-
//    function register ownership — ints in callee-saved r14/r15/rbp,
//    doubles in xmm8–xmm15. Ownership is whole-function: the prologue
//    loads every assignment, so OSR can still enter at any InstOffsets
//    boundary. Helpers read and write operands through frame memory, so
//    call sites spill the exact operand slots (plus every live xmm
//    assignment — SysV has no callee-saved xmm) and reload afterwards.
//
//  * Fused templates: CmpBr/LoadOpStore superinstructions, a dead-store
//    peephole that keeps a CmpBr's never-read result out of memory, and
//    an FCmp+CondBr fusion that branches on ucomisd flags directly.
//
//  * Direct native→native calls: CallBC sites test the callee's entry
//    cell and, when published, build the callee frame on the machine
//    stack and call its prologue directly — no helper round-trip.
//
// Semantics mirror BytecodeInterpreter.cpp handler for handler: the same
// sign-extension discipline (InterpOps.h), the same field-write behaviour
// (int ops leave the D lane untouched; Mov/Gep/Select/calls write what
// the bytecode handler writes), the same trap messages via host helpers.
//
//===----------------------------------------------------------------------===//
#include "jit/JIT.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace mcc::interp::jit {

const char *opName(bc::Op O) {
  static const char *const Names[] = {
      "Mov",      "Add",         "Sub",       "Mul",      "SDiv",
      "UDiv",     "SRem",        "URem",      "And",      "Or",
      "Xor",      "Shl",         "AShr",      "LShr",     "FAdd",
      "FSub",     "FMul",        "FDiv",      "FNeg",     "ICmp",
      "FCmp",     "SExt",        "ZExt",      "Trunc",    "SIToFP",
      "UIToFP",   "FPToSI",      "FPToUI",    "Load1",    "Load4",
      "Load8",    "LoadF64",     "Store1",    "Store4",   "Store8",
      "StoreF64", "Gep",         "AllocaFixed", "AllocaDyn", "Select",
      "Jmp",      "CondBr",      "Ret",       "Unreachable", "CallBC",
      "CallRT",   "CmpBr",       "LoadOpStore4", "LoadOpStore8",
  };
  static_assert(sizeof(Names) / sizeof(Names[0]) ==
                static_cast<std::size_t>(bc::Op::NumOps));
  auto Idx = static_cast<std::size_t>(O);
  return Idx < static_cast<std::size_t>(bc::Op::NumOps) ? Names[Idx] : "?";
}

bool parseOpName(std::string_view Name, bc::Op &Out) {
  for (std::size_t I = 0; I < static_cast<std::size_t>(bc::Op::NumOps); ++I)
    if (Name == opName(static_cast<bc::Op>(I))) {
      Out = static_cast<bc::Op>(I);
      return true;
    }
  return false;
}

namespace {

// General-purpose register numbers (hardware encoding).
enum Reg : unsigned {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};
enum Xmm : unsigned {
  XMM0 = 0,
  XMM1 = 1,
  XMM8 = 8,
  XMM9 = 9,
  XMM10 = 10,
  XMM11 = 11,
  XMM12 = 12,
  XMM13 = 13,
  XMM14 = 14,
  XMM15 = 15,
};

// Condition-code nibbles for 0F 8x / 0F 9x.
enum CC : unsigned {
  CC_B = 0x2,  // unsigned <   (also: ucomisd unordered-or-below)
  CC_AE = 0x3, // unsigned >=
  CC_E = 0x4,
  CC_NE = 0x5,
  CC_BE = 0x6, // unsigned <=
  CC_A = 0x7,  // unsigned >
  CC_P = 0xA,
  CC_NP = 0xB,
  CC_L = 0xC,
  CC_GE = 0xD,
  CC_LE = 0xE,
  CC_G = 0xF,
};

/// Flat byte emitter: raw encodings only, no state beyond the buffer.
class Asm {
public:
  std::vector<std::uint8_t> B;

  [[nodiscard]] std::size_t pos() const { return B.size(); }
  void u8(std::uint8_t V) { B.push_back(V); }
  void u32(std::uint32_t V) {
    for (int I = 0; I < 4; ++I)
      B.push_back(static_cast<std::uint8_t>(V >> (I * 8)));
  }
  void u64(std::uint64_t V) {
    for (int I = 0; I < 8; ++I)
      B.push_back(static_cast<std::uint8_t>(V >> (I * 8)));
  }
  void patch32(std::size_t Pos, std::int32_t V) {
    for (int I = 0; I < 4; ++I)
      B[Pos + I] = static_cast<std::uint8_t>(
          static_cast<std::uint32_t>(V) >> (I * 8));
  }

  /// REX prefix when needed (64-bit width or extended registers).
  void rex(bool W, unsigned Reg, unsigned Rm) {
    if (W || Reg >= 8 || Rm >= 8)
      u8(0x40 | (W ? 8 : 0) | ((Reg >> 3) & 1) << 2 | ((Rm >> 3) & 1));
  }

  /// ModRM(+SIB+disp) for [Base + Disp]; Reg is the reg field (mod 8
  /// applied here, extension bits handled by rex()).
  void mem(unsigned Reg, unsigned Base, std::int32_t Disp) {
    unsigned Bl = Base & 7, Rl = Reg & 7;
    bool Sib = (Bl == 4); // rsp/r12 need a SIB byte
    unsigned Mod;
    if (Disp == 0 && Bl != 5) // rbp/r13 always need a displacement
      Mod = 0;
    else if (Disp >= -128 && Disp <= 127)
      Mod = 1;
    else
      Mod = 2;
    u8(static_cast<std::uint8_t>(Mod << 6 | Rl << 3 | (Sib ? 4 : Bl)));
    if (Sib)
      u8(0x24); // no index, base = Bl
    if (Mod == 1)
      u8(static_cast<std::uint8_t>(Disp));
    else if (Mod == 2)
      u32(static_cast<std::uint32_t>(Disp));
  }
  void direct(unsigned Reg, unsigned Rm) {
    u8(static_cast<std::uint8_t>(0xC0 | (Reg & 7) << 3 | (Rm & 7)));
  }

  // --- GP moves ---
  void movRI64(unsigned R, std::uint64_t V) {
    rex(true, 0, R);
    u8(0xB8 + (R & 7));
    u64(V);
  }
  void movRI32(unsigned R, std::uint32_t V) {
    rex(false, 0, R);
    u8(0xB8 + (R & 7));
    u32(V);
  }
  void movRR(unsigned D, unsigned S) { // 64-bit
    rex(true, S, D);
    u8(0x89);
    direct(S, D);
  }
  void movRM(unsigned R, unsigned Base, std::int32_t Disp) {
    rex(true, R, Base);
    u8(0x8B);
    mem(R, Base, Disp);
  }
  void movMR(unsigned Base, std::int32_t Disp, unsigned R) {
    rex(true, R, Base);
    u8(0x89);
    mem(R, Base, Disp);
  }
  void mov32MR(unsigned Base, std::int32_t Disp, unsigned R) {
    rex(false, R, Base);
    u8(0x89);
    mem(R, Base, Disp);
  }
  void mov8MR(unsigned Base, std::int32_t Disp, unsigned R) {
    rex(false, R, Base); // R must be rax/rcx/rdx (al/cl/dl)
    u8(0x88);
    mem(R, Base, Disp);
  }
  void movMI32(unsigned Base, std::int32_t Disp, std::int32_t V) {
    rex(true, 0, Base); // mov qword [m], sext(imm32)
    u8(0xC7);
    mem(0, Base, Disp);
    u32(static_cast<std::uint32_t>(V));
  }
  void movsx8RM(unsigned R, unsigned Base, std::int32_t Disp) {
    rex(true, R, Base);
    u8(0x0F);
    u8(0xBE);
    mem(R, Base, Disp);
  }
  void movsxdRM(unsigned R, unsigned Base, std::int32_t Disp) {
    rex(true, R, Base);
    u8(0x63);
    mem(R, Base, Disp);
  }
  void movsx8RR(unsigned D, unsigned S) {
    rex(true, D, S);
    u8(0x0F);
    u8(0xBE);
    direct(D, S);
  }
  void movzx8RR(unsigned D, unsigned S) {
    rex(true, D, S);
    u8(0x0F);
    u8(0xB6);
    direct(D, S);
  }
  void movsxdRR(unsigned D, unsigned S) {
    rex(true, D, S);
    u8(0x63);
    direct(D, S);
  }
  void mov32RR(unsigned D, unsigned S) { // zero-extends to 64
    rex(false, S, D);
    u8(0x89);
    direct(S, D);
  }
  void leaRM(unsigned R, unsigned Base, std::int32_t Disp) {
    rex(true, R, Base);
    u8(0x8D);
    mem(R, Base, Disp);
  }

  // --- GP arithmetic (MR forms: op rm64, r64) ---
  void alu(std::uint8_t Opc, unsigned D, unsigned S) {
    rex(true, S, D);
    u8(Opc);
    direct(S, D);
  }
  void addRR(unsigned D, unsigned S) { alu(0x01, D, S); }
  void subRR(unsigned D, unsigned S) { alu(0x29, D, S); }
  void andRR(unsigned D, unsigned S) { alu(0x21, D, S); }
  void orRR(unsigned D, unsigned S) { alu(0x09, D, S); }
  void xorRR(unsigned D, unsigned S) { alu(0x31, D, S); }
  void cmpRR(unsigned D, unsigned S) { alu(0x39, D, S); }
  void testRR(unsigned D, unsigned S) { alu(0x85, D, S); }
  void imulRR(unsigned D, unsigned S) {
    rex(true, D, S);
    u8(0x0F);
    u8(0xAF);
    direct(D, S);
  }
  void imulRRI(unsigned D, unsigned S, std::int32_t V) {
    rex(true, D, S);
    u8(0x69);
    direct(D, S);
    u32(static_cast<std::uint32_t>(V));
  }
  void imulRM(unsigned D, unsigned Base, std::int32_t Disp) {
    rex(true, D, Base);
    u8(0x0F);
    u8(0xAF);
    mem(D, Base, Disp);
  }
  /// op qword [Base+Disp], r64 — MR opcodes (01/09/21/29/31/39).
  void aluMR(std::uint8_t Opc, unsigned Base, std::int32_t Disp,
             unsigned R) {
    rex(true, R, Base);
    u8(Opc);
    mem(R, Base, Disp);
  }
  /// op dword [Base+Disp], r32.
  void alu32MR(std::uint8_t Opc, unsigned Base, std::int32_t Disp,
               unsigned R) {
    rex(false, R, Base);
    u8(Opc);
    mem(R, Base, Disp);
  }
  /// op r64, qword [Base+Disp] — RM opcodes (MR + 2: 03/0B/23/2B/33/3B).
  void aluRM(std::uint8_t Opc, unsigned R, unsigned Base,
             std::int32_t Disp) {
    rex(true, R, Base);
    u8(Opc);
    mem(R, Base, Disp);
  }
  /// op r32, r/m32 or r/m32, r32 (register direct).
  void alu32(std::uint8_t Opc, unsigned D, unsigned S) {
    rex(false, S, D);
    u8(Opc);
    direct(S, D);
  }
  void alu32RM(std::uint8_t Opc, unsigned R, unsigned Base,
               std::int32_t Disp) {
    rex(false, R, Base);
    u8(Opc);
    mem(R, Base, Disp);
  }
  /// 81/83 group on r32: ext ∈ {0 add, 1 or, 4 and, 5 sub, 6 xor, 7 cmp}.
  void alu32RI(unsigned Ext, unsigned R, std::int32_t V) {
    rex(false, 0, R);
    if (V >= -128 && V <= 127) {
      u8(0x83);
      direct(Ext, R);
      u8(static_cast<std::uint8_t>(V));
    } else {
      u8(0x81);
      direct(Ext, R);
      u32(static_cast<std::uint32_t>(V));
    }
  }
  void imulRMI(unsigned D, unsigned Base, std::int32_t Disp,
               std::int32_t V) {
    rex(true, D, Base);
    u8(0x69);
    mem(D, Base, Disp);
    u32(static_cast<std::uint32_t>(V));
  }
  void mov32RM(unsigned R, unsigned Base, std::int32_t Disp) {
    rex(false, R, Base); // loads zero-extend to 64
    u8(0x8B);
    mem(R, Base, Disp);
  }
  /// 81/83 group: ext ∈ {0 add, 1 or, 4 and, 5 sub, 6 xor, 7 cmp}.
  void aluRI(unsigned Ext, unsigned R, std::int32_t V) {
    rex(true, 0, R);
    if (V >= -128 && V <= 127) {
      u8(0x83);
      direct(Ext, R);
      u8(static_cast<std::uint8_t>(V));
    } else {
      u8(0x81);
      direct(Ext, R);
      u32(static_cast<std::uint32_t>(V));
    }
  }
  void and32RI8(unsigned R, std::uint8_t V) { // and r32, imm8 (clears hi)
    rex(false, 0, R);
    u8(0x83);
    direct(4, R);
    u8(V);
  }
  void negR(unsigned R) {
    rex(true, 0, R);
    u8(0xF7);
    direct(3, R);
  }
  /// D3 group shifts by cl: ext ∈ {4 shl, 5 shr, 7 sar}.
  void shiftCl(unsigned Ext, unsigned R) {
    rex(true, 0, R);
    u8(0xD3);
    direct(Ext, R);
  }
  void cmpMI8(unsigned Base, std::int32_t Disp, std::uint8_t V) {
    rex(true, 7, Base); // cmp qword [m], imm8
    u8(0x83);
    mem(7, Base, Disp);
    u8(V);
  }
  void setcc(unsigned CC, unsigned R8) { // R8 must be al/cl/dl
    u8(0x0F);
    u8(0x90 + CC);
    direct(0, R8);
  }
  void xor32RR(unsigned D, unsigned S) {
    rex(false, S, D);
    u8(0x31);
    direct(S, D);
  }

  // --- control flow ---
  std::size_t jmpRel32() {
    u8(0xE9);
    std::size_t P = pos();
    u32(0);
    return P;
  }
  std::size_t jccRel32(unsigned CC) {
    u8(0x0F);
    u8(0x80 + CC);
    std::size_t P = pos();
    u32(0);
    return P;
  }
  void jmpR(unsigned R) {
    rex(false, 0, R);
    u8(0xFF);
    direct(4, R);
  }
  void callM(unsigned Base, std::int32_t Disp) {
    rex(false, 0, Base);
    u8(0xFF);
    mem(2, Base, Disp);
  }
  void callR(unsigned R) {
    rex(false, 0, R);
    u8(0xFF);
    direct(2, R);
  }
  void test32RR(unsigned D, unsigned S) { // 32-bit: callee return status
    rex(false, S, D);
    u8(0x85);
    direct(S, D);
  }
  void pushR(unsigned R) {
    rex(false, 0, R);
    u8(0x50 + (R & 7));
  }
  void popR(unsigned R) {
    rex(false, 0, R);
    u8(0x58 + (R & 7));
  }
  void ret() { u8(0xC3); }
  void repStosb() {
    u8(0xF3);
    u8(0xAA);
  }
  void repMovsq() { // qword copy rsi→rdi, count rcx
    u8(0xF3);
    rex(true, 0, 0);
    u8(0xA5);
  }
  void repStosq() { // qword fill rax→rdi, count rcx
    u8(0xF3);
    rex(true, 0, 0);
    u8(0xAB);
  }

  // --- SSE ---
  void sse(std::uint8_t Prefix, std::uint8_t Op, unsigned R, unsigned Rm,
           bool RexW = false) { // reg-reg form
    if (Prefix)
      u8(Prefix);
    rex(RexW, R, Rm);
    u8(0x0F);
    u8(Op);
    direct(R, Rm);
  }
  void sseM(std::uint8_t Prefix, std::uint8_t Op, unsigned R, unsigned Base,
            std::int32_t Disp) {
    if (Prefix)
      u8(Prefix);
    rex(false, R, Base);
    u8(0x0F);
    u8(Op);
    mem(R, Base, Disp);
  }
  void movsdXM(unsigned X, unsigned Base, std::int32_t D) {
    sseM(0xF2, 0x10, X, Base, D);
  }
  void movsdMX(unsigned Base, std::int32_t D, unsigned X) {
    sseM(0xF2, 0x11, X, Base, D);
  }
  void movupsXM(unsigned X, unsigned Base, std::int32_t D) {
    sseM(0, 0x10, X, Base, D);
  }
  void movupsMX(unsigned Base, std::int32_t D, unsigned X) {
    sseM(0, 0x11, X, Base, D);
  }
  void movsdRR(unsigned D, unsigned S) { // low 64 bits only
    sse(0xF2, 0x10, D, S);
  }
  void addsd(unsigned D, unsigned S) { sse(0xF2, 0x58, D, S); }
  void subsd(unsigned D, unsigned S) { sse(0xF2, 0x5C, D, S); }
  void mulsd(unsigned D, unsigned S) { sse(0xF2, 0x59, D, S); }
  void divsd(unsigned D, unsigned S) { sse(0xF2, 0x5E, D, S); }
  void ucomisd(unsigned A, unsigned B2) { sse(0x66, 0x2E, A, B2); }
  void xorpd(unsigned D, unsigned S) { sse(0x66, 0x57, D, S); }
  void xorps(unsigned D, unsigned S) { sse(0, 0x57, D, S); }
  void cvtsi2sd(unsigned X, unsigned R) { sse(0xF2, 0x2A, X, R, true); }
  void cvttsd2si(unsigned R, unsigned X) { sse(0xF2, 0x2C, R, X, true); }
  void movqXR(unsigned X, unsigned R) { sse(0x66, 0x6E, X, R, true); }
};

/// Stack bytes a direct call reserves for a callee: invocation record +
/// frame + arena, each 16-aligned so the call-site alignment holds.
std::size_t directCallSlabBytes(const bc::BCFunction &BF) {
  return kInvSize + static_cast<std::size_t>(BF.NumFrame) * 16 +
         ((static_cast<std::size_t>(BF.ArenaBytes) + 15) & ~std::size_t(15));
}

/// How a frame slot is observed across the function. Int ⊔ FP = Full;
/// Full slots are copied 16 bytes at a time and are never allocated.
enum class SlotKind : std::uint8_t { Unused = 0, Int = 1, FP = 2, Full = 3 };

inline SlotKind join(SlotKind A, SlotKind B) {
  return static_cast<SlotKind>(static_cast<unsigned>(A) |
                               static_cast<unsigned>(B));
}

class FunctionEmitter {
public:
  FunctionEmitter(const bc::BCFunction &BF, const CompileOptions &Opts)
      : BF(BF), Opts(Opts) {}

  std::unique_ptr<CompiledFunction> run();

private:
  struct Fixup {
    std::size_t Pos;        ///< position of the rel32 to patch
    std::uint32_t Target;   ///< bytecode inst index (N = epilogue, N+1 = trap)
  };

  const bc::BCFunction &BF;
  const CompileOptions &Opts;
  Asm A;
  std::vector<SlotKind> Kinds;
  std::vector<Fixup> Fixups;
  bool OK = true;

  /// Register file of the allocator. IntReg/FPReg map a frame slot to
  /// its owning register (-1 = lives in frame memory); the assignment
  /// lists drive the prologue loads and the spill loops.
  std::vector<std::int32_t> IntReg;
  std::vector<std::int32_t> FPReg;
  std::vector<RegAssignment> Assigned;
  bool HaveMeta = false; ///< BF.Slots present (always, except old artifacts)
  std::vector<bool> BranchTarget; ///< inst is the target of some branch
  std::vector<bool> Reloc; ///< const slot holds an engine-patched address
  std::uint32_t Spills = 0;
  std::uint32_t Fused = 0;
  std::uint32_t DirectSites = 0;

  static constexpr unsigned FrameReg = RBX, ArenaReg = R12, InvReg = R13;
  /// GPRs free for allocation, callee-saved first so the hottest slots
  /// survive calls untouched (rbx/r12/r13 are pinned to the frame/arena/
  /// invocation; rbp is just another register — the generated code keeps
  /// no frame pointer). r8–r11 are caller-saved: their live subset rides
  /// the same call-site spill/reload discipline as the xmm pool. r11 is
  /// also emitCallBC's entry scratch, which is safe because every call
  /// site spills before the entry cell is loaded.
  static constexpr unsigned IntPool[] = {R14, R15, RBP, R8, R9, R10, R11};
  [[nodiscard]] static bool callerSaved(unsigned R) {
    return R >= R8 && R <= R11;
  }
  /// xmm8–15: high half of the SSE file, caller-saved like all of it —
  /// every call site spills the live subset.
  static constexpr unsigned FPPool[] = {XMM8,  XMM9,  XMM10, XMM11,
                                        XMM12, XMM13, XMM14, XMM15};

  [[nodiscard]] std::uint32_t epilogueIdx() const {
    return static_cast<std::uint32_t>(BF.Code.size());
  }
  [[nodiscard]] std::uint32_t trapIdx() const { return epilogueIdx() + 1; }

  void mark(std::uint32_t Slot, SlotKind K) {
    Kinds[Slot] = join(Kinds[Slot], K);
  }
  void classify();
  void allocate();
  void collectBranchTargets();

  [[nodiscard]] static std::int32_t dispI(std::uint32_t Slot) {
    return static_cast<std::int32_t>(Slot) * 16;
  }
  [[nodiscard]] static std::int32_t dispD(std::uint32_t Slot) {
    return static_cast<std::int32_t>(Slot) * 16 + 8;
  }

  void loadSlotI(unsigned R, std::uint32_t Slot) {
    if (IntReg[Slot] >= 0) {
      if (static_cast<unsigned>(IntReg[Slot]) != R)
        A.movRR(R, static_cast<unsigned>(IntReg[Slot]));
    } else {
      A.movRM(R, FrameReg, dispI(Slot));
    }
  }
  /// mov only — never touches flags (CmpBr relies on that).
  void storeSlotI(unsigned R, std::uint32_t Slot) {
    if (IntReg[Slot] >= 0) {
      if (static_cast<unsigned>(IntReg[Slot]) != R)
        A.movRR(static_cast<unsigned>(IntReg[Slot]), R);
    } else {
      A.movMR(FrameReg, dispI(Slot), R);
    }
  }
  /// The source register of an allocated int slot, or Scratch after a
  /// load from frame memory. The result must only be read.
  unsigned srcSlotI(std::uint32_t Slot, unsigned Scratch) {
    if (IntReg[Slot] >= 0)
      return static_cast<unsigned>(IntReg[Slot]);
    A.movRM(Scratch, FrameReg, dispI(Slot));
    return Scratch;
  }
  unsigned srcSlotD(std::uint32_t Slot, unsigned Scratch) {
    if (FPReg[Slot] >= 0)
      return static_cast<unsigned>(FPReg[Slot]);
    A.movsdXM(Scratch, FrameReg, dispD(Slot));
    return Scratch;
  }

  /// Compile-time int value of a constant-pool slot. Global-address
  /// constants are patched per engine after bytecode compilation and
  /// are never foldable.
  [[nodiscard]] bool constInt(std::uint32_t Slot, std::int64_t &V) const {
    if (Slot >= BF.NumConsts || Reloc[Slot])
      return false;
    V = BF.ConstPoolInts[Slot];
    return true;
  }
  /// Same, restricted to values an ALU sign-extended imm32 can encode.
  [[nodiscard]] bool constImm32(std::uint32_t Slot, std::int32_t &V) const {
    std::int64_t W;
    if (!constInt(Slot, W) ||
        W < std::numeric_limits<std::int32_t>::min() ||
        W > std::numeric_limits<std::int32_t>::max())
      return false;
    V = static_cast<std::int32_t>(W);
    return true;
  }
  /// 81/83-group ext code of a binop, or ~0u when none exists (Mul).
  [[nodiscard]] static unsigned aluExt(bc::Op Op) {
    switch (Op) {
    case bc::Op::Add:
      return 0;
    case bc::Op::Or:
      return 1;
    case bc::Op::And:
      return 4;
    case bc::Op::Sub:
      return 5;
    case bc::Op::Xor:
      return 6;
    default:
      return ~0u;
    }
  }
  void loadSlotD(unsigned X, std::uint32_t Slot) {
    if (FPReg[Slot] >= 0) {
      if (static_cast<unsigned>(FPReg[Slot]) != X)
        A.movsdRR(X, static_cast<unsigned>(FPReg[Slot]));
    } else {
      A.movsdXM(X, FrameReg, dispD(Slot));
    }
  }
  void storeSlotD(unsigned X, std::uint32_t Slot) {
    if (FPReg[Slot] >= 0) {
      if (static_cast<unsigned>(FPReg[Slot]) != X)
        A.movsdRR(static_cast<unsigned>(FPReg[Slot]), X);
    } else {
      A.movsdMX(FrameReg, dispD(Slot), X);
    }
  }

  // --- call-site spill discipline -----------------------------------------
  // Helpers (and direct callees reading their argument slots) observe
  // operands through frame memory, and the SysV ABI preserves neither
  // xmm registers nor r8–r11. So around every call: write back the exact
  // int operand slots the callee reads, write back every *live*
  // caller-saved assignment (all FP, plus the r8–r11 slice of the int
  // pool), and afterwards reload whatever the helper may have redefined
  // plus the clobbered caller-saved set. The liveness filter is sound
  // because SlotMeta intervals are widened over every back-edge range
  // they intersect.
  [[nodiscard]] bool liveAt(std::uint32_t Slot, std::uint32_t Idx) const {
    const bc::SlotMeta &M = BF.Slots[Slot];
    return M.LiveBegin <= Idx && Idx <= M.LiveEnd;
  }
  void spillIntSlot(std::uint32_t Slot) {
    if (IntReg[Slot] >= 0) {
      A.movMR(FrameReg, dispI(Slot), static_cast<unsigned>(IntReg[Slot]));
      ++Spills;
    }
  }
  void reloadIntSlot(std::uint32_t Slot) {
    if (IntReg[Slot] >= 0)
      A.movRM(static_cast<unsigned>(IntReg[Slot]), FrameReg, dispI(Slot));
  }
  void spillLiveVolatile(std::uint32_t Idx) {
    for (const RegAssignment &R : Assigned) {
      if (!liveAt(R.Slot, Idx))
        continue;
      if (R.FP) {
        A.movsdMX(FrameReg, dispD(R.Slot), R.Reg);
        ++Spills;
      } else if (callerSaved(R.Reg)) {
        A.movMR(FrameReg, dispI(R.Slot), R.Reg);
        ++Spills;
      }
    }
  }
  void reloadLiveVolatile(std::uint32_t Idx) {
    for (const RegAssignment &R : Assigned) {
      if (!liveAt(R.Slot, Idx))
        continue;
      if (R.FP)
        A.movsdXM(R.Reg, FrameReg, dispD(R.Slot));
      else if (callerSaved(R.Reg))
        A.movRM(R.Reg, FrameReg, dispI(R.Slot));
    }
  }
  /// Mirrors the bytecode's full-RTValue writes (ofPtr leaves D = 0) when
  /// someone may read the slot 16 bytes at a time.
  void zeroSlotDIfFull(std::uint32_t Slot) {
    if (Kinds[Slot] == SlotKind::Full)
      A.movMI32(FrameReg, dispD(Slot), 0);
  }

  void sext(unsigned R, unsigned W) {
    if (W >= 64)
      return;
    if (W == 32)
      A.movsxdRR(R, R);
    else if (W == 8)
      A.movsx8RR(R, R);
    else { // W == 1: bit0 ? -1 : 0
      A.and32RI8(R, 1);
      A.negR(R);
    }
  }
  void zext(unsigned R, unsigned W) {
    if (W >= 64)
      return;
    if (W == 32)
      A.mov32RR(R, R);
    else if (W == 8)
      A.movzx8RR(R, R);
    else
      A.and32RI8(R, 1);
  }
  [[nodiscard]] static bool widthOk(unsigned W) {
    return W == 1 || W == 8 || W == 32 || W == 64;
  }

  void emitHelper(HelperIndex H, const bc::Inst *In) {
    A.movRR(RDI, InvReg);
    A.movRI64(RSI, reinterpret_cast<std::uint64_t>(In));
    A.movRM(RAX, InvReg, static_cast<std::int32_t>(kInvOpsOffset));
    A.callM(RAX, static_cast<std::int32_t>(H) * 8);
    A.cmpMI8(InvReg, static_cast<std::int32_t>(kInvTrapOffset), 0);
    Fixups.push_back({A.jccRel32(CC_NE), trapIdx()});
  }

  /// Loads, width-extends and compares the ICmp/CmpBr operands; returns
  /// the condition code that is true when the predicate holds. 64-bit
  /// compares need no extension and run straight against the allocated
  /// registers / frame memory; 32-bit ones fold the extension into the
  /// operand load (movsxd / mov32).
  unsigned emitIntCompare(ir::CmpPred P, std::uint32_t L, std::uint32_t R,
                          unsigned W) {
    bool Signed = false;
    unsigned CC = CC_E;
    switch (P) {
    case ir::CmpPred::EQ:
      CC = CC_E;
      break;
    case ir::CmpPred::NE:
      CC = CC_NE;
      break;
    case ir::CmpPred::SLT:
      CC = CC_L;
      Signed = true;
      break;
    case ir::CmpPred::SLE:
      CC = CC_LE;
      Signed = true;
      break;
    case ir::CmpPred::SGT:
      CC = CC_G;
      Signed = true;
      break;
    case ir::CmpPred::SGE:
      CC = CC_GE;
      Signed = true;
      break;
    case ir::CmpPred::ULT:
      CC = CC_B;
      break;
    case ir::CmpPred::ULE:
      CC = CC_BE;
      break;
    case ir::CmpPred::UGT:
      CC = CC_A;
      break;
    case ir::CmpPred::UGE:
      CC = CC_AE;
      break;
    default:
      OK = false;
      break;
    }
    if (W == 64) {
      std::int32_t Imm;
      if (constImm32(R, Imm)) {
        if (IntReg[L] >= 0) {
          A.aluRI(7, static_cast<unsigned>(IntReg[L]), Imm);
        } else {
          A.movRM(RAX, FrameReg, dispI(L));
          A.aluRI(7, RAX, Imm);
        }
      } else if (IntReg[L] >= 0) {
        if (IntReg[R] >= 0)
          A.cmpRR(static_cast<unsigned>(IntReg[L]),
                  static_cast<unsigned>(IntReg[R]));
        else
          A.aluRM(0x3B, static_cast<unsigned>(IntReg[L]), FrameReg,
                  dispI(R));
      } else if (IntReg[R] >= 0) {
        A.aluMR(0x39, FrameReg, dispI(L), static_cast<unsigned>(IntReg[R]));
      } else {
        A.movRM(RAX, FrameReg, dispI(L));
        A.aluRM(0x3B, RAX, FrameReg, dispI(R));
      }
      return CC;
    }
    if (W == 32) {
      // Low-half compare: the interpreter truncates to W before
      // extending, so a 32-bit cmp sets identical flags for signed and
      // unsigned predicates alike — no extensions needed.
      std::int64_t CV;
      if (constInt(R, CV)) {
        auto Imm = static_cast<std::int32_t>(CV); // low half is the value
        if (IntReg[L] >= 0) {
          A.alu32RI(7, static_cast<unsigned>(IntReg[L]), Imm);
        } else {
          A.mov32RM(RAX, FrameReg, dispI(L));
          A.alu32RI(7, RAX, Imm);
        }
      } else if (IntReg[L] >= 0) {
        if (IntReg[R] >= 0)
          A.alu32(0x39, static_cast<unsigned>(IntReg[L]),
                  static_cast<unsigned>(IntReg[R]));
        else
          A.alu32RM(0x3B, static_cast<unsigned>(IntReg[L]), FrameReg,
                    dispI(R));
      } else if (IntReg[R] >= 0) {
        A.alu32MR(0x39, FrameReg, dispI(L), static_cast<unsigned>(IntReg[R]));
      } else {
        A.mov32RM(RAX, FrameReg, dispI(L));
        A.alu32RM(0x3B, RAX, FrameReg, dispI(R));
      }
      return CC;
    }
    loadSlotI(RAX, L);
    loadSlotI(RCX, R);
    if (Signed) {
      sext(RAX, W);
      sext(RCX, W);
    } else {
      zext(RAX, W);
      zext(RCX, W);
    }
    A.cmpRR(RAX, RCX);
    return CC;
  }

  /// Int binop computed directly in the destination's register: mov the
  /// left operand in (skipped when it already lives there), then one ALU
  /// op against the right operand's register or frame slot. The one
  /// alias hazard is Sub with A==C and A!=B — the mov would destroy the
  /// subtrahend — which stays on the scratch path; commutative ops swap
  /// the operands instead. Returns false when not applicable.
  bool tryBinOpInReg(const bc::Inst &In) {
    if (IntReg[In.A] < 0)
      return false;
    std::uint32_t L = In.B, R = In.C;
    if (In.A == R && In.A != L) {
      if (In.Code == bc::Op::Sub)
        return false;
      std::swap(L, R); // A = R op L: the aliased operand stays in place
    }
    auto D = static_cast<unsigned>(IntReg[In.A]);
    std::int32_t Imm;
    const bool HaveImm = constImm32(R, Imm);
    if (HaveImm && In.Code == bc::Op::Mul) {
      // Three-operand imul folds the load and the multiply into one op.
      if (IntReg[L] >= 0)
        A.imulRRI(D, static_cast<unsigned>(IntReg[L]), Imm);
      else
        A.imulRMI(D, FrameReg, dispI(L), Imm);
      sext(D, In.W);
      return true;
    }
    loadSlotI(D, L); // self-mov elided when A == L
    std::uint8_t MR = 0; // MR-form ALU opcode; 0 = imul
    switch (In.Code) {
    case bc::Op::Add:
      MR = 0x01;
      break;
    case bc::Op::Sub:
      MR = 0x29;
      break;
    case bc::Op::And:
      MR = 0x21;
      break;
    case bc::Op::Or:
      MR = 0x09;
      break;
    case bc::Op::Xor:
      MR = 0x31;
      break;
    default:
      break;
    }
    if (HaveImm) {
      A.aluRI(aluExt(In.Code), D, Imm);
    } else if (IntReg[R] >= 0) {
      if (MR)
        A.alu(MR, D, static_cast<unsigned>(IntReg[R]));
      else
        A.imulRR(D, static_cast<unsigned>(IntReg[R]));
    } else {
      if (MR)
        A.aluRM(MR + 2, D, FrameReg, dispI(R));
      else
        A.imulRM(D, FrameReg, dispI(R));
    }
    if (In.Code == bc::Op::Add || In.Code == bc::Op::Sub ||
        In.Code == bc::Op::Mul)
      sext(D, In.W); // bitwise ops keep canonical operands canonical
    return true;
  }

  void emitInst(std::uint32_t Idx);
  [[nodiscard]] bool canDirectCall(const bc::Inst &In) const;
  void emitCallBC(const bc::Inst &In, std::uint32_t Idx);
  bool tryFuseFCmpBr(std::uint32_t Idx);
};

void FunctionEmitter::classify() {
  Kinds.assign(BF.NumFrame, SlotKind::Unused);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> MovEdges;
  for (const bc::Inst &In : BF.Code) {
    switch (In.Code) {
    case bc::Op::Mov:
      MovEdges.emplace_back(In.A, In.B);
      break;
    case bc::Op::Add:
    case bc::Op::Sub:
    case bc::Op::Mul:
    case bc::Op::And:
    case bc::Op::Or:
    case bc::Op::Xor:
    case bc::Op::Shl:
    case bc::Op::AShr:
    case bc::Op::LShr:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      mark(In.C, SlotKind::Int);
      break;
    case bc::Op::SDiv:
    case bc::Op::UDiv:
    case bc::Op::SRem:
    case bc::Op::URem:
      // Helper op, but the helper reads and writes only the int lanes;
      // the call site spills B/C and reloads A around it.
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      mark(In.C, SlotKind::Int);
      break;
    case bc::Op::FAdd:
    case bc::Op::FSub:
    case bc::Op::FMul:
    case bc::Op::FDiv:
      mark(In.A, SlotKind::FP);
      mark(In.B, SlotKind::FP);
      mark(In.C, SlotKind::FP);
      break;
    case bc::Op::FNeg:
      mark(In.A, SlotKind::FP);
      mark(In.B, SlotKind::FP);
      break;
    case bc::Op::ICmp:
    case bc::Op::CmpBr:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      mark(In.C, SlotKind::Int);
      break;
    case bc::Op::FCmp:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::FP);
      mark(In.C, SlotKind::FP);
      break;
    case bc::Op::SExt:
    case bc::Op::ZExt:
    case bc::Op::Trunc:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      break;
    case bc::Op::SIToFP:
      mark(In.A, SlotKind::FP);
      mark(In.B, SlotKind::Int);
      break;
    case bc::Op::UIToFP:
      // Helper op with lane-exact accesses (spill/reload at the site).
      mark(In.A, SlotKind::FP);
      mark(In.B, SlotKind::Int);
      break;
    case bc::Op::FPToUI:
      mark(In.A, SlotKind::Int); // helper op, lane-exact
      mark(In.B, SlotKind::FP);
      break;
    case bc::Op::FPToSI:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::FP);
      break;
    case bc::Op::Load1:
    case bc::Op::Load4:
    case bc::Op::Load8:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      break;
    case bc::Op::LoadF64:
      mark(In.A, SlotKind::FP);
      mark(In.B, SlotKind::Int);
      break;
    case bc::Op::Store1:
    case bc::Op::Store4:
    case bc::Op::Store8:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      break;
    case bc::Op::StoreF64:
      mark(In.A, SlotKind::FP);
      mark(In.B, SlotKind::Int);
      break;
    case bc::Op::Gep:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      mark(In.C, SlotKind::Int);
      break;
    case bc::Op::AllocaFixed:
      mark(In.A, SlotKind::Int);
      break;
    case bc::Op::AllocaDyn:
      // Helper op: writes Frame[A] as a full RTValue, but only the
      // pointer lane is ever read back (Int-kind readers), so spilling
      // B and reloading A's int lane at the site suffices.
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      break;
    case bc::Op::Select:
      // Copied 16 bytes at a time (branchy template); the condition is
      // an int read.
      mark(In.A, SlotKind::Full);
      mark(In.B, SlotKind::Int);
      mark(In.C, SlotKind::Full);
      mark(In.D, SlotKind::Full);
      break;
    case bc::Op::Jmp:
    case bc::Op::Unreachable:
      break;
    case bc::Op::CondBr:
      mark(In.A, SlotKind::Int);
      break;
    case bc::Op::Ret:
      // The 16-byte copy into Inv->Ret reads frame memory, but the
      // template spills an allocated A first — no marking, so returning
      // an accumulator does not evict it from its register.
      break;
    case bc::Op::CallBC:
    case bc::Op::CallRT:
      // Results and arguments cross the call boundary through frame
      // memory as full RTValues, but the call site spills the argument
      // slots and reloads the result, so the slots keep the kinds their
      // *other* uses give them. A slot with no other uses stays Unused
      // and its data flows through frame memory untouched (which is why
      // an Unused Mov must copy all 16 bytes — see emitInst).
      break;
    case bc::Op::LoadOpStore4:
    case bc::Op::LoadOpStore8:
      mark(In.A, SlotKind::Int);
      mark(In.B, SlotKind::Int);
      mark(In.C, SlotKind::Int);
      mark(In.D, SlotKind::Int);
      break;
    case bc::Op::NumOps:
      OK = false;
      break;
    }
  }
  // A Mov copies by the *joined* kind of its endpoints, so propagate
  // kinds across Mov edges to a fixpoint (a slot moved into an FP
  // context and used as int elsewhere must become Full on both sides —
  // otherwise a one-lane copy could drop live bits).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto &[Dst, Src] : MovEdges) {
      SlotKind J = join(Kinds[Dst], Kinds[Src]);
      if (J != Kinds[Dst] || J != Kinds[Src]) {
        Kinds[Dst] = Kinds[Src] = J;
        Changed = true;
      }
    }
  }
}

void FunctionEmitter::allocate() {
  // Linear scan over the BytecodeCompiler's slot metadata: rank the
  // int-only and double-only slots by back-edge-weighted use count and
  // hand out the pools hottest-first. Ownership is whole-function (the
  // prologue loads every winner), so no interval splitting is needed —
  // the weight ranking is what the "linear scan" orders.
  IntReg.assign(BF.NumFrame, -1);
  FPReg.assign(BF.NumFrame, -1);
  if (!HaveMeta)
    return;
  struct Cand {
    std::uint64_t W;
    std::uint32_t S;
    bool FP;
  };
  std::vector<Cand> Cands;
  for (std::uint32_t S = 0; S < BF.NumFrame; ++S) {
    if (BF.Slots[S].Weight < 2)
      continue; // a single touch never pays for the prologue load
    if (Kinds[S] == SlotKind::Int) {
      // Imm32-encodable int constants fold into the instruction stream
      // (ALU/compare/lea immediates) or read as cheap never-written
      // memory operands — a register would be wasted on them.
      std::int32_t Imm;
      if (constImm32(S, Imm))
        continue;
      Cands.push_back({BF.Slots[S].Weight, S, false});
    } else if (Kinds[S] == SlotKind::FP) {
      Cands.push_back({BF.Slots[S].Weight, S, true});
    }
  }
  std::sort(Cands.begin(), Cands.end(), [](const Cand &A, const Cand &B) {
    return A.W != B.W ? A.W > B.W : A.S < B.S;
  });
  std::size_t NextInt = 0, NextFP = 0;
  for (const Cand &C : Cands) {
    if (C.FP) {
      if (NextFP >= sizeof(FPPool) / sizeof(FPPool[0]))
        continue;
      FPReg[C.S] = static_cast<std::int32_t>(FPPool[NextFP++]);
      Assigned.push_back({C.S, static_cast<std::uint8_t>(FPReg[C.S]), true});
    } else {
      if (NextInt >= sizeof(IntPool) / sizeof(IntPool[0]))
        continue;
      IntReg[C.S] = static_cast<std::int32_t>(IntPool[NextInt++]);
      Assigned.push_back({C.S, static_cast<std::uint8_t>(IntReg[C.S]), false});
    }
  }
}

void FunctionEmitter::collectBranchTargets() {
  const auto N = static_cast<std::uint32_t>(BF.Code.size());
  BranchTarget.assign(N + 2, false);
  auto Mark = [&](std::uint32_t T) {
    if (T < BranchTarget.size())
      BranchTarget[T] = true;
  };
  for (const bc::Inst &In : BF.Code) {
    if (In.Code == bc::Op::Jmp)
      Mark(In.A);
    else if (In.Code == bc::Op::CondBr) {
      Mark(In.B);
      Mark(In.C);
    } else if (In.Code == bc::Op::CmpBr) {
      Mark(static_cast<std::uint32_t>(In.Imm & 0xffffffff));
      Mark(static_cast<std::uint32_t>(static_cast<std::uint64_t>(In.Imm) >>
                                      32));
    }
  }
}

void FunctionEmitter::emitInst(std::uint32_t Idx) {
  const bc::Inst &In = BF.Code[Idx];
  if (In.Code == Opts.ForceUnsupported) {
    OK = false;
    return;
  }
  switch (In.Code) {
  case bc::Op::Mov: {
    switch (join(Kinds[In.A], Kinds[In.B])) {
    case SlotKind::Unused:
      // No lane evidence: the value may be a full RTValue flowing
      // between call boundaries through frame memory (neither endpoint
      // can be register-allocated), so copy all 16 bytes like the
      // bytecode handler does.
      A.movupsXM(XMM0, FrameReg, dispI(In.B));
      A.movupsMX(FrameReg, dispI(In.A), XMM0);
      break;
    case SlotKind::Int: {
      unsigned T =
          IntReg[In.A] >= 0 ? static_cast<unsigned>(IntReg[In.A]) : RAX;
      loadSlotI(T, In.B);
      storeSlotI(T, In.A); // elided when A owns T
      break;
    }
    case SlotKind::FP: {
      unsigned X =
          FPReg[In.A] >= 0 ? static_cast<unsigned>(FPReg[In.A]) : XMM0;
      loadSlotD(X, In.B);
      storeSlotD(X, In.A);
      break;
    }
    case SlotKind::Full:
      A.movupsXM(XMM0, FrameReg, dispI(In.B));
      A.movupsMX(FrameReg, dispI(In.A), XMM0);
      break;
    }
    break;
  }
  case bc::Op::Add:
  case bc::Op::Sub:
  case bc::Op::Mul: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    if (tryBinOpInReg(In))
      break;
    loadSlotI(RAX, In.B);
    std::int32_t Imm;
    if (constImm32(In.C, Imm)) {
      if (In.Code == bc::Op::Mul)
        A.imulRRI(RAX, RAX, Imm);
      else
        A.aluRI(aluExt(In.Code), RAX, Imm);
    } else {
      loadSlotI(RCX, In.C);
      if (In.Code == bc::Op::Add)
        A.addRR(RAX, RCX);
      else if (In.Code == bc::Op::Sub)
        A.subRR(RAX, RCX);
      else
        A.imulRR(RAX, RCX);
    }
    sext(RAX, In.W);
    storeSlotI(RAX, In.A);
    break;
  }
  case bc::Op::And:
  case bc::Op::Or:
  case bc::Op::Xor: {
    if (tryBinOpInReg(In))
      break;
    loadSlotI(RAX, In.B);
    std::int32_t Imm;
    if (constImm32(In.C, Imm)) {
      A.aluRI(aluExt(In.Code), RAX, Imm);
    } else {
      loadSlotI(RCX, In.C);
      if (In.Code == bc::Op::And)
        A.andRR(RAX, RCX);
      else if (In.Code == bc::Op::Or)
        A.orRR(RAX, RCX);
      else
        A.xorRR(RAX, RCX);
    }
    storeSlotI(RAX, In.A);
    break;
  }
  case bc::Op::Shl:
  case bc::Op::AShr:
  case bc::Op::LShr: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    loadSlotI(RAX, In.B);
    if (In.Code == bc::Op::AShr)
      sext(RAX, In.W);
    else if (In.Code == bc::Op::LShr)
      zext(RAX, In.W);
    loadSlotI(RCX, In.C);
    A.aluRI(4, RCX, static_cast<std::int32_t>(In.W) - 1); // mask shift
    A.shiftCl(In.Code == bc::Op::Shl   ? 4u
              : In.Code == bc::Op::LShr ? 5u
                                        : 7u,
              RAX);
    if (In.Code != bc::Op::AShr) // AShr result is already in range
      sext(RAX, In.W);
    storeSlotI(RAX, In.A);
    break;
  }
  case bc::Op::SDiv:
  case bc::Op::UDiv:
  case bc::Op::SRem:
  case bc::Op::URem:
    spillIntSlot(In.B);
    spillIntSlot(In.C);
    spillLiveVolatile(Idx);
    emitHelper(HelperIntDiv, &In);
    reloadIntSlot(In.A);
    reloadLiveVolatile(Idx);
    break;
  case bc::Op::FAdd:
  case bc::Op::FSub:
  case bc::Op::FMul:
  case bc::Op::FDiv: {
    // Op directly in the destination's register; only the A==C, A!=B
    // shape (the incoming mov would destroy the rhs) uses the scratch
    // path. No operand swap: hardware NaN-payload propagation is
    // operand-order dependent and must match the bytecode engine.
    if (FPReg[In.A] >= 0 && (In.A != In.C || In.A == In.B)) {
      auto D = static_cast<unsigned>(FPReg[In.A]);
      loadSlotD(D, In.B); // self-mov elided when A == B
      unsigned S = srcSlotD(In.C, XMM1);
      if (In.Code == bc::Op::FAdd)
        A.addsd(D, S);
      else if (In.Code == bc::Op::FSub)
        A.subsd(D, S);
      else if (In.Code == bc::Op::FMul)
        A.mulsd(D, S);
      else
        A.divsd(D, S);
      break;
    }
    loadSlotD(XMM0, In.B);
    loadSlotD(XMM1, In.C);
    if (In.Code == bc::Op::FAdd)
      A.addsd(XMM0, XMM1);
    else if (In.Code == bc::Op::FSub)
      A.subsd(XMM0, XMM1);
    else if (In.Code == bc::Op::FMul)
      A.mulsd(XMM0, XMM1);
    else
      A.divsd(XMM0, XMM1);
    storeSlotD(XMM0, In.A);
    break;
  }
  case bc::Op::FNeg: {
    loadSlotD(XMM0, In.B);
    A.movRI64(RAX, 0x8000000000000000ULL);
    A.movqXR(XMM1, RAX);
    A.xorpd(XMM0, XMM1);
    storeSlotD(XMM0, In.A);
    break;
  }
  case bc::Op::ICmp: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    unsigned CC =
        emitIntCompare(static_cast<ir::CmpPred>(In.Sub), In.B, In.C, In.W);
    A.setcc(CC, RDX);
    A.movzx8RR(RDX, RDX);
    storeSlotI(RDX, In.A);
    break;
  }
  case bc::Op::FCmp: {
    auto P = static_cast<ir::CmpPred>(In.Sub);
    // ucomisd raises CF on unordered, so A<B / A<=B are emitted as the
    // swapped B>A / B>=A to stay false on NaN — exactly the C semantics
    // of evalFCmp. ONE is true on NaN (C's operator!=).
    bool Swap = (P == ir::CmpPred::OLT || P == ir::CmpPred::OLE);
    loadSlotD(XMM0, Swap ? In.C : In.B);
    loadSlotD(XMM1, Swap ? In.B : In.C);
    A.ucomisd(XMM0, XMM1);
    switch (P) {
    case ir::CmpPred::OEQ:
      A.setcc(CC_E, RAX);
      A.setcc(CC_NP, RCX);
      A.u8(0x20); // and al, cl
      A.direct(RCX, RAX);
      break;
    case ir::CmpPred::ONE:
      A.setcc(CC_NE, RAX);
      A.setcc(CC_P, RCX);
      A.u8(0x08); // or al, cl
      A.direct(RCX, RAX);
      break;
    case ir::CmpPred::OLT:
    case ir::CmpPred::OGT:
      A.setcc(CC_A, RAX);
      break;
    case ir::CmpPred::OLE:
    case ir::CmpPred::OGE:
      A.setcc(CC_AE, RAX);
      break;
    default:
      OK = false;
      return;
    }
    A.movzx8RR(RAX, RAX);
    storeSlotI(RAX, In.A);
    break;
  }
  case bc::Op::SExt:
  case bc::Op::Trunc: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    unsigned T =
        IntReg[In.A] >= 0 ? static_cast<unsigned>(IntReg[In.A]) : RAX;
    if (In.W == 32) { // fold the extension into the operand load
      if (IntReg[In.B] >= 0)
        A.movsxdRR(T, static_cast<unsigned>(IntReg[In.B]));
      else
        A.movsxdRM(T, FrameReg, dispI(In.B));
    } else {
      loadSlotI(T, In.B);
      sext(T, In.W);
    }
    storeSlotI(T, In.A); // elided when A owns T
    break;
  }
  case bc::Op::ZExt: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    unsigned T =
        IntReg[In.A] >= 0 ? static_cast<unsigned>(IntReg[In.A]) : RAX;
    if (In.W == 32) {
      if (IntReg[In.B] >= 0)
        A.mov32RR(T, static_cast<unsigned>(IntReg[In.B]));
      else
        A.mov32RM(T, FrameReg, dispI(In.B));
    } else {
      loadSlotI(T, In.B);
      zext(T, In.W);
    }
    storeSlotI(T, In.A);
    break;
  }
  case bc::Op::SIToFP: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    unsigned X =
        FPReg[In.A] >= 0 ? static_cast<unsigned>(FPReg[In.A]) : XMM0;
    if (In.W == 64 && IntReg[In.B] >= 0) {
      A.cvtsi2sd(X, static_cast<unsigned>(IntReg[In.B]));
    } else {
      loadSlotI(RAX, In.B);
      sext(RAX, In.W);
      A.cvtsi2sd(X, RAX);
    }
    storeSlotD(X, In.A);
    break;
  }
  case bc::Op::UIToFP:
    spillIntSlot(In.B);
    spillLiveVolatile(Idx); // covers A: the reload below picks up the result
    emitHelper(HelperUIToFP, &In);
    reloadLiveVolatile(Idx);
    break;
  case bc::Op::FPToSI: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    unsigned X = srcSlotD(In.B, XMM0);
    unsigned T =
        IntReg[In.A] >= 0 ? static_cast<unsigned>(IntReg[In.A]) : RAX;
    A.cvttsd2si(T, X);
    sext(T, In.W);
    storeSlotI(T, In.A);
    break;
  }
  case bc::Op::FPToUI:
    spillLiveVolatile(Idx); // covers the B operand
    emitHelper(HelperFPToUI, &In);
    reloadIntSlot(In.A);
    reloadLiveVolatile(Idx);
    break;
  case bc::Op::Load1: {
    unsigned P = srcSlotI(In.B, RCX);
    unsigned T =
        IntReg[In.A] >= 0 ? static_cast<unsigned>(IntReg[In.A]) : RAX;
    A.movsx8RM(T, P, 0);
    storeSlotI(T, In.A);
    break;
  }
  case bc::Op::Load4: {
    unsigned P = srcSlotI(In.B, RCX);
    unsigned T =
        IntReg[In.A] >= 0 ? static_cast<unsigned>(IntReg[In.A]) : RAX;
    A.movsxdRM(T, P, 0);
    storeSlotI(T, In.A);
    break;
  }
  case bc::Op::Load8: {
    unsigned P = srcSlotI(In.B, RCX);
    unsigned T =
        IntReg[In.A] >= 0 ? static_cast<unsigned>(IntReg[In.A]) : RAX;
    A.movRM(T, P, 0);
    storeSlotI(T, In.A);
    break;
  }
  case bc::Op::LoadF64: {
    unsigned P = srcSlotI(In.B, RCX);
    unsigned X =
        FPReg[In.A] >= 0 ? static_cast<unsigned>(FPReg[In.A]) : XMM0;
    A.movsdXM(X, P, 0);
    storeSlotD(X, In.A);
    break;
  }
  case bc::Op::Store1: {
    loadSlotI(RAX, In.A); // mov8MR needs a REX-safe byte register
    unsigned P = srcSlotI(In.B, RCX);
    A.mov8MR(P, 0, RAX);
    break;
  }
  case bc::Op::Store4: {
    unsigned V = srcSlotI(In.A, RAX);
    unsigned P = srcSlotI(In.B, RCX);
    A.mov32MR(P, 0, V);
    break;
  }
  case bc::Op::Store8: {
    unsigned V = srcSlotI(In.A, RAX);
    unsigned P = srcSlotI(In.B, RCX);
    A.movMR(P, 0, V);
    break;
  }
  case bc::Op::StoreF64: {
    unsigned X = srcSlotD(In.A, XMM0);
    unsigned P = srcSlotI(In.B, RCX);
    A.movsdMX(P, 0, X);
    break;
  }
  case bc::Op::Gep: {
    if (In.Imm < 1 || In.Imm > std::numeric_limits<std::int32_t>::max()) {
      OK = false;
      return;
    }
    // Constant index: the whole scale+add folds into one lea / add-imm.
    std::int64_t CIdx;
    if (constInt(In.C, CIdx) &&
        CIdx >= std::numeric_limits<std::int32_t>::min() &&
        CIdx <= std::numeric_limits<std::int32_t>::max()) {
      std::int64_t Off = CIdx * In.Imm; // i32 * i32 cannot overflow i64
      if (Off >= std::numeric_limits<std::int32_t>::min() &&
          Off <= std::numeric_limits<std::int32_t>::max()) {
        unsigned T = IntReg[In.A] >= 0
                         ? static_cast<unsigned>(IntReg[In.A])
                         : RAX;
        if (IntReg[In.B] >= 0) {
          A.leaRM(T, static_cast<unsigned>(IntReg[In.B]),
                  static_cast<std::int32_t>(Off));
        } else {
          A.movRM(T, FrameReg, dispI(In.B));
          if (Off)
            A.aluRI(0, T, static_cast<std::int32_t>(Off));
        }
        storeSlotI(T, In.A);
        zeroSlotDIfFull(In.A);
        break;
      }
    }
    // Scale+add in the destination's register unless it holds the base
    // (A==C is fine: the scale consumes it first).
    unsigned T = (IntReg[In.A] >= 0 && In.A != In.B)
                     ? static_cast<unsigned>(IntReg[In.A])
                     : RAX;
    if (IntReg[In.C] >= 0) {
      A.imulRRI(T, static_cast<unsigned>(IntReg[In.C]),
                static_cast<std::int32_t>(In.Imm));
    } else {
      A.movRM(T, FrameReg, dispI(In.C));
      A.imulRRI(T, T, static_cast<std::int32_t>(In.Imm));
    }
    if (IntReg[In.B] >= 0)
      A.addRR(T, static_cast<unsigned>(IntReg[In.B]));
    else
      A.aluRM(0x03, T, FrameReg, dispI(In.B));
    storeSlotI(T, In.A);
    zeroSlotDIfFull(In.A); // no-op when A is allocated (pure-int kind)
    break;
  }
  case bc::Op::AllocaFixed: {
    if (In.Imm < 0 || In.Imm > std::numeric_limits<std::int32_t>::max()) {
      OK = false;
      return;
    }
    // Zero the arena block with rep stosb (DF is clear per the ABI).
    A.leaRM(RDI, ArenaReg, static_cast<std::int32_t>(In.Imm));
    A.xor32RR(RAX, RAX);
    A.movRI32(RCX, In.B);
    A.repStosb();
    A.leaRM(RAX, ArenaReg, static_cast<std::int32_t>(In.Imm));
    storeSlotI(RAX, In.A);
    zeroSlotDIfFull(In.A);
    break;
  }
  case bc::Op::AllocaDyn:
    spillIntSlot(In.B);
    spillLiveVolatile(Idx);
    emitHelper(HelperAllocaDyn, &In);
    reloadIntSlot(In.A);
    reloadLiveVolatile(Idx);
    break;
  case bc::Op::Select: {
    loadSlotI(RAX, In.B);
    A.testRR(RAX, RAX);
    std::size_t JZ = A.jccRel32(CC_E);
    A.movupsXM(XMM0, FrameReg, dispI(In.C));
    std::size_t JEnd = A.jmpRel32();
    A.patch32(JZ, static_cast<std::int32_t>(A.pos() - (JZ + 4)));
    A.movupsXM(XMM0, FrameReg, dispI(In.D));
    A.patch32(JEnd, static_cast<std::int32_t>(A.pos() - (JEnd + 4)));
    A.movupsMX(FrameReg, dispI(In.A), XMM0);
    break;
  }
  case bc::Op::Jmp:
    Fixups.push_back({A.jmpRel32(), In.A});
    break;
  case bc::Op::CondBr: {
    unsigned T = srcSlotI(In.A, RAX);
    A.testRR(T, T);
    Fixups.push_back({A.jccRel32(CC_NE), In.B});
    Fixups.push_back({A.jmpRel32(), In.C});
    break;
  }
  case bc::Op::Ret: {
    if (In.Sub) {
      // The return value is read as a full RTValue from frame memory;
      // write an allocated lane back first.
      spillIntSlot(In.A);
      if (FPReg[In.A] >= 0)
        A.movsdMX(FrameReg, dispD(In.A), static_cast<unsigned>(FPReg[In.A]));
      A.movupsXM(XMM0, FrameReg, dispI(In.A));
    } else {
      A.xorps(XMM0, XMM0);
    }
    A.movupsMX(InvReg, static_cast<std::int32_t>(kInvRetOffset), XMM0);
    A.xor32RR(RAX, RAX);
    Fixups.push_back({A.jmpRel32(), epilogueIdx()});
    break;
  }
  case bc::Op::Unreachable: {
    emitHelper(HelperUnreachable, &In);
    Fixups.push_back({A.jmpRel32(), trapIdx()});
    break;
  }
  case bc::Op::CallBC:
    emitCallBC(In, Idx);
    break;
  case bc::Op::CallRT:
    for (std::uint32_t K = 0; K < In.D; ++K)
      spillIntSlot(BF.ArgPool[In.C + K]);
    spillLiveVolatile(Idx);
    emitHelper(HelperCallRT, &In);
    reloadIntSlot(In.A);
    reloadLiveVolatile(Idx);
    break;
  case bc::Op::CmpBr: {
    if (!widthOk(In.W)) {
      OK = false;
      return;
    }
    unsigned CC =
        emitIntCompare(static_cast<ir::CmpPred>(In.Sub), In.B, In.C, In.W);
    if (!HaveMeta || BF.Slots[In.A].Reads > 0) {
      A.setcc(CC, RDX);
      A.movzx8RR(RDX, RDX);
      storeSlotI(RDX, In.A); // plain movs: the cmp flags survive
    }
    // else: nothing ever reads the materialized bool — branch on flags.
    ++Fused;
    Fixups.push_back(
        {A.jccRel32(CC), static_cast<std::uint32_t>(In.Imm & 0xffffffff)});
    Fixups.push_back({A.jmpRel32(), static_cast<std::uint32_t>(
                                        static_cast<std::uint64_t>(In.Imm) >>
                                        32)});
    break;
  }
  case bc::Op::LoadOpStore4:
  case bc::Op::LoadOpStore8: {
    const bool Is32 = In.Code == bc::Op::LoadOpStore4;
    ++Fused;
    const auto FOp = static_cast<bc::FusedOp>(In.Sub);
    // RMW peephole: when nothing ever reads the loaded-value and result
    // slots, the whole sequence folds into one memory-destination ALU op
    // (imul has no such form). The rhs cannot alias the dead slots — a
    // read through B would count on their Reads.
    if (HaveMeta && FOp != bc::FusedOp::Mul && BF.Slots[In.C].Reads == 0 &&
        BF.Slots[In.D].Reads == 0) {
      unsigned P = srcSlotI(In.A, RSI);
      unsigned S = srcSlotI(In.B, RCX);
      std::uint8_t MR = FOp == bc::FusedOp::Add   ? 0x01
                        : FOp == bc::FusedOp::Sub ? 0x29
                        : FOp == bc::FusedOp::And ? 0x21
                        : FOp == bc::FusedOp::Or  ? 0x09
                                                  : 0x31;
      if (Is32)
        A.alu32MR(MR, P, 0, S);
      else
        A.aluMR(MR, P, 0, S);
      break;
    }
    loadSlotI(RSI, In.A); // pointer stays live across the sequence
    if (Is32)
      A.movsxdRM(RAX, RSI, 0);
    else
      A.movRM(RAX, RSI, 0);
    storeSlotI(RAX, In.C);
    loadSlotI(RCX, In.B); // after the C write: rhs may alias it (x op x)
    switch (static_cast<bc::FusedOp>(In.Sub)) {
    case bc::FusedOp::Add:
      A.addRR(RAX, RCX);
      break;
    case bc::FusedOp::Sub:
      A.subRR(RAX, RCX);
      break;
    case bc::FusedOp::Mul:
      A.imulRR(RAX, RCX);
      break;
    case bc::FusedOp::And:
      A.andRR(RAX, RCX);
      break;
    case bc::FusedOp::Or:
      A.orRR(RAX, RCX);
      break;
    case bc::FusedOp::Xor:
      A.xorRR(RAX, RCX);
      break;
    }
    if (Is32)
      sext(RAX, 32);
    storeSlotI(RAX, In.D);
    if (Is32)
      A.mov32MR(RSI, 0, RAX);
    else
      A.movMR(RSI, 0, RAX);
    break;
  }
  case bc::Op::NumOps:
    OK = false;
    break;
  }
}

bool FunctionEmitter::canDirectCall(const bc::Inst &In) const {
  if (!Opts.Mod || !Opts.EntryCells || !Opts.Pools)
    return false;
  if (In.B >= Opts.Mod->Functions.size())
    return false;
  const bc::BCFunction &Callee = Opts.Mod->Functions[In.B];
  return In.D == Callee.NumArgs && isDirectCallable(Callee);
}

void FunctionEmitter::emitCallBC(const bc::Inst &In, std::uint32_t Idx) {
  // Both paths read the argument slots and write the result through
  // frame memory: spill before, reload after.
  for (std::uint32_t K = 0; K < In.D; ++K)
    spillIntSlot(BF.ArgPool[In.C + K]);
  spillLiveVolatile(Idx);
  std::size_t JJoin = 0;
  const bool Direct = canDirectCall(In);
  if (Direct) {
    const bc::BCFunction &Callee = Opts.Mod->Functions[In.B];
    const auto Slab = static_cast<std::int32_t>(directCallSlabBytes(Callee));
    const auto FrameOff = static_cast<std::int32_t>(kInvSize);
    auto Off = [](std::size_t O) { return static_cast<std::int32_t>(O); };
    // Entry cell: null until the callee compiles; the engine's release
    // store publishes it, which retro-patches this site with no code
    // rewrite (plain load is enough on x86-TSO).
    A.movRI64(RAX, reinterpret_cast<std::uint64_t>(&Opts.EntryCells[In.B]));
    A.movRM(RAX, RAX, 0);
    A.testRR(RAX, RAX);
    std::size_t JSlow = A.jccRel32(CC_E);
    A.movRR(R11, RAX); // the entry must survive the rep sequences below
    A.aluRI(5, RSP, Slab);
    // Callee frame: constant-pool prefix, then zero up to NumFrame. The
    // arena is not zeroed — AllocaFixed templates zero their own blocks,
    // exactly like the host-side frame setup. Small frames (the common
    // leaf-call shape) are copied/zeroed with unrolled 16-byte moves:
    // the rep sequences pay tens of cycles of microcode startup, which
    // dominates a tight call loop.
    const std::size_t NC = Callee.NumConsts;
    const std::size_t NZ = Callee.NumFrame - Callee.NumConsts;
    if (NC <= 8 && NZ <= 24) {
      if (NC)
        A.movRI64(RSI, reinterpret_cast<std::uint64_t>(Opts.Pools[In.B]));
      for (std::size_t K = 0; K < NC; ++K) {
        A.movupsXM(XMM0, RSI, Off(K * 16));
        A.movupsMX(RSP, FrameOff + Off(K * 16), XMM0);
      }
      A.xorps(XMM0, XMM0);
      for (std::size_t K = 0; K < NZ; ++K)
        A.movupsMX(RSP, FrameOff + Off((NC + K) * 16), XMM0);
      A.xor32RR(RAX, RAX); // invocation-record zeroing below expects 0
    } else {
      A.movRI64(RSI, reinterpret_cast<std::uint64_t>(Opts.Pools[In.B]));
      A.leaRM(RDI, RSP, FrameOff);
      A.movRI32(RCX, NC * 2);
      A.repMovsq();
      A.xor32RR(RAX, RAX);
      A.movRI32(RCX, NZ * 2);
      A.repStosq(); // rdi already points one past the constants
    }
    // Arguments: full RTValue copies into the callee's argument slots.
    for (std::uint32_t K = 0; K < In.D; ++K) {
      A.movupsXM(XMM0, FrameReg, dispI(BF.ArgPool[In.C + K]));
      A.movupsMX(RSP,
                 FrameOff + static_cast<std::int32_t>(
                                (Callee.NumConsts + K) * std::size_t(16)),
                 XMM0);
    }
    // Invocation record: Trap/Pending/DynAllocas zeroed (rax is still 0
    // after rep stosq), Ops/Host/Mod inherited, BF baked in, Frame set.
    // The callee cannot contain AllocaDyn (eligibility), so the null
    // ledger is never dereferenced.
    A.movMR(RSP, Off(kInvTrapOffset), RAX);
    A.movMR(RSP, Off(kInvPendingOffset), RAX);
    A.movMR(RSP, Off(kInvDynOffset), RAX);
    A.movRM(RCX, InvReg, Off(kInvOpsOffset));
    A.movMR(RSP, Off(kInvOpsOffset), RCX);
    A.movRM(RCX, InvReg, Off(kInvHostOffset));
    A.movMR(RSP, Off(kInvHostOffset), RCX);
    A.movRM(RCX, InvReg, Off(kInvModOffset));
    A.movMR(RSP, Off(kInvModOffset), RCX);
    A.movRI64(RCX, reinterpret_cast<std::uint64_t>(&Callee));
    A.movMR(RSP, Off(kInvBFOffset), RCX);
    A.leaRM(RCX, RSP, FrameOff);
    A.movMR(RSP, Off(kInvFrameOffset), RCX);
    // SysV call straight into the callee's prologue; Resume = null falls
    // through into the body. The slab is a multiple of 16, so rsp stays
    // aligned exactly as for a host-side entry.
    A.movRR(RDI, RSP);
    A.leaRM(RSI, RSP, FrameOff);
    A.leaRM(RDX, RSP,
            FrameOff + static_cast<std::int32_t>(Callee.NumFrame *
                                                 std::size_t(16)));
    A.xor32RR(RCX, RCX);
    A.callR(R11);
    A.test32RR(RAX, RAX); // int return — only eax is defined
    std::size_t JTrap = A.jccRel32(CC_NE);
    A.movupsXM(XMM0, RSP, Off(kInvRetOffset));
    A.movupsMX(FrameReg, dispI(In.A), XMM0);
    A.aluRI(0, RSP, Slab);
    JJoin = A.jmpRel32();
    // Trap: hand the parked exception up one invocation, then unwind
    // this frame too. The bitwise exception_ptr transfer is sound — the
    // abandoned slab runs no destructors, and the final owner is the
    // host-side enterNative invocation, which rethrows.
    A.patch32(JTrap, static_cast<std::int32_t>(A.pos() - (JTrap + 4)));
    A.movRM(RAX, RSP, Off(kInvPendingOffset));
    A.movMR(InvReg, Off(kInvPendingOffset), RAX);
    A.movMI32(InvReg, Off(kInvTrapOffset), 1);
    A.aluRI(0, RSP, Slab);
    Fixups.push_back({A.jmpRel32(), trapIdx()});
    A.patch32(JSlow, static_cast<std::int32_t>(A.pos() - (JSlow + 4)));
    ++DirectSites;
  }
  // Slow path — and the only path when the callee is not direct-callable:
  // the host helper routes through executeTiered (bytecode fallback,
  // not-yet-compiled callees, dynamic allocas, oversized frames).
  emitHelper(HelperCallBC, &In);
  if (Direct)
    A.patch32(JJoin, static_cast<std::int32_t>(A.pos() - (JJoin + 4)));
  reloadIntSlot(In.A);
  reloadLiveVolatile(Idx);
}

bool FunctionEmitter::tryFuseFCmpBr(std::uint32_t Idx) {
  if (!HaveMeta)
    return false;
  const bc::Inst &In = BF.Code[Idx];
  if (In.Code != bc::Op::FCmp ||
      Idx + 1 >= static_cast<std::uint32_t>(BF.Code.size()))
    return false;
  const bc::Inst &Br = BF.Code[Idx + 1];
  if (Br.Code != bc::Op::CondBr || Br.A != In.A)
    return false;
  // Fusable only when the branch is the sole reader of the compare's
  // result and nothing can jump between the two — then the bool is never
  // materialized and the branch consumes the ucomisd flags directly.
  if (BF.Slots[In.A].Reads != 1 || BranchTarget[Idx + 1])
    return false;
  if (In.Code == Opts.ForceUnsupported || Br.Code == Opts.ForceUnsupported)
    return false; // keep the forced-fallback knob authoritative
  auto P = static_cast<ir::CmpPred>(In.Sub);
  switch (P) {
  case ir::CmpPred::OEQ:
  case ir::CmpPred::ONE:
  case ir::CmpPred::OLT:
  case ir::CmpPred::OLE:
  case ir::CmpPred::OGT:
  case ir::CmpPred::OGE:
    break;
  default:
    return false;
  }
  // Same operand-swap discipline as the unfused FCmp template: ucomisd
  // raises CF on unordered, so A<B / A<=B run as B>A / B>=A to stay
  // false on NaN. ONE is C's operator!= — true on NaN.
  bool Swap = (P == ir::CmpPred::OLT || P == ir::CmpPred::OLE);
  loadSlotD(XMM0, Swap ? In.C : In.B);
  loadSlotD(XMM1, Swap ? In.B : In.C);
  A.ucomisd(XMM0, XMM1);
  switch (P) {
  case ir::CmpPred::OEQ:
    Fixups.push_back({A.jccRel32(CC_P), Br.C});
    Fixups.push_back({A.jccRel32(CC_E), Br.B});
    break;
  case ir::CmpPred::ONE:
    Fixups.push_back({A.jccRel32(CC_P), Br.B});
    Fixups.push_back({A.jccRel32(CC_NE), Br.B});
    break;
  case ir::CmpPred::OLT:
  case ir::CmpPred::OGT:
    Fixups.push_back({A.jccRel32(CC_A), Br.B});
    break;
  default: // OLE / OGE
    Fixups.push_back({A.jccRel32(CC_AE), Br.B});
    break;
  }
  Fixups.push_back({A.jmpRel32(), Br.C});
  ++Fused;
  return true;
}

std::unique_ptr<CompiledFunction> FunctionEmitter::run() {
  auto CF = std::make_unique<CompiledFunction>();
  // Frame displacements must fit rel32 addressing.
  if (!isSupported() ||
      static_cast<std::uint64_t>(BF.NumFrame) * 16 + 16 >
          static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max()))
    return CF;

  HaveMeta = BF.Slots.size() == BF.NumFrame;
  Reloc.assign(BF.NumConsts, false);
  for (const auto &R : BF.GlobalRelocs)
    Reloc[R.first] = true;
  classify();
  if (!OK)
    return CF;
  allocate();
  collectBranchTargets();

  // Prologue: save callee-saved registers, establish the pinned context
  // state, load *every* register-allocated slot from the frame, then
  // tail into Resume (null for a plain/direct call = fall through into
  // the body; an OSR handoff passes a mid-loop instruction boundary).
  // Loading the whole allocation up front is what keeps the InstOffsets
  // resume table exact: the frame is authoritative at every bytecode
  // boundary an OSR entry can target, and the prologue re-establishes
  // the complete register state before jumping there. Stack stays
  // 16-aligned at every call site. rbp carries no frame pointer — it is
  // a member of the allocator's GPR pool.
  A.pushR(RBP);
  A.pushR(RBX);
  A.pushR(R12);
  A.pushR(R13);
  A.pushR(R14);
  A.pushR(R15);
  A.aluRI(5, RSP, 8); // sub rsp, 8
  A.movRR(InvReg, RDI);
  A.movRR(FrameReg, RSI);
  A.movRR(ArenaReg, RDX);
  for (const RegAssignment &R : Assigned) {
    if (R.FP)
      A.movsdXM(R.Reg, FrameReg, dispD(R.Slot));
    else
      A.movRM(R.Reg, FrameReg, dispI(R.Slot));
  }
  A.testRR(RCX, RCX);
  Fixups.push_back({A.jccRel32(CC_E), 0}); // null Resume: start of body
  A.jmpR(RCX);

  const auto N = static_cast<std::uint32_t>(BF.Code.size());
  CF->InstOffsets.resize(N + 2, 0);
  for (std::uint32_t I = 0; I < N && OK; ++I) {
    CF->InstOffsets[I] = static_cast<std::uint32_t>(A.pos());
    if (tryFuseFCmpBr(I)) {
      // The skipped CondBr resumes at the (idempotent) compare.
      CF->InstOffsets[I + 1] = CF->InstOffsets[I];
      ++I;
      continue;
    }
    emitInst(I);
  }
  if (!OK)
    return CF;

  // Trap exit falls through into the epilogue with eax = 1.
  CF->InstOffsets[trapIdx()] = static_cast<std::uint32_t>(A.pos());
  A.movRI32(RAX, 1);
  CF->InstOffsets[epilogueIdx()] = static_cast<std::uint32_t>(A.pos());
  A.aluRI(0, RSP, 8); // add rsp, 8
  A.popR(R15);
  A.popR(R14);
  A.popR(R13);
  A.popR(R12);
  A.popR(RBX);
  A.popR(RBP);
  A.ret();

  for (const Fixup &F : Fixups)
    A.patch32(F.Pos, static_cast<std::int32_t>(
                         static_cast<std::int64_t>(CF->InstOffsets[F.Target]) -
                         static_cast<std::int64_t>(F.Pos + 4)));

  if (!CF->Code.map(A.B.size()) || !CF->Code.finalize(A.B.data(), A.B.size()))
    return std::make_unique<CompiledFunction>(); // mapping failed: fallback
  CF->Supported = true;
  CF->Regs = Assigned;
  CF->SpillSites = Spills;
  CF->FusedTemplates = Fused;
  CF->DirectCallSites = DirectSites;
  return CF;
}

} // namespace

bool isDirectCallable(const bc::BCFunction &BF) {
  for (const bc::Inst &In : BF.Code)
    if (In.Code == bc::Op::AllocaDyn)
      return false; // needs the host-side dynamic-alloca ledger
  return directCallSlabBytes(BF) <= 4096;
}

std::unique_ptr<CompiledFunction>
compileFunction(const bc::BCFunction &BF, const CompileOptions &Opts) {
  return FunctionEmitter(BF, Opts).run();
}

} // namespace mcc::interp::jit
