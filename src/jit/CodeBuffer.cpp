//===--- CodeBuffer.cpp - W^X executable page lifecycle --------------------===//
//
// Code pages are never writable and executable at the same time: the
// buffer is mapped RW for emission, sealed to RX with mprotect once the
// bytes are final, and unmapped when the owning CompiledFunction dies
// with its ExecutionEngine. On platforms without the mmap protocol every
// operation fails cleanly and the engine stays on bytecode.
//
//===----------------------------------------------------------------------===//
#include "jit/JIT.h"

#include <cstring>

#if defined(__x86_64__) && (defined(__linux__) || defined(__APPLE__))
#define MCC_JIT_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define MCC_JIT_HAVE_MMAP 0
#endif

namespace mcc::interp::jit {

bool isSupported() {
#if MCC_JIT_HAVE_MMAP
  return true;
#else
  return false;
#endif
}

#if MCC_JIT_HAVE_MMAP

static std::size_t roundToPages(std::size_t Bytes) {
  static const std::size_t Page =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return (Bytes + Page - 1) & ~(Page - 1);
}

bool CodeBuffer::map(std::size_t Bytes) {
  if (Mem || Bytes == 0)
    return false;
  std::size_t Len = roundToPages(Bytes);
  void *P = ::mmap(nullptr, Len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return false;
  Mem = P;
  Mapped = Len;
  return true;
}

bool CodeBuffer::finalize(const void *Code, std::size_t Bytes) {
  if (!Mem || Sealed || Bytes > Mapped)
    return false;
  std::memcpy(Mem, Code, Bytes);
  Used = Bytes;
  if (::mprotect(Mem, Mapped, PROT_READ | PROT_EXEC) != 0)
    return false;
  Sealed = true;
  return true;
}

CodeBuffer::~CodeBuffer() {
  if (Mem)
    ::munmap(Mem, Mapped);
}

#else // !MCC_JIT_HAVE_MMAP

bool CodeBuffer::map(std::size_t) { return false; }
bool CodeBuffer::finalize(const void *, std::size_t) { return false; }
CodeBuffer::~CodeBuffer() = default;

#endif

} // namespace mcc::interp::jit
