//===--- JIT.h - Copy-and-patch template JIT over bytecode ------*- C++ -*-===//
//
// The third execution tier (DESIGN.md "Native execution tier"): lowers a
// bc::BCFunction — whose operands are already dense frame indices — to
// x86-64 machine code, one instruction template per bc::Op with the
// operand slots patched in as frame displacements. The frame layout is
// *identical* to the bytecode engine's (16-byte RTValue slots over the
// same FrameStack allocation), which is what makes on-stack replacement a
// pointer handoff: a running bytecode frame enters native code at
// `code base + InstOffsets[pc]` with the very same Frame/Arena pointers.
//
// Layering: this library depends only on the bytecode *format* headers
// (bc::Inst, RTValue) — never on the ExecutionEngine. Everything that
// needs the host (calls into other functions, the KMP runtime, externs,
// dynamic allocas, division traps) is routed through an indirection table
// of host-installed helpers (JITHostOps) reached via the per-invocation
// context, so generated code is position-independent with respect to the
// engine instance.
//
// Contract of generated code (SysV x86-64):
//
//   int entry(JITInvocation *Inv /*rdi*/, RTValue *Frame /*rsi*/,
//             char *Arena /*rdx*/, const void *Resume /*rcx*/);
//
// The prologue saves callee-saved registers, pins rbx=Frame, r12=Arena,
// r13=Inv (plus up to two hot int-only frame slots in r14/r15) and jumps
// to Resume — the function body start for a plain call, or a mid-loop
// instruction boundary for OSR. Returns 0 on a normal Ret (result in
// Inv->Ret) and 1 when a helper recorded a trap (Inv->Pending holds the
// exception; C++ unwinding cannot cross the frameless generated code, so
// helpers catch and the host-side wrapper rethrows).
//
//===----------------------------------------------------------------------===//
#ifndef MCC_JIT_JIT_H
#define MCC_JIT_JIT_H

#include "interp/Bytecode.h"
#include "interp/Interpreter.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <string_view>
#include <vector>

namespace mcc::interp::jit {

/// True when this build can emit and execute native code (x86-64 with an
/// mmap/mprotect W^X page protocol). When false, compileFunction()
/// returns fallback units and the native/tiered engines degrade to pure
/// bytecode execution — same observable behaviour, no speedup.
bool isSupported();

//===----------------------------------------------------------------------===//
// Host helper indirection table
//===----------------------------------------------------------------------===//

/// Indices into JITHostOps::Fns. Every helper has the uniform signature
/// `void(JITInvocation *, const bc::Inst *)`; results and traps are
/// communicated through the invocation context, never by unwinding.
enum HelperIndex : std::uint32_t {
  HelperCallBC = 0, ///< bc::Op::CallBC — call a defined function
  HelperCallRT,     ///< bc::Op::CallRT — KMP entry points and externs
  HelperAllocaDyn,  ///< bc::Op::AllocaDyn — heap block, freed by wrapper
  HelperIntDiv,     ///< SDiv/UDiv/SRem/URem — division-by-zero traps
  HelperUIToFP,     ///< unsigned 64-bit → double needs library semantics
  HelperFPToUI,     ///< double → unsigned with the bytecode's exact cast
  HelperUnreachable, ///< raises "executed 'unreachable'"
  NumHelpers
};

struct JITInvocation;

/// The host-installed helper table. Generated code loads the table
/// pointer from the invocation context and calls `Fns[index]`, so the
/// table's address is not baked into code pages.
struct JITHostOps {
  using HelperFn = void (*)(JITInvocation *, const bc::Inst *);
  HelperFn Fns[NumHelpers] = {};
};

//===----------------------------------------------------------------------===//
// Per-invocation context
//===----------------------------------------------------------------------===//

/// The leading fields are read from generated code by fixed offset and
/// must stay a standard-layout prefix (static_asserts below).
struct JITInvocationHeader {
  RTValue Ret;             ///< written by the Ret template
  std::uint64_t Trap = 0;  ///< set by helpers; checked after each call
  const JITHostOps *Ops = nullptr;
};

/// One native activation. Lives on the host stack of the C++ wrapper that
/// entered native code; helpers reach everything through it.
struct JITInvocation : JITInvocationHeader {
  void *Host = nullptr;               ///< the owning ExecutionEngine
  const bc::BCFunction *BF = nullptr; ///< for ArgPool / callee indices
  const bc::BytecodeModule *Mod = nullptr; ///< for ExternalNames
  RTValue *Frame = nullptr;           ///< shared-layout register frame
  std::vector<void *> *DynAllocas = nullptr; ///< owned by the wrapper
  std::exception_ptr Pending;         ///< rethrown by the wrapper on Trap
};

inline constexpr std::size_t kInvRetOffset = 0;
inline constexpr std::size_t kInvTrapOffset = offsetof(JITInvocationHeader, Trap);
inline constexpr std::size_t kInvOpsOffset = offsetof(JITInvocationHeader, Ops);
static_assert(kInvTrapOffset == 16 && kInvOpsOffset == 24,
              "generated code hardcodes the invocation header layout");

// Direct native→native call sites build a complete callee JITInvocation
// on the machine stack, so the derived fields are also read and written
// by fixed offset. offsetof on the derived (non-standard-layout) type is
// conditionally-supported; GCC and Clang — the only compilers that can
// target the JIT — implement it.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
#endif
inline constexpr std::size_t kInvHostOffset = offsetof(JITInvocation, Host);
inline constexpr std::size_t kInvBFOffset = offsetof(JITInvocation, BF);
inline constexpr std::size_t kInvModOffset = offsetof(JITInvocation, Mod);
inline constexpr std::size_t kInvFrameOffset = offsetof(JITInvocation, Frame);
inline constexpr std::size_t kInvDynOffset =
    offsetof(JITInvocation, DynAllocas);
inline constexpr std::size_t kInvPendingOffset =
    offsetof(JITInvocation, Pending);
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif
static_assert(kInvHostOffset == 32 && kInvBFOffset == 40 &&
                  kInvModOffset == 48 && kInvFrameOffset == 56 &&
                  kInvDynOffset == 64 && kInvPendingOffset == 72,
              "direct-call sites hardcode the invocation layout");
/// The stack slab a direct call reserves starts with the callee's
/// invocation record; its size must keep the frame 16-aligned.
inline constexpr std::size_t kInvSize = sizeof(JITInvocation);
static_assert(kInvSize == 80 && kInvSize % 16 == 0,
              "direct-call sites hardcode sizeof(JITInvocation)");

using NativeEntryFn = int (*)(JITInvocation *Inv, RTValue *Frame,
                              char *Arena, const void *Resume);

//===----------------------------------------------------------------------===//
// Compiled unit
//===----------------------------------------------------------------------===//

/// An executable W^X page range: mapped RW for emission, flipped to RX on
/// finalize, unmapped on destruction (ExecutionEngine teardown).
class CodeBuffer {
public:
  CodeBuffer() = default;
  ~CodeBuffer();
  CodeBuffer(const CodeBuffer &) = delete;
  CodeBuffer &operator=(const CodeBuffer &) = delete;

  /// Maps a writable region of at least \p Bytes. False on failure (or on
  /// unsupported platforms).
  bool map(std::size_t Bytes);
  /// Copies \p Code into the mapping and seals it read-execute.
  bool finalize(const void *Code, std::size_t Bytes);

  [[nodiscard]] const void *data() const { return Mem; }
  [[nodiscard]] std::size_t size() const { return Used; }
  [[nodiscard]] bool executable() const { return Sealed; }

private:
  void *Mem = nullptr;
  std::size_t Mapped = 0;
  std::size_t Used = 0;
  bool Sealed = false;
};

/// One frame slot held in a register for the whole function body. The
/// prologue loads every assignment from the frame, which is what keeps
/// the InstOffsets resume table valid at *any* instruction boundary: OSR
/// enters with the frame authoritative and the prologue re-establishes
/// the full register state before jumping to the resume point.
struct RegAssignment {
  std::uint32_t Slot = 0;
  std::uint8_t Reg = 0; ///< GPR number, or XMM number when FP
  bool FP = false;
};

struct CompiledFunction {
  CodeBuffer Code;
  /// Native offset of every bytecode instruction boundary — the OSR
  /// entry map. Valid at *any* index because the frame (not registers)
  /// is the authoritative state at bytecode branch points and the
  /// prologue re-loads every allocated slot (see RegAssignment).
  std::vector<std::uint32_t> InstOffsets;
  bool Supported = false; ///< false: bytecode-fallback unit (no code)
  /// Frame slots promoted to registers by the linear-scan allocator.
  std::vector<RegAssignment> Regs;
  std::uint32_t SpillSites = 0;      ///< spill stores emitted at call sites
  std::uint32_t FusedTemplates = 0;  ///< superinst templates + peepholes
  std::uint32_t DirectCallSites = 0; ///< CallBC sites with an inline fast path

  [[nodiscard]] NativeEntryFn entry() const {
    return reinterpret_cast<NativeEntryFn>(
        const_cast<void *>(Code.data()));
  }
  [[nodiscard]] const void *resumeAt(std::uint32_t InstIdx) const {
    return static_cast<const char *>(Code.data()) + InstOffsets[InstIdx];
  }
};

struct CompileOptions {
  /// Treat this op as unsupported (forces the containing functions onto
  /// the bytecode fallback path). Wired to MCC_JIT_FORCE_FALLBACK_OP by
  /// the engine — the CI smoke for the thunk path. NumOps = disabled.
  bc::Op ForceUnsupported = bc::Op::NumOps;

  // Module context for direct native→native calls. When all three are
  // non-null, every CallBC site whose callee isDirectCallable() is
  // emitted with an inline fast path that tests EntryCells[callee]: a
  // published entry is called directly (frame built on the machine
  // stack), a null cell falls back to the HelperCallBC slow path. The
  // engine publishes a cell when the callee compiles, which instantly
  // retro-patches every already-compiled caller — the cells are data,
  // so no code page is ever rewritten. Null pointers (unit tests, no
  // engine) disable the fast path entirely.
  const bc::BytecodeModule *Mod = nullptr;
  const std::atomic<const void *> *EntryCells = nullptr; ///< one per function
  const RTValue *const *Pools = nullptr; ///< engine-patched const pools
};

/// True when \p BF may be entered through a direct native→native call:
/// no dynamic allocas (those need the host-side ledger) and an
/// invocation+frame+arena slab small enough for the machine stack.
bool isDirectCallable(const bc::BCFunction &BF);

/// Lowers one bytecode function. Always returns a unit; `Supported` is
/// false when any contained op (or the platform) is outside the template
/// set, in which case the engine keeps executing that function as
/// bytecode.
std::unique_ptr<CompiledFunction>
compileFunction(const bc::BCFunction &BF, const CompileOptions &Opts = {});

/// Spelled name of a bytecode op ("Add", "CmpBr", ...), for the
/// forced-fallback knob and diagnostics.
const char *opName(bc::Op O);
/// Parses an opName back; false if unknown.
bool parseOpName(std::string_view Name, bc::Op &Out);

} // namespace mcc::interp::jit

#endif // MCC_JIT_JIT_H
