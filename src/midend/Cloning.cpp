#include "midend/Cloning.h"

#include <cassert>

namespace mcc::midend {

using namespace ir;

std::vector<BasicBlock *>
cloneBlocks(Function &F, const std::vector<BasicBlock *> &Blocks,
            ValueMap &VMap, BasicBlock *InsertAfter,
            const std::string &Suffix) {
  std::vector<BasicBlock *> Clones;
  BasicBlock *Prev = InsertAfter;

  // First create the empty clone blocks so branches can be remapped.
  for (BasicBlock *BB : Blocks) {
    BasicBlock *Clone = F.createBlockAfter(Prev, BB->getName() + Suffix);
    VMap[BB] = Clone;
    Clones.push_back(Clone);
    Prev = Clone;
  }

  // Pass 1: clone the instructions with their original operands and record
  // the mapping. (Operands may reference instructions cloned later — e.g.
  // a header phi referencing the latch increment — so remapping must wait
  // until every clone exists.)
  std::vector<Instruction *> NewInsts;
  for (std::size_t BI = 0; BI < Blocks.size(); ++BI) {
    BasicBlock *Src = Blocks[BI];
    BasicBlock *Dst = Clones[BI];
    for (const auto &I : Src->instructions()) {
      if (VMap.count(I.get()))
        continue; // pre-substituted (e.g. header phi)
      auto Clone = std::make_unique<Instruction>(
          I->getOpcode(), I->getType(), I->operands(), I->getName());
      Clone->Pred = I->Pred;
      Clone->ElemTy = I->ElemTy;
      Clone->LoopMD = I->LoopMD;
      VMap[I.get()] = Clone.get();
      NewInsts.push_back(Clone.get());
      Dst->append(std::move(Clone));
    }
  }
  // Pass 2: remap every operand through the completed mapping.
  for (Instruction *I : NewInsts)
    for (unsigned OpIdx = 0; OpIdx < I->getNumOperands(); ++OpIdx)
      I->setOperand(OpIdx, remap(VMap, I->getOperand(OpIdx)));
  return Clones;
}

} // namespace mcc::midend
