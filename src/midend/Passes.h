//===--- Passes.h - Mid-end cleanup passes and pipeline ---------*- C++ -*-===//
#ifndef MCC_MIDEND_PASSES_H
#define MCC_MIDEND_PASSES_H

#include "midend/LoopUnroll.h"

namespace mcc::midend {

/// Removes blocks unreachable from the entry and merges trivial
/// single-predecessor chains. Returns the number of blocks removed/merged.
unsigned runSimplifyCFG(ir::Module &M);

/// Removes side-effect-free instructions without uses. Returns the number
/// of instructions removed.
unsigned runDCE(ir::Module &M);

/// Block-local store-to-load forwarding: replaces a load with the value
/// most recently stored (or loaded) through the same pointer SSA value in
/// the same block. Distinct allocas and globals are known not to alias;
/// calls and stores through unknown pointers invalidate conservatively.
/// Returns the number of loads forwarded (the loads themselves become
/// dead and are swept by the following DCE run).
unsigned runStoreForward(ir::Module &M);

/// Promotes memory-resident scalars (globals and non-escaping allocas)
/// into SSA registers across natural loops: load in the preheader, phis
/// at the header and interior joins, writeback at the single exit.
/// Restricted to call-free single-exit loops whose other memory traffic
/// provably touches different objects; a loop that stores the scalar
/// must do so on every iteration. Returns the number of (loop, scalar)
/// promotions performed.
unsigned runScalarPromote(ir::Module &M);

struct PipelineStats {
  LoopUnrollStats Unroll;
  unsigned BlocksSimplified = 0;
  unsigned LoadsForwarded = 0;
  unsigned ScalarsPromoted = 0;
  unsigned InstructionsDCEd = 0;
};

/// The default -O1 pipeline: LoopUnroll, then CFG simplification,
/// store-to-load forwarding, loop scalar promotion, and DCE.
PipelineStats runDefaultPipeline(ir::Module &M,
                                 const LoopUnrollOptions &UnrollOpts = {});

} // namespace mcc::midend

#endif // MCC_MIDEND_PASSES_H
