//===--- Passes.h - Mid-end cleanup passes and pipeline ---------*- C++ -*-===//
#ifndef MCC_MIDEND_PASSES_H
#define MCC_MIDEND_PASSES_H

#include "midend/LoopUnroll.h"

namespace mcc::midend {

/// Removes blocks unreachable from the entry and merges trivial
/// single-predecessor chains. Returns the number of blocks removed/merged.
unsigned runSimplifyCFG(ir::Module &M);

/// Removes side-effect-free instructions without uses. Returns the number
/// of instructions removed.
unsigned runDCE(ir::Module &M);

struct PipelineStats {
  LoopUnrollStats Unroll;
  unsigned BlocksSimplified = 0;
  unsigned InstructionsDCEd = 0;
};

/// The default -O1 pipeline: LoopUnroll, then CFG simplification and DCE.
PipelineStats runDefaultPipeline(ir::Module &M,
                                 const LoopUnrollOptions &UnrollOpts = {});

} // namespace mcc::midend

#endif // MCC_MIDEND_PASSES_H
