#include "midend/Passes.h"

#include <algorithm>
#include <map>
#include <set>

namespace mcc::midend {

using namespace ir;

namespace {

/// Removes phi-incoming entries whose block died.
void prunePhis(BasicBlock *BB, const std::set<BasicBlock *> &Alive) {
  for (const auto &I : BB->instructions()) {
    if (I->getOpcode() != Opcode::Phi)
      break;
    // Rebuild the operand list without dead incoming blocks.
    std::vector<Value *> Kept;
    for (unsigned P = 0; P < I->getNumIncoming(); ++P)
      if (Alive.count(I->getIncomingBlock(P))) {
        Kept.push_back(I->getIncomingValue(P));
        Kept.push_back(I->getIncomingBlock(P));
      }
    if (Kept.size() != I->getNumOperands())
      I->setOperands(std::move(Kept));
    (void)BB;
  }
}

unsigned removeUnreachable(Function &F) {
  if (F.isDeclaration())
    return 0;
  std::set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work = {F.getEntryBlock()};
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    if (!Reachable.insert(BB).second)
      continue;
    if (Instruction *Term = BB->getTerminator())
      for (unsigned S = 0; S < Term->getNumSuccessors(); ++S)
        Work.push_back(Term->getSuccessor(S));
  }
  std::vector<BasicBlock *> Dead;
  for (const auto &BB : F.blocks())
    if (!Reachable.count(BB.get()))
      Dead.push_back(BB.get());
  for (BasicBlock *BB : Reachable)
    prunePhis(BB, Reachable);
  for (BasicBlock *BB : Dead)
    F.eraseBlock(BB);
  return static_cast<unsigned>(Dead.size());
}

bool hasSideEffects(const Instruction &I) {
  switch (I.getOpcode()) {
  case Opcode::Store:
  case Opcode::Call:
  case Opcode::Br:
  case Opcode::Ret:
  case Opcode::Unreachable:
    return true;
  case Opcode::SDiv:
  case Opcode::UDiv:
  case Opcode::SRem:
  case Opcode::URem:
    return true; // may trap
  default:
    return false;
  }
}

/// A pointer SSA value whose object identity is known exactly: two
/// distinct such values never alias (distinct allocas are distinct
/// storage, allocas are not globals, and distinct globals are distinct).
/// GEP results and loaded pointers stay "unknown" and are handled
/// conservatively.
bool isDistinctObject(const Value *V) {
  if (ir_dyn_cast<GlobalVariable>(V))
    return true;
  const auto *I = ir_dyn_cast<Instruction>(V);
  return I && I->getOpcode() == Opcode::Alloca;
}

unsigned forwardLoadsInFunction(Function &F) {
  // Loads proven redundant, mapped to the value they must yield. Uses
  // are rewritten function-wide at the end; chains (a forwarded load
  // feeding another forwarded load's key) are chased through Resolve.
  std::map<Value *, Value *> Replace;
  auto Resolve = [&Replace](Value *V) {
    for (auto It = Replace.find(V); It != Replace.end();
         It = Replace.find(V))
      V = It->second;
    return V;
  };

  unsigned Forwarded = 0;
  for (const auto &BB : F.blocks()) {
    // What each pointer currently holds, valid within this block only.
    std::map<Value *, Value *> Known;
    for (const auto &IP : BB->instructions()) {
      Instruction *I = IP.get();
      switch (I->getOpcode()) {
      case Opcode::Load: {
        Value *P = Resolve(I->getOperand(0));
        auto It = Known.find(P);
        if (It != Known.end() &&
            It->second->getType() == I->getType()) {
          Replace[I] = It->second;
          ++Forwarded;
        } else {
          // Remember the loaded value so a repeated load forwards too.
          Known[P] = I;
        }
        break;
      }
      case Opcode::Store: {
        Value *P = Resolve(I->getOperand(1));
        if (isDistinctObject(P)) {
          // The store touches exactly P: entries for other distinct
          // objects survive, unknown-pointer entries may alias P.
          for (auto It = Known.begin(); It != Known.end();)
            if (It->first != P && !isDistinctObject(It->first))
              It = Known.erase(It);
            else
              ++It;
        } else {
          // A store through a GEP or loaded pointer may hit anything.
          Known.clear();
        }
        Known[P] = Resolve(I->getOperand(0));
        break;
      }
      case Opcode::Call:
        // The callee may write any escaped or global storage.
        Known.clear();
        break;
      default:
        break;
      }
    }
  }

  if (Forwarded == 0)
    return 0;
  for (const auto &BB : F.blocks())
    for (const auto &IP : BB->instructions())
      for (unsigned K = 0; K < IP->getNumOperands(); ++K)
        IP->setOperand(K, Resolve(IP->getOperand(K)));
  return Forwarded;
}

// ===--------------- Scalar promotion over natural loops ---------------=== //

/// Chases GEPs to the pointer they index into. Indexing stays within the
/// underlying object, so a GEP access aliases only its base object.
Value *baseObject(Value *V) {
  while (auto *I = ir_dyn_cast<Instruction>(V)) {
    if (I->getOpcode() != Opcode::GEP)
      break;
    V = I->getOperand(0);
  }
  return V;
}

/// Reverse post-order over the reachable CFG.
std::vector<BasicBlock *> rpoOrder(Function &F) {
  struct Frame {
    BasicBlock *BB;
    unsigned NextSucc;
  };
  std::vector<BasicBlock *> Post;
  std::set<BasicBlock *> Seen = {F.getEntryBlock()};
  std::vector<Frame> Stack = {{F.getEntryBlock(), 0}};
  while (!Stack.empty()) {
    Frame &Fr = Stack.back();
    Instruction *T = Fr.BB->getTerminator();
    unsigned N = T ? T->getNumSuccessors() : 0;
    if (Fr.NextSucc < N) {
      BasicBlock *S = T->getSuccessor(Fr.NextSucc++);
      if (Seen.insert(S).second)
        Stack.push_back({S, 0});
    } else {
      Post.push_back(Fr.BB);
      Stack.pop_back();
    }
  }
  std::reverse(Post.begin(), Post.end());
  return Post;
}

/// Iterative dominator sets (functions here are small).
std::map<BasicBlock *, std::set<BasicBlock *>>
computeDominators(Function &F, const std::vector<BasicBlock *> &RPO) {
  std::map<BasicBlock *, std::set<BasicBlock *>> Dom;
  std::set<BasicBlock *> All(RPO.begin(), RPO.end());
  for (BasicBlock *BB : RPO)
    Dom[BB] = All;
  BasicBlock *Entry = F.getEntryBlock();
  Dom[Entry] = {Entry};
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      if (BB == Entry)
        continue;
      std::set<BasicBlock *> NewDom;
      bool First = true;
      for (BasicBlock *P : BB->predecessors()) {
        if (!All.count(P))
          continue;
        const std::set<BasicBlock *> &PD = Dom[P];
        if (First) {
          NewDom = PD;
          First = false;
        } else {
          for (auto It = NewDom.begin(); It != NewDom.end();)
            if (!PD.count(*It))
              It = NewDom.erase(It);
            else
              ++It;
        }
      }
      NewDom.insert(BB);
      if (NewDom != Dom[BB]) {
        Dom[BB] = std::move(NewDom);
        Changed = true;
      }
    }
  }
  return Dom;
}

struct NaturalLoop {
  BasicBlock *Header = nullptr;
  std::set<BasicBlock *> Blocks;
  std::vector<BasicBlock *> BackSources; // blocks with an edge to Header
};

/// An alloca is promotable storage only if its address never escapes:
/// every use in the function is as a load's pointer or a store's
/// destination (being a store's *value* operand publishes the address).
std::set<const Value *> nonEscapingAllocas(Function &F) {
  std::set<const Value *> Allocas, Escaped;
  for (const auto &BB : F.blocks())
    for (const auto &IP : BB->instructions()) {
      if (IP->getOpcode() == Opcode::Alloca)
        Allocas.insert(IP.get());
      for (unsigned K = 0; K < IP->getNumOperands(); ++K) {
        Value *Op = IP->getOperand(K);
        const auto *OpI = ir_dyn_cast<Instruction>(Op);
        if (!OpI || OpI->getOpcode() != Opcode::Alloca)
          continue;
        bool Safe = (IP->getOpcode() == Opcode::Load && K == 0) ||
                    (IP->getOpcode() == Opcode::Store && K == 1);
        if (!Safe)
          Escaped.insert(Op);
      }
    }
  for (const Value *A : Escaped)
    Allocas.erase(A);
  return Allocas;
}

/// Promotes scalars that live in memory (globals and non-escaping
/// allocas) into SSA registers across one natural loop: initial load in
/// the preheader, phis at the header and interior joins, writeback at
/// the single exit. This is what breaks the per-iteration
/// load/add/store round-trip on accumulator globals that store-to-load
/// forwarding (block-local) cannot touch.
unsigned promoteInLoop(Function &F, const NaturalLoop &L,
                       const std::map<BasicBlock *, std::set<BasicBlock *>>
                           &Dom,
                       const std::vector<BasicBlock *> &RPO,
                       const std::set<const Value *> &SafeAllocas) {
  // Structural gates: unique preheader, a single exit edge whose target
  // is reached only from the loop, and no calls (a callee may touch any
  // global or escaped storage).
  BasicBlock *Preheader = nullptr;
  for (BasicBlock *P : L.Header->predecessors()) {
    if (L.Blocks.count(P))
      continue;
    if (Preheader && Preheader != P)
      return 0;
    Preheader = P;
  }
  if (!Preheader || !Preheader->getTerminator())
    return 0;

  BasicBlock *CondBlock = nullptr, *Exit = nullptr;
  for (BasicBlock *BB : L.Blocks) {
    Instruction *T = BB->getTerminator();
    if (!T)
      return 0;
    for (unsigned S = 0; S < T->getNumSuccessors(); ++S) {
      BasicBlock *Succ = T->getSuccessor(S);
      if (L.Blocks.count(Succ))
        continue;
      if (CondBlock && (CondBlock != BB || Exit != Succ))
        return 0; // multiple exit edges
      CondBlock = BB;
      Exit = Succ;
    }
  }
  if (!CondBlock)
    return 0; // no exit: nothing observable to write back

  for (BasicBlock *BB : L.Blocks)
    for (const auto &IP : BB->instructions())
      if (IP->getOpcode() == Opcode::Call)
        return 0;

  auto dominatesAllBackSources = [&](BasicBlock *BB) {
    for (BasicBlock *BS : L.BackSources) {
      auto It = Dom.find(BS);
      if (It == Dom.end() || !It->second.count(BB))
        return false;
    }
    return true;
  };

  std::vector<BasicBlock *> LoopRPO;
  for (BasicBlock *BB : RPO)
    if (L.Blocks.count(BB))
      LoopRPO.push_back(BB);

  // Candidate discovery: pointers accessed directly (no GEP) inside the
  // loop whose object identity is exact.
  struct Candidate {
    const IRType *Ty = nullptr;
    bool HasStore = false;
    bool Bad = false;
  };
  std::map<Value *, Candidate> Cands;
  std::vector<Value *> CandOrder; // deterministic discovery order
  auto candFor = [&](Value *P) -> Candidate & {
    auto [It, New] = Cands.try_emplace(P);
    if (New)
      CandOrder.push_back(P);
    return It->second;
  };
  auto isPromotableObject = [&](Value *V) {
    if (ir_dyn_cast<GlobalVariable>(V))
      return true;
    return SafeAllocas.count(V) != 0;
  };
  for (BasicBlock *BB : LoopRPO)
    for (const auto &IP : BB->instructions()) {
      if (IP->getOpcode() == Opcode::Load) {
        Value *P = IP->getOperand(0);
        if (!isPromotableObject(P))
          continue;
        Candidate &C = candFor(P);
        if (C.Ty && C.Ty != IP->getType())
          C.Bad = true;
        C.Ty = IP->getType();
      } else if (IP->getOpcode() == Opcode::Store) {
        Value *P = IP->getOperand(1);
        if (!isPromotableObject(P))
          continue;
        Candidate &C = candFor(P);
        const IRType *VTy = IP->getOperand(0)->getType();
        if (C.Ty && C.Ty != VTy)
          C.Bad = true;
        C.Ty = VTy;
        C.HasStore = true;
        // An introduced exit writeback is only legal when the loop
        // already stores on every iteration.
        if (!dominatesAllBackSources(BB))
          C.Bad = true;
      }
    }
  // Aliasing: every other memory access in the loop must provably touch
  // a different object.
  for (BasicBlock *BB : L.Blocks)
    for (const auto &IP : BB->instructions()) {
      Value *P = nullptr;
      if (IP->getOpcode() == Opcode::Load)
        P = IP->getOperand(0);
      else if (IP->getOpcode() == Opcode::Store)
        P = IP->getOperand(1);
      else
        continue;
      Value *Base = baseObject(P);
      bool Distinct = ir_dyn_cast<GlobalVariable>(Base) ||
                      (ir_dyn_cast<Instruction>(Base) &&
                       ir_cast<Instruction>(Base)->getOpcode() ==
                           Opcode::Alloca);
      for (auto &[G, C] : Cands)
        if (P != G && (!Distinct || Base == G))
          C.Bad = true;
    }

  unsigned Promoted = 0;
  std::map<Value *, Value *> Replace;
  auto Resolve = [&Replace](Value *V) {
    for (auto It = Replace.find(V); It != Replace.end();
         It = Replace.find(V))
      V = It->second;
    return V;
  };
  std::set<const Instruction *> Erase;

  // Writebacks land in a dedicated block on the exit edge, so they run
  // exactly once per loop execution even when the exit target has other
  // predecessors (e.g. an unroll-remainder loop header).
  BasicBlock *WBBlock = nullptr;
  auto writebackBlock = [&]() {
    if (WBBlock)
      return WBBlock;
    WBBlock = F.createBlockAfter(CondBlock, CondBlock->getName() +
                                                ".promote.exit");
    Instruction *T = CondBlock->getTerminator();
    for (unsigned S = 0; S < T->getNumOperands(); ++S)
      if (T->getOperand(S) == Exit)
        T->setOperand(S, WBBlock);
    for (const auto &IP : Exit->instructions()) {
      if (IP->getOpcode() != Opcode::Phi)
        break;
      for (unsigned P = 0; P < IP->getNumIncoming(); ++P)
        if (IP->getIncomingBlock(P) == CondBlock)
          IP->setOperand(2 * P + 1, WBBlock);
    }
    WBBlock->append(std::make_unique<Instruction>(
        Opcode::Br, IRType::getVoid(), std::vector<Value *>{Exit}));
    return WBBlock;
  };

  for (Value *G : CandOrder) {
    const Candidate &C = Cands[G];
    if (C.Bad || !C.Ty)
      continue;
    std::string Tag = G->getName().empty() ? "promo" : G->getName();
    auto PreLoad = std::make_unique<Instruction>(
        Opcode::Load, C.Ty, std::vector<Value *>{G}, Tag + ".promoted");
    PreLoad->ElemTy = C.Ty;
    Instruction *Pre =
        Preheader->insertAt(Preheader->size() - 1, std::move(PreLoad));

    if (!C.HasStore) {
      // Loop-invariant: every load is the preheader load.
      for (BasicBlock *BB : LoopRPO)
        for (const auto &IP : BB->instructions())
          if (IP->getOpcode() == Opcode::Load && IP.get() != Pre &&
              IP->getOperand(0) == G) {
            Replace[IP.get()] = Pre;
            Erase.insert(IP.get());
          }
      ++Promoted;
      continue;
    }

    // Single-variable SSA construction over the loop region with phis
    // at the header and every interior join.
    std::map<BasicBlock *, Instruction *> PhiAt;
    std::map<BasicBlock *, std::vector<BasicBlock *>> InPreds;
    for (BasicBlock *BB : LoopRPO) {
      std::vector<BasicBlock *> Preds;
      for (BasicBlock *P : BB->predecessors())
        if (L.Blocks.count(P) &&
            std::find(Preds.begin(), Preds.end(), P) == Preds.end())
          Preds.push_back(P);
      InPreds[BB] = Preds;
      if (BB == L.Header || Preds.size() >= 2) {
        auto Phi = std::make_unique<Instruction>(
            Opcode::Phi, C.Ty, std::vector<Value *>{}, Tag + ".promoted");
        PhiAt[BB] = BB->insertAt(0, std::move(Phi));
      }
    }
    std::map<BasicBlock *, Value *> EndVal;
    for (BasicBlock *BB : LoopRPO) {
      Value *Cur = PhiAt.count(BB) ? static_cast<Value *>(PhiAt[BB])
                                   : EndVal[InPreds[BB].front()];
      for (const auto &IP : BB->instructions()) {
        if (IP->getOpcode() == Opcode::Load && IP->getOperand(0) == G) {
          Replace[IP.get()] = Cur;
          Erase.insert(IP.get());
        } else if (IP->getOpcode() == Opcode::Store &&
                   IP->getOperand(1) == G) {
          Cur = IP->getOperand(0);
          Erase.insert(IP.get());
        }
      }
      EndVal[BB] = Cur;
    }
    for (auto &[BB, Phi] : PhiAt) {
      std::vector<Value *> Ops;
      if (BB == L.Header) {
        Ops.push_back(Pre);
        Ops.push_back(Preheader);
        for (BasicBlock *BS : L.BackSources) {
          Ops.push_back(EndVal[BS]);
          Ops.push_back(BS);
        }
      } else {
        for (BasicBlock *P : InPreds[BB]) {
          Ops.push_back(EndVal[P]);
          Ops.push_back(P);
        }
      }
      Phi->setOperands(std::move(Ops));
    }
    auto WB = std::make_unique<Instruction>(
        Opcode::Store, IRType::getVoid(),
        std::vector<Value *>{EndVal[CondBlock], G});
    BasicBlock *WBB = writebackBlock();
    WBB->insertAt(WBB->size() - 1, std::move(WB));
    ++Promoted;
  }

  if (Promoted == 0)
    return 0;
  for (const auto &BB : F.blocks())
    for (const auto &IP : BB->instructions())
      for (unsigned K = 0; K < IP->getNumOperands(); ++K)
        IP->setOperand(K, Resolve(IP->getOperand(K)));
  for (const auto &BB : F.blocks())
    for (std::size_t Idx = BB->size(); Idx-- > 0;)
      if (Erase.count(BB->instructions()[Idx].get()))
        BB->erase(Idx);
  return Promoted;
}

unsigned promoteScalarsInFunction(Function &F) {
  if (F.isDeclaration())
    return 0;
  unsigned Promoted = 0;
  bool Changed = true;
  // Each promotion may split an exit edge, so analyses are recomputed
  // after every transformed loop. Innermost loops go first: an
  // accumulator promoted out of an inner loop reappears (as the
  // inserted preheader load / writeback store) inside the enclosing
  // loop and is hoisted again on the next sweep. Accesses only ever
  // move outward through the nest, so this terminates.
  while (Changed) {
    Changed = false;
    std::vector<BasicBlock *> RPO = rpoOrder(F);
    auto Dom = computeDominators(F, RPO);

    // Natural loops: back edges B->H where H dominates B; bodies by
    // backward reachability from B stopping at H.
    std::map<BasicBlock *, NaturalLoop> Loops;
    for (BasicBlock *BB : RPO) {
      Instruction *T = BB->getTerminator();
      if (!T)
        continue;
      for (unsigned S = 0; S < T->getNumSuccessors(); ++S) {
        BasicBlock *H = T->getSuccessor(S);
        if (!Dom[BB].count(H))
          continue;
        NaturalLoop &L = Loops[H];
        L.Header = H;
        L.BackSources.push_back(BB);
        L.Blocks.insert(H);
        std::vector<BasicBlock *> Work = {BB};
        while (!Work.empty()) {
          BasicBlock *Cur = Work.back();
          Work.pop_back();
          if (!L.Blocks.insert(Cur).second)
            continue;
          for (BasicBlock *P : Cur->predecessors())
            Work.push_back(P);
        }
      }
    }

    std::vector<const NaturalLoop *> Order;
    for (const auto &[H, L] : Loops)
      Order.push_back(&L);
    std::sort(Order.begin(), Order.end(),
              [](const NaturalLoop *A, const NaturalLoop *B) {
                if (A->Blocks.size() != B->Blocks.size())
                  return A->Blocks.size() < B->Blocks.size();
                return A->Header->getName() < B->Header->getName();
              });

    std::set<const Value *> SafeAllocas = nonEscapingAllocas(F);
    for (const NaturalLoop *L : Order)
      if (unsigned N = promoteInLoop(F, *L, Dom, RPO, SafeAllocas)) {
        Promoted += N;
        Changed = true;
        break; // CFG may have changed: re-analyze
      }
  }
  return Promoted;
}

} // namespace

unsigned runSimplifyCFG(Module &M) {
  unsigned Removed = 0;
  for (const auto &F : M.functions())
    Removed += removeUnreachable(*F);
  return Removed;
}

unsigned runDCE(Module &M) {
  unsigned Removed = 0;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      // Count uses.
      std::map<const Value *, unsigned> Uses;
      for (const auto &BB : F->blocks())
        for (const auto &I : BB->instructions())
          for (const Value *Op : I->operands())
            ++Uses[Op];
      for (const auto &BB : F->blocks()) {
        for (std::size_t Idx = BB->size(); Idx-- > 0;) {
          const Instruction *I = BB->instructions()[Idx].get();
          if (hasSideEffects(*I) || I->getType()->isVoid())
            continue;
          if (Uses[I] == 0) {
            BB->erase(Idx);
            ++Removed;
            Changed = true;
          }
        }
      }
    }
  }
  return Removed;
}

unsigned runStoreForward(Module &M) {
  unsigned Forwarded = 0;
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      Forwarded += forwardLoadsInFunction(*F);
  return Forwarded;
}

unsigned runScalarPromote(Module &M) {
  unsigned Promoted = 0;
  for (const auto &F : M.functions())
    Promoted += promoteScalarsInFunction(*F);
  return Promoted;
}

PipelineStats runDefaultPipeline(Module &M,
                                 const LoopUnrollOptions &UnrollOpts) {
  PipelineStats Stats;
  Stats.Unroll = runLoopUnroll(M, UnrollOpts);
  Stats.BlocksSimplified = runSimplifyCFG(M);
  Stats.LoadsForwarded = runStoreForward(M);
  Stats.ScalarsPromoted = runScalarPromote(M);
  Stats.InstructionsDCEd = runDCE(M);
  return Stats;
}

} // namespace mcc::midend
