#include "midend/Passes.h"

#include <map>
#include <set>

namespace mcc::midend {

using namespace ir;

namespace {

/// Removes phi-incoming entries whose block died.
void prunePhis(BasicBlock *BB, const std::set<BasicBlock *> &Alive) {
  for (const auto &I : BB->instructions()) {
    if (I->getOpcode() != Opcode::Phi)
      break;
    // Rebuild the operand list without dead incoming blocks.
    std::vector<Value *> Kept;
    for (unsigned P = 0; P < I->getNumIncoming(); ++P)
      if (Alive.count(I->getIncomingBlock(P))) {
        Kept.push_back(I->getIncomingValue(P));
        Kept.push_back(I->getIncomingBlock(P));
      }
    if (Kept.size() != I->getNumOperands())
      I->setOperands(std::move(Kept));
    (void)BB;
  }
}

unsigned removeUnreachable(Function &F) {
  if (F.isDeclaration())
    return 0;
  std::set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work = {F.getEntryBlock()};
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    if (!Reachable.insert(BB).second)
      continue;
    if (Instruction *Term = BB->getTerminator())
      for (unsigned S = 0; S < Term->getNumSuccessors(); ++S)
        Work.push_back(Term->getSuccessor(S));
  }
  std::vector<BasicBlock *> Dead;
  for (const auto &BB : F.blocks())
    if (!Reachable.count(BB.get()))
      Dead.push_back(BB.get());
  for (BasicBlock *BB : Reachable)
    prunePhis(BB, Reachable);
  for (BasicBlock *BB : Dead)
    F.eraseBlock(BB);
  return static_cast<unsigned>(Dead.size());
}

bool hasSideEffects(const Instruction &I) {
  switch (I.getOpcode()) {
  case Opcode::Store:
  case Opcode::Call:
  case Opcode::Br:
  case Opcode::Ret:
  case Opcode::Unreachable:
    return true;
  case Opcode::SDiv:
  case Opcode::UDiv:
  case Opcode::SRem:
  case Opcode::URem:
    return true; // may trap
  default:
    return false;
  }
}

} // namespace

unsigned runSimplifyCFG(Module &M) {
  unsigned Removed = 0;
  for (const auto &F : M.functions())
    Removed += removeUnreachable(*F);
  return Removed;
}

unsigned runDCE(Module &M) {
  unsigned Removed = 0;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      // Count uses.
      std::map<const Value *, unsigned> Uses;
      for (const auto &BB : F->blocks())
        for (const auto &I : BB->instructions())
          for (const Value *Op : I->operands())
            ++Uses[Op];
      for (const auto &BB : F->blocks()) {
        for (std::size_t Idx = BB->size(); Idx-- > 0;) {
          const Instruction *I = BB->instructions()[Idx].get();
          if (hasSideEffects(*I) || I->getType()->isVoid())
            continue;
          if (Uses[I] == 0) {
            BB->erase(Idx);
            ++Removed;
            Changed = true;
          }
        }
      }
    }
  }
  return Removed;
}

PipelineStats runDefaultPipeline(Module &M,
                                 const LoopUnrollOptions &UnrollOpts) {
  PipelineStats Stats;
  Stats.Unroll = runLoopUnroll(M, UnrollOpts);
  Stats.BlocksSimplified = runSimplifyCFG(M);
  Stats.InstructionsDCEd = runDCE(M);
  return Stats;
}

} // namespace mcc::midend
