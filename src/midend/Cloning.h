//===--- Cloning.h - Block cloning with value remapping ---------*- C++ -*-===//
#ifndef MCC_MIDEND_CLONING_H
#define MCC_MIDEND_CLONING_H

#include "ir/IR.h"

#include <map>
#include <vector>

namespace mcc::midend {

using ValueMap = std::map<ir::Value *, ir::Value *>;

/// Looks \p V up in \p VMap, returning \p V itself when unmapped.
inline ir::Value *remap(const ValueMap &VMap, ir::Value *V) {
  auto It = VMap.find(V);
  return It == VMap.end() ? V : It->second;
}

/// Clones \p Blocks (instructions and intra-set branch targets remapped
/// through \p VMap; externally-defined operands left alone). Pre-seeded
/// entries of \p VMap take precedence — callers use this to substitute
/// header phis with concrete values, in which case phi instructions that
/// are pre-mapped are not cloned at all. New blocks are appended after
/// \p InsertAfter in order. On return \p VMap contains the full mapping.
std::vector<ir::BasicBlock *>
cloneBlocks(ir::Function &F, const std::vector<ir::BasicBlock *> &Blocks,
            ValueMap &VMap, ir::BasicBlock *InsertAfter,
            const std::string &Suffix);

} // namespace mcc::midend

#endif // MCC_MIDEND_CLONING_H
