//===--- LoopUnroll.cpp - Metadata-driven loop unrolling --------------------===//
#include "midend/LoopUnroll.h"

#include "midend/Cloning.h"

#include <cassert>
#include <set>

namespace mcc::midend {

using namespace ir;

namespace {

/// The recognized loop structure. Two shapes:
///   (a) alloca-form, front-end loops: Header == CondBlock carries the
///       exiting comparison (IV lives in memory);
///   (b) canonical skeleton: Header holds the IV phi and falls through to
///       a separate CondBlock.
struct LoopShape {
  BasicBlock *Header = nullptr;
  BasicBlock *CondBlock = nullptr;
  Instruction *CondBr = nullptr;
  BasicBlock *BodyEntry = nullptr;
  BasicBlock *Latch = nullptr;
  Instruction *LatchBr = nullptr;
  BasicBlock *Exit = nullptr;
  std::vector<BasicBlock *> Blocks; // header..latch, function order
  std::vector<Instruction *> HeaderPhis;
  // Shape (b) extras:
  Instruction *IVPhi = nullptr;
  Value *TripCount = nullptr; // cmp bound when phi starts at 0, step 1
};

bool analyzeLoop(Function &F, Instruction *LatchBr, LoopShape &L) {
  if (LatchBr->getOpcode() != Opcode::Br || LatchBr->isConditionalBr())
    return false;
  L.LatchBr = LatchBr;
  L.Latch = LatchBr->getParent();
  L.Header = LatchBr->getSuccessor(0);

  if (!L.Header->getTerminator())
    return false;

  // Collect the loop blocks: backward reachability from the latch,
  // stopping at the header.
  std::set<BasicBlock *> InLoop = {L.Header};
  std::vector<BasicBlock *> Work = {L.Latch};
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    if (InLoop.count(BB))
      continue;
    InLoop.insert(BB);
    for (BasicBlock *Pred : BB->predecessors())
      if (!InLoop.count(Pred))
        Work.push_back(Pred);
  }
  // Keep function order for readable output.
  for (const auto &BB : F.blocks())
    if (InLoop.count(BB.get()))
      L.Blocks.push_back(BB.get());

  // Find the (single) exiting block. Multi-block loop conditions (e.g. the
  // strip-mine conditions "iv < tile && iv < n" built with &&) put the
  // exiting branch several blocks after the header.
  for (BasicBlock *BB : L.Blocks) {
    Instruction *Term = BB->getTerminator();
    if (!Term || !Term->isConditionalBr())
      continue;
    BasicBlock *Succ0 = Term->getSuccessor(0);
    BasicBlock *Succ1 = Term->getSuccessor(1);
    bool In0 = InLoop.count(Succ0) != 0;
    bool In1 = InLoop.count(Succ1) != 0;
    if (In0 == In1)
      continue; // internal control flow
    if (L.CondBlock)
      return false; // multiple exits: unsupported
    L.CondBlock = BB;
    L.CondBr = Term;
    L.BodyEntry = In0 ? Succ0 : Succ1;
    L.Exit = In0 ? Succ1 : Succ0;
  }
  if (!L.CondBlock)
    return false;
  if (L.Exit->front() &&
      L.Exit->front()->getOpcode() == Opcode::Phi)
    return false; // exit phis not supported (not produced by our codegen)

  for (const auto &I : L.Header->instructions())
    if (I->getOpcode() == Opcode::Phi)
      L.HeaderPhis.push_back(I.get());

  // Shape (b) trip-count recognition: phi [0, pre], [phi+1, latch];
  // cond: icmp ult phi, N.
  if (L.HeaderPhis.size() == 1 && L.CondBlock != L.Header) {
    Instruction *Phi = L.HeaderPhis[0];
    bool InitZero = false, StepOne = false;
    for (unsigned P = 0; P < Phi->getNumIncoming(); ++P) {
      Value *V = Phi->getIncomingValue(P);
      if (Phi->getIncomingBlock(P) == L.Latch) {
        if (auto *Add = ir_dyn_cast<Instruction>(V))
          if (Add->getOpcode() == Opcode::Add &&
              Add->getOperand(0) == Phi)
            if (auto *C = ir_dyn_cast<ConstantInt>(Add->getOperand(1)))
              StepOne = C->getValue() == 1;
      } else if (auto *C = ir_dyn_cast<ConstantInt>(V)) {
        InitZero = C->getValue() == 0;
      }
    }
    Instruction *Cmp = nullptr;
    for (const auto &I : L.CondBlock->instructions())
      if (I->getOpcode() == Opcode::ICmp)
        Cmp = I.get();
    if (InitZero && StepOne && Cmp && Cmp->Pred == CmpPred::ULT &&
        Cmp->getOperand(0) == Phi) {
      L.IVPhi = Phi;
      L.TripCount = Cmp->getOperand(1);
    }
  }
  return true;
}

/// Constant trip count for shape (b) (phi IV, init 0, step 1, ult bound).
std::int64_t getConstantTripCount(const LoopShape &L) {
  if (!L.TripCount)
    return -1;
  if (const auto *C = ir_dyn_cast<ConstantInt>(L.TripCount))
    return C->getValue();
  return -1;
}

unsigned loopBodySize(const LoopShape &L) {
  unsigned N = 0;
  for (const BasicBlock *BB : L.Blocks)
    N += static_cast<unsigned>(BB->size());
  return N;
}

void clearMD(Instruction *Br) {
  Br->LoopMD = LoopMetadata{};
  Br->LoopMD.UnrollDisable = true;
}

/// Unrolls by chaining K-1 clones of the whole header..latch region; every
/// copy keeps its exit check ("conditional within the loop" variant).
void unrollConditionalExit(Function &F, LoopShape &L, unsigned K) {
  ValueMap PrevMap; // empty = identity (copy 0 is the original)
  BasicBlock *PrevLatch = L.Latch;
  Instruction *PrevLatchBr = L.LatchBr;
  BasicBlock *InsertAfter = L.Latch;
  ValueMap LastMap;

  for (unsigned J = 1; J < K; ++J) {
    ValueMap VMap;
    // Header phis are substituted by the previous copy's "next" value.
    for (Instruction *Phi : L.HeaderPhis) {
      Value *FromLatch = nullptr;
      for (unsigned P = 0; P < Phi->getNumIncoming(); ++P)
        if (Phi->getIncomingBlock(P) == L.Latch)
          FromLatch = Phi->getIncomingValue(P);
      assert(FromLatch);
      VMap[Phi] = remap(PrevMap, FromLatch);
    }
    std::vector<BasicBlock *> Clones =
        cloneBlocks(F, L.Blocks, VMap, InsertAfter,
                    ".unroll" + std::to_string(J));
    InsertAfter = Clones.back();

    BasicBlock *HeaderClone = ir_cast<BasicBlock>(VMap.at(L.Header));
    auto *LatchClone = ir_cast<BasicBlock>(VMap.at(L.Latch));
    Instruction *LatchCloneBr = LatchClone->getTerminator();
    // The cloned back edge goes to the original header (it may be
    // retargeted to the next copy in the following iteration).
    LatchCloneBr->setSuccessor(0, L.Header);
    clearMD(LatchCloneBr);
    // The previous copy now falls through to this one.
    PrevLatchBr->setSuccessor(0, HeaderClone);

    PrevMap = std::move(VMap);
    PrevLatch = LatchClone;
    PrevLatchBr = LatchCloneBr;
    LastMap = PrevMap;
  }

  // The original header's phis now receive their back-edge values from the
  // last copy's latch.
  if (K > 1)
    for (Instruction *Phi : L.HeaderPhis)
      for (unsigned P = 0; P < Phi->getNumIncoming(); ++P)
        if (Phi->getIncomingBlock(P) == L.Latch) {
          Phi->setOperand(2 * P, remap(LastMap, Phi->getIncomingValue(P)));
          Phi->setOperand(2 * P + 1, PrevLatch);
        }
  clearMD(L.LatchBr);
}

} // namespace

// The remainder strategy needs the Module (for constants); implement the
// real logic here with full context.
namespace {

struct UnrollContext {
  Module &M;
  Function &F;
  LoopUnrollOptions Opts;
  LoopUnrollStats &Stats;
};

void doUnrollWithRemainder(UnrollContext &Ctx, LoopShape &L, unsigned K) {
  Function &F = Ctx.F;
  Module &M = Ctx.M;
  const IRType *IVTy = L.IVPhi->getType();

  BasicBlock *Preheader = nullptr;
  for (BasicBlock *Pred : L.Header->predecessors())
    if (Pred != L.Latch)
      Preheader = Pred;
  assert(Preheader && "loop without preheader");

  // 1. Remainder loop: full clone, running [mainTrip, trip).
  ValueMap RemMap;
  cloneBlocks(F, L.Blocks, RemMap, L.Blocks.back(), ".remainder");
  auto *RemHeader = ir_cast<BasicBlock>(RemMap.at(L.Header));
  auto *RemPhi = ir_cast<Instruction>(RemMap.at(L.IVPhi));
  auto *RemLatch = ir_cast<BasicBlock>(RemMap.at(L.Latch));
  clearMD(RemLatch->getTerminator());

  // 2. mainTrip = trip - trip % K, computed in the preheader.
  std::unique_ptr<Instruction> PreTerm =
      Preheader->take(Preheader->size() - 1);
  ConstantInt *KC = M.getInt(IVTy, static_cast<std::int64_t>(K));
  auto *Rem = new Instruction(Opcode::URem, IVTy,
                              {L.TripCount, KC}, "unroll.rem");
  Preheader->append(std::unique_ptr<Instruction>(Rem));
  auto *MainTrip = new Instruction(Opcode::Sub, IVTy,
                                   {L.TripCount, Rem}, "unroll.maintrip");
  Preheader->append(std::unique_ptr<Instruction>(MainTrip));
  Preheader->append(std::move(PreTerm));

  // Main loop bound becomes mainTrip.
  Instruction *MainCmp = nullptr;
  for (const auto &I : L.CondBlock->instructions())
    if (I->getOpcode() == Opcode::ICmp)
      MainCmp = I.get();
  assert(MainCmp);
  MainCmp->setOperand(1, MainTrip);

  // Main loop exit flows into the remainder loop.
  for (unsigned S = 0; S < L.CondBr->getNumSuccessors(); ++S)
    if (L.CondBr->getSuccessor(S) == L.Exit)
      L.CondBr->setSuccessor(S, RemHeader);

  // Remainder phi: entry value mainTrip, entering from the main cond
  // block.
  for (unsigned P = 0; P < RemPhi->getNumIncoming(); ++P)
    if (RemPhi->getIncomingBlock(P) != RemLatch) {
      RemPhi->setOperand(2 * P, MainTrip);
      RemPhi->setOperand(2 * P + 1, L.CondBlock);
    }

  // 3. Replicate the body region (without header/cond checks) K-1 times
  //    inside the main loop.
  std::vector<BasicBlock *> BodyRegion;
  for (BasicBlock *BB : L.Blocks)
    if (BB != L.Header && BB != L.CondBlock)
      BodyRegion.push_back(BB);

  ValueMap PrevMap;
  BasicBlock *InsertAfter = L.Latch;
  Instruction *PrevLatchBr = L.LatchBr;
  ValueMap LastMap;
  for (unsigned J = 1; J < K; ++J) {
    ValueMap VMap;
    std::vector<BasicBlock *> Clones = cloneBlocks(
        F, BodyRegion, VMap, InsertAfter, ".unroll" + std::to_string(J));
    InsertAfter = Clones.back();
    auto *BodyClone = ir_cast<BasicBlock>(VMap.at(L.BodyEntry));
    auto *LatchClone = ir_cast<BasicBlock>(VMap.at(L.Latch));
    Instruction *LatchCloneBr = LatchClone->getTerminator();

    // iv_j = iv + J, prepended to the cloned body entry; all cloned uses
    // of the phi are rewritten to it.
    auto *IVJ = new Instruction(Opcode::Add, IVTy,
                                {L.IVPhi, M.getInt(IVTy, J)},
                                "iv.unroll" + std::to_string(J));
    BodyClone->insertAt(0, std::unique_ptr<Instruction>(IVJ));
    for (BasicBlock *CB : Clones)
      for (const auto &I : CB->instructions())
        for (unsigned OpIdx = 0; OpIdx < I->getNumOperands(); ++OpIdx)
          if (I->getOperand(OpIdx) == L.IVPhi && I.get() != IVJ)
            I->setOperand(OpIdx, IVJ);

    LatchCloneBr->setSuccessor(0, L.Header);
    clearMD(LatchCloneBr);
    PrevLatchBr->setSuccessor(0, BodyClone);
    PrevMap = std::move(VMap);
    PrevLatchBr = LatchCloneBr;
    LastMap = PrevMap;
  }

  // The phi's back-edge now comes from the last copy's latch with value
  // iv + K (the cloned increment computes (iv + (K-1)) + 1).
  if (K > 1)
    for (unsigned P = 0; P < L.IVPhi->getNumIncoming(); ++P)
      if (L.IVPhi->getIncomingBlock(P) == L.Latch) {
        L.IVPhi->setOperand(
            2 * P, remap(LastMap, L.IVPhi->getIncomingValue(P)));
        L.IVPhi->setOperand(2 * P + 1,
                            remap(LastMap, static_cast<Value *>(L.Latch)));
      }
  clearMD(L.LatchBr);
  ++Ctx.Stats.LoopsWithRemainder;
}

void processLoop(UnrollContext &Ctx, Instruction *LatchBr) {
  LoopMetadata MD = LatchBr->LoopMD;
  LoopShape L;
  if (!analyzeLoop(Ctx.F, LatchBr, L)) {
    ++Ctx.Stats.LoopsSkipped;
    LatchBr->LoopMD.UnrollDisable = true;
    return;
  }

  unsigned K = 0;
  bool WantFull = MD.UnrollFull;
  if (MD.UnrollCount > 0)
    K = MD.UnrollCount;
  else if (WantFull) {
    std::int64_t Trip = getConstantTripCount(L);
    if (Trip >= 0 &&
        Trip <= static_cast<std::int64_t>(Ctx.Opts.FullUnrollMax)) {
      K = Trip == 0 ? 1 : static_cast<unsigned>(Trip);
      ++Ctx.Stats.LoopsFullyUnrolled;
    } else {
      K = Ctx.Opts.HeuristicFactor; // too large/unknown: partial fallback
    }
  } else if (MD.UnrollEnable) {
    // Profitability heuristic: only small bodies.
    if (Ctx.Opts.HeuristicFactor == 0 ||
        loopBodySize(L) > Ctx.Opts.HeuristicSizeLimit) {
      ++Ctx.Stats.LoopsSkipped;
      clearMD(LatchBr);
      return;
    }
    K = Ctx.Opts.HeuristicFactor;
  }
  if (K <= 1) {
    clearMD(LatchBr);
    if (K == 1)
      ++Ctx.Stats.LoopsUnrolled;
    return;
  }

  bool CanRemainder = L.IVPhi != nullptr && L.TripCount != nullptr;
  bool UseRemainder;
  switch (Ctx.Opts.Strat) {
  case LoopUnrollOptions::Strategy::Remainder:
    UseRemainder = CanRemainder;
    break;
  case LoopUnrollOptions::Strategy::ConditionalExit:
    UseRemainder = false;
    break;
  case LoopUnrollOptions::Strategy::Auto:
  default:
    // Full unrolling of a constant-trip loop needs no remainder and no
    // extra conditionals only when the count divides; conditional-exit is
    // exact for it.
    UseRemainder = CanRemainder && !WantFull;
    break;
  }

  if (UseRemainder)
    doUnrollWithRemainder(Ctx, L, K);
  else
    unrollConditionalExit(Ctx.F, L, K);
  ++Ctx.Stats.LoopsUnrolled;
}

} // namespace

LoopUnrollStats runLoopUnroll(Module &M, const LoopUnrollOptions &Opts) {
  LoopUnrollStats Stats;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    // Iterate to a fixed point: unrolling may expose nested annotated
    // loops (e.g. the floor loop of a tiled partial unroll).
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &BB : F->blocks()) {
        Instruction *Term = BB->getTerminator();
        if (!Term || Term->getOpcode() != Opcode::Br ||
            Term->isConditionalBr())
          continue;
        if (!Term->LoopMD.any() || Term->LoopMD.UnrollDisable)
          continue;
        if (!Term->LoopMD.UnrollFull && !Term->LoopMD.UnrollEnable &&
            Term->LoopMD.UnrollCount == 0) {
          // Only vectorize hints: nothing for this pass.
          continue;
        }
        UnrollContext Ctx{M, *F, Opts, Stats};
        processLoop(Ctx, Term);
        Changed = true;
        break; // block list changed; restart scan
      }
    }
  }
  return Stats;
}

} // namespace mcc::midend
