//===--- LoopUnroll.h - Metadata-driven mid-end loop unrolling --*- C++ -*-===//
//
// The LoopUnroll pass of the paper's Section 2.2: consumes the
// llvm.loop.unroll.* metadata that CodeGen attaches for LoopHintAttr (and
// that OpenMPIRBuilder attaches for unrollLoop*), and performs the actual
// body duplication in the mid-end — "No duplication takes place until that
// point."
//
// Two strategies, corresponding to the two implementations the paper's
// Listing 2 discussion contrasts:
//
//   * ConditionalExit — each replicated body copy keeps its own exit
//     check ("the conditional within the loop"); correct for every loop
//     shape this compiler emits.
//   * Remainder — the main loop runs floor(trip/factor) rounds of
//     factor checks-free bodies, followed by a remainder loop (the
//     paper's Listing 2); applicable to canonical loop skeletons
//     (phi IV, unit step, ult bound).
//
//===----------------------------------------------------------------------===//
#ifndef MCC_MIDEND_LOOPUNROLL_H
#define MCC_MIDEND_LOOPUNROLL_H

#include "ir/IR.h"

namespace mcc::midend {

struct LoopUnrollOptions {
  enum class Strategy { Auto, ConditionalExit, Remainder };
  Strategy Strat = Strategy::Auto;
  /// Factor used for llvm.loop.unroll.enable (heuristic) when the body is
  /// small enough; 0 disables heuristic unrolling.
  unsigned HeuristicFactor = 4;
  /// Bodies larger than this (instructions) are not heuristically
  /// unrolled.
  unsigned HeuristicSizeLimit = 64;
  /// Full unrolling is only performed up to this constant trip count;
  /// larger loops fall back to partial unrolling by HeuristicFactor.
  unsigned FullUnrollMax = 128;
};

struct LoopUnrollStats {
  unsigned LoopsUnrolled = 0;
  unsigned LoopsFullyUnrolled = 0;
  unsigned LoopsWithRemainder = 0;
  unsigned LoopsSkipped = 0;
};

/// Runs the unroller over every function of \p M. Returns statistics.
LoopUnrollStats runLoopUnroll(ir::Module &M, const LoopUnrollOptions &Opts = {});

} // namespace mcc::midend

#endif // MCC_MIDEND_LOOPUNROLL_H
