//===--- Parser.cpp - MiniC recursive-descent parser -----------------------===//
#include "parse/Parser.h"

namespace mcc {

Parser::Parser(Preprocessor &PP, Sema &Actions) : PP(PP), Actions(Actions) {
  PP.lex(Tok); // prime the first token
}

void Parser::consumeToken() {
  if (!LookAhead.empty()) {
    Tok = LookAhead.front();
    LookAhead.pop_front();
    return;
  }
  PP.lex(Tok);
}

const Token &Parser::peekAhead(unsigned N) {
  assert(N >= 1);
  while (LookAhead.size() < N) {
    Token T;
    PP.lex(T);
    LookAhead.push_back(T);
  }
  return LookAhead[N - 1];
}

bool Parser::expectAndConsume(tok::TokenKind K, const char *What) {
  if (Tok.is(K)) {
    consumeToken();
    return true;
  }
  diags().report(Tok.getLocation(), diag::err_expected) << What;
  return false;
}

void Parser::skipUntil(tok::TokenKind K, bool ConsumeIt) {
  int BraceDepth = 0;
  while (!Tok.is(tok::eof)) {
    if (Tok.is(tok::l_brace))
      ++BraceDepth;
    else if (Tok.is(tok::r_brace)) {
      if (BraceDepth == 0 && K != tok::r_brace)
        return; // do not skip past the enclosing block
      --BraceDepth;
    }
    if (BraceDepth <= 0 && Tok.is(K)) {
      if (ConsumeIt)
        consumeToken();
      return;
    }
    consumeToken();
  }
}

void Parser::skipToEndOfPragma() {
  while (!Tok.is(tok::eof) && !Tok.is(tok::annot_pragma_openmp_end))
    consumeToken();
  if (Tok.is(tok::annot_pragma_openmp_end))
    consumeToken();
}

// ===------------------------------------------------------------------=== //
// Types
// ===------------------------------------------------------------------=== //

bool Parser::isTypeSpecifierStart() const {
  switch (Tok.getKind()) {
  case tok::kw_int:
  case tok::kw_long:
  case tok::kw_short:
  case tok::kw_unsigned:
  case tok::kw_signed:
  case tok::kw_float:
  case tok::kw_double:
  case tok::kw_bool:
  case tok::kw_void:
  case tok::kw_char:
  case tok::kw_const:
  case tok::kw_extern:
  case tok::kw_static:
    return true;
  case tok::identifier:
    // Built-in typedef names.
    return Tok.getText() == "size_t" || Tok.getText() == "ptrdiff_t" ||
           Tok.getText() == "int32_t" || Tok.getText() == "int64_t" ||
           Tok.getText() == "uint32_t" || Tok.getText() == "uint64_t";
  default:
    return false;
  }
}

QualType Parser::parseDeclSpecifiers() {
  ASTContext &Ctx = Actions.getASTContext();
  bool IsConst = false;
  bool IsUnsigned = false, IsSigned = false;
  bool SawLong = false, SawShort = false;
  enum class Base { None, Void, Bool, Char, Int, Float, Double } B = Base::None;
  QualType Typedef;

  bool Progress = true;
  while (Progress) {
    Progress = true;
    switch (Tok.getKind()) {
    case tok::kw_const:
      IsConst = true;
      break;
    case tok::kw_extern:
    case tok::kw_static:
      break; // storage classes accepted and ignored
    case tok::kw_unsigned:
      IsUnsigned = true;
      break;
    case tok::kw_signed:
      IsSigned = true;
      break;
    case tok::kw_long:
      SawLong = true;
      break;
    case tok::kw_short:
      SawShort = true;
      break;
    case tok::kw_void:
      B = Base::Void;
      break;
    case tok::kw_bool:
      B = Base::Bool;
      break;
    case tok::kw_char:
      B = Base::Char;
      break;
    case tok::kw_int:
      B = Base::Int;
      break;
    case tok::kw_float:
      B = Base::Float;
      break;
    case tok::kw_double:
      B = Base::Double;
      break;
    case tok::identifier:
      if (B == Base::None && !SawLong && !IsUnsigned && Typedef.isNull()) {
        std::string_view Name = Tok.getText();
        if (Name == "size_t" || Name == "uint64_t")
          Typedef = Ctx.getULongType();
        else if (Name == "ptrdiff_t" || Name == "int64_t")
          Typedef = Ctx.getLongType();
        else if (Name == "int32_t")
          Typedef = Ctx.getIntType();
        else if (Name == "uint32_t")
          Typedef = Ctx.getUIntType();
        else
          Progress = false;
      } else {
        Progress = false;
      }
      break;
    default:
      Progress = false;
      break;
    }
    if (Progress)
      consumeToken();
  }

  QualType Ty;
  if (!Typedef.isNull()) {
    Ty = Typedef;
  } else {
    switch (B) {
    case Base::Void:
      Ty = Ctx.getVoidType();
      break;
    case Base::Bool:
      Ty = Ctx.getBoolType();
      break;
    case Base::Char:
      Ty = Ctx.getCharType();
      break;
    case Base::Float:
      Ty = Ctx.getFloatType();
      break;
    case Base::Double:
      Ty = Ctx.getDoubleType();
      break;
    case Base::Int:
    case Base::None:
      if (B == Base::None && !IsUnsigned && !IsSigned && !SawLong &&
          !SawShort)
        return QualType(); // no type specifier at all
      if (SawLong)
        Ty = IsUnsigned ? Ctx.getULongType() : Ctx.getLongType();
      else
        Ty = IsUnsigned ? Ctx.getUIntType() : Ctx.getIntType();
      break;
    }
    if (B == Base::Int && SawLong)
      Ty = IsUnsigned ? Ctx.getULongType() : Ctx.getLongType();
  }
  if (IsConst)
    Ty = Ty.withConst();
  return Ty;
}

bool Parser::parseDeclarator(QualType &Ty, std::string &Name,
                             SourceLocation &NameLoc) {
  ASTContext &Ctx = Actions.getASTContext();
  while (Tok.is(tok::star)) {
    consumeToken();
    bool PtrConst = tryConsume(tok::kw_const);
    Ty = Ctx.getPointerType(Ty);
    if (PtrConst)
      Ty = Ty.withConst();
  }
  if (!Tok.is(tok::identifier)) {
    diags().report(Tok.getLocation(), diag::err_expected_identifier);
    return false;
  }
  Name = std::string(Tok.getText());
  NameLoc = Tok.getLocation();
  consumeToken();

  // Array suffixes (sizes must be integral constants).
  std::vector<std::uint64_t> Dims;
  while (Tok.is(tok::l_square)) {
    consumeToken();
    Expr *SizeExpr = parseExpression();
    if (!expectAndConsume(tok::r_square, "']'"))
      return false;
    if (!SizeExpr)
      return false;
    auto V = evaluateIntegerWithConstVars(SizeExpr);
    if (!V || *V <= 0) {
      diags().report(SizeExpr->getBeginLoc(),
                     diag::err_array_size_not_positive);
      return false;
    }
    Dims.push_back(static_cast<std::uint64_t>(*V));
  }
  for (auto It = Dims.rbegin(); It != Dims.rend(); ++It)
    Ty = Ctx.getArrayType(Ty, *It);
  return true;
}

// ===------------------------------------------------------------------=== //
// Declarations
// ===------------------------------------------------------------------=== //

TranslationUnitDecl *Parser::parseTranslationUnit() {
  std::vector<Decl *> Decls;
  while (!Tok.is(tok::eof)) {
    if (Decl *D = parseExternalDeclaration())
      Decls.push_back(D);
  }
  return Actions.ActOnEndOfTranslationUnit(std::move(Decls));
}

Decl *Parser::parseExternalDeclaration() {
  if (Tok.is(tok::semi)) {
    consumeToken();
    return nullptr;
  }
  if (Tok.is(tok::annot_pragma_openmp)) {
    // File-scope pragmas are not supported; skip with a diagnostic.
    diags().report(Tok.getLocation(), diag::err_unexpected_token)
        << "#pragma omp";
    skipToEndOfPragma();
    return nullptr;
  }

  QualType Ty = parseDeclSpecifiers();
  if (Ty.isNull()) {
    diags().report(Tok.getLocation(), diag::err_expected_type);
    consumeToken();
    return nullptr;
  }

  QualType DeclTy = Ty;
  std::string Name;
  SourceLocation NameLoc;
  if (!parseDeclarator(DeclTy, Name, NameLoc)) {
    skipUntil(tok::semi, /*ConsumeIt=*/true);
    return nullptr;
  }

  if (Tok.is(tok::l_paren))
    return parseFunctionDefinition(DeclTy, std::move(Name), NameLoc);

  // File-scope variable.
  Expr *Init = nullptr;
  if (tryConsume(tok::equal))
    Init = parseAssignmentExpression();
  VarDecl *VD =
      Actions.ActOnVarDecl(NameLoc, Name, DeclTy, Init, /*FileScope=*/true);
  expectAndConsume(tok::semi, "';'");
  return VD;
}

FunctionDecl *Parser::parseFunctionDefinition(QualType RetTy, std::string Name,
                                              SourceLocation NameLoc) {
  consumeToken(); // '('
  std::vector<ParmVarDecl *> Params;
  if (Tok.is(tok::kw_void) && peekAhead(1).is(tok::r_paren)) {
    consumeToken(); // void
  } else if (!Tok.is(tok::r_paren)) {
    while (true) {
      QualType PTy = parseDeclSpecifiers();
      if (PTy.isNull()) {
        diags().report(Tok.getLocation(), diag::err_expected_type);
        skipUntil(tok::r_paren, /*ConsumeIt=*/false);
        break;
      }
      std::string PName;
      SourceLocation PLoc;
      if (!parseDeclarator(PTy, PName, PLoc)) {
        skipUntil(tok::r_paren, /*ConsumeIt=*/false);
        break;
      }
      Params.push_back(Actions.ActOnParamDecl(PLoc, PName, PTy));
      if (!tryConsume(tok::comma))
        break;
    }
  }
  expectAndConsume(tok::r_paren, "')'");

  FunctionDecl *FD =
      Actions.ActOnFunctionDecl(NameLoc, Name, RetTy, std::move(Params));

  if (tryConsume(tok::semi))
    return FD; // prototype only

  if (!Tok.is(tok::l_brace)) {
    diags().report(Tok.getLocation(), diag::err_expected) << "'{' or ';'";
    skipUntil(tok::semi, /*ConsumeIt=*/true);
    return FD;
  }
  if (!FD) {
    // Redefinition error: still parse (and discard) the body for recovery.
    parseCompoundStatement();
    return nullptr;
  }
  Actions.ActOnStartFunctionBody(FD);
  Stmt *Body = parseCompoundStatement();
  Actions.ActOnFinishFunctionBody(FD, Body);
  return FD;
}

Stmt *Parser::parseDeclarationStatement() {
  SourceLocation Begin = Tok.getLocation();
  QualType Ty = parseDeclSpecifiers();
  if (Ty.isNull()) {
    diags().report(Tok.getLocation(), diag::err_expected_type);
    skipUntil(tok::semi, /*ConsumeIt=*/true);
    return nullptr;
  }
  std::vector<VarDecl *> Decls;
  while (true) {
    QualType DeclTy = Ty;
    std::string Name;
    SourceLocation NameLoc;
    if (!parseDeclarator(DeclTy, Name, NameLoc)) {
      skipUntil(tok::semi, /*ConsumeIt=*/true);
      return nullptr;
    }
    Expr *Init = nullptr;
    if (tryConsume(tok::equal))
      Init = parseAssignmentExpression();
    Decls.push_back(
        Actions.ActOnVarDecl(NameLoc, Name, DeclTy, Init, false));
    if (!tryConsume(tok::comma))
      break;
  }
  SourceLocation End = Tok.getLocation();
  expectAndConsume(tok::semi, "';'");
  return Actions.ActOnDeclStmt(SourceRange(Begin, End), std::move(Decls));
}

// ===------------------------------------------------------------------=== //
// Statements
// ===------------------------------------------------------------------=== //

Stmt *Parser::parseStatement() {
  switch (Tok.getKind()) {
  case tok::l_brace:
    return parseCompoundStatement();
  case tok::semi: {
    SourceLocation Loc = Tok.getLocation();
    consumeToken();
    return Actions.ActOnNullStmt(Loc);
  }
  case tok::kw_if:
    return parseIfStatement();
  case tok::kw_while:
    return parseWhileStatement();
  case tok::kw_do:
    return parseDoStatement();
  case tok::kw_for:
    return parseForStatement();
  case tok::kw_return:
    return parseReturnStatement();
  case tok::kw_break: {
    SourceLocation Loc = Tok.getLocation();
    consumeToken();
    expectAndConsume(tok::semi, "';'");
    return Actions.ActOnBreakStmt(Loc);
  }
  case tok::kw_continue: {
    SourceLocation Loc = Tok.getLocation();
    consumeToken();
    expectAndConsume(tok::semi, "';'");
    return Actions.ActOnContinueStmt(Loc);
  }
  case tok::annot_pragma_openmp:
    return parseOpenMPDeclarativeOrExecutableDirective();
  default:
    break;
  }

  if (isTypeSpecifierStart()) {
    // "size_t * p" could also parse as a multiplication; a declaration
    // needs a declarator after the specifiers, which parseDeclSpecifiers/
    // parseDeclarator resolve. For the built-in typedef identifiers we
    // require the next token to look like a declarator.
    if (Tok.is(tok::identifier)) {
      const Token &Next = peekAhead(1);
      if (!Next.is(tok::identifier) && !Next.is(tok::star))
        return [&]() -> Stmt * {
          Expr *E = parseExpression();
          expectAndConsume(tok::semi, "';'");
          return Actions.ActOnExprStmt(E);
        }();
    }
    return parseDeclarationStatement();
  }

  Expr *E = parseExpression();
  if (!E) {
    // Error recovery: skip to the end of the statement.
    skipUntil(tok::semi, /*ConsumeIt=*/true);
    return nullptr;
  }
  expectAndConsume(tok::semi, "';'");
  return Actions.ActOnExprStmt(E);
}

Stmt *Parser::parseCompoundStatement() {
  SourceLocation LBrace = Tok.getLocation();
  if (!expectAndConsume(tok::l_brace, "'{'"))
    return nullptr;
  Actions.pushScope();
  std::vector<Stmt *> Body;
  while (!Tok.is(tok::r_brace) && !Tok.is(tok::eof)) {
    if (Stmt *S = parseStatement())
      Body.push_back(S);
  }
  SourceLocation RBrace = Tok.getLocation();
  expectAndConsume(tok::r_brace, "'}'");
  Actions.popScope();
  return Actions.ActOnCompoundStmt(SourceRange(LBrace, RBrace),
                                   std::move(Body));
}

Stmt *Parser::parseIfStatement() {
  SourceLocation Begin = Tok.getLocation();
  consumeToken(); // if
  if (!expectAndConsume(tok::l_paren, "'('"))
    return nullptr;
  Expr *Cond = parseExpression();
  expectAndConsume(tok::r_paren, "')'");
  Stmt *Then = parseStatement();
  Stmt *Else = nullptr;
  if (tryConsume(tok::kw_else))
    Else = parseStatement();
  SourceLocation End =
      Else ? Else->getEndLoc() : (Then ? Then->getEndLoc() : Begin);
  return Actions.ActOnIfStmt(SourceRange(Begin, End), Cond, Then, Else);
}

Stmt *Parser::parseWhileStatement() {
  SourceLocation Begin = Tok.getLocation();
  consumeToken(); // while
  if (!expectAndConsume(tok::l_paren, "'('"))
    return nullptr;
  Expr *Cond = parseExpression();
  expectAndConsume(tok::r_paren, "')'");
  Actions.incrementLoopDepth();
  Stmt *Body = parseStatement();
  Actions.decrementLoopDepth();
  return Actions.ActOnWhileStmt(
      SourceRange(Begin, Body ? Body->getEndLoc() : Begin), Cond, Body);
}

Stmt *Parser::parseDoStatement() {
  SourceLocation Begin = Tok.getLocation();
  consumeToken(); // do
  Actions.incrementLoopDepth();
  Stmt *Body = parseStatement();
  Actions.decrementLoopDepth();
  if (!expectAndConsume(tok::kw_while, "'while'"))
    return nullptr;
  if (!expectAndConsume(tok::l_paren, "'('"))
    return nullptr;
  Expr *Cond = parseExpression();
  expectAndConsume(tok::r_paren, "')'");
  SourceLocation End = Tok.getLocation();
  expectAndConsume(tok::semi, "';'");
  return Actions.ActOnDoStmt(SourceRange(Begin, End), Body, Cond);
}

Stmt *Parser::parseForStatement() {
  SourceLocation Begin = Tok.getLocation();
  consumeToken(); // for
  if (!expectAndConsume(tok::l_paren, "'('"))
    return nullptr;
  Actions.pushScope(); // the init declaration lives in its own scope

  Stmt *Init = nullptr;
  if (Tok.is(tok::semi)) {
    consumeToken();
  } else if (isTypeSpecifierStart()) {
    Init = parseDeclarationStatement(); // consumes ';'
  } else {
    Expr *E = parseExpression();
    expectAndConsume(tok::semi, "';'");
    Init = Actions.ActOnExprStmt(E);
  }

  Expr *Cond = nullptr;
  if (!Tok.is(tok::semi))
    Cond = parseExpression();
  expectAndConsume(tok::semi, "';'");

  Expr *Inc = nullptr;
  if (!Tok.is(tok::r_paren))
    Inc = parseExpression();
  expectAndConsume(tok::r_paren, "')'");

  Actions.incrementLoopDepth();
  Stmt *Body = parseStatement();
  Actions.decrementLoopDepth();
  Actions.popScope();
  return Actions.ActOnForStmt(
      SourceRange(Begin, Body ? Body->getEndLoc() : Begin), Init, Cond, Inc,
      Body);
}

Stmt *Parser::parseReturnStatement() {
  SourceLocation Begin = Tok.getLocation();
  consumeToken(); // return
  Expr *Value = nullptr;
  if (!Tok.is(tok::semi))
    Value = parseExpression();
  SourceLocation End = Tok.getLocation();
  expectAndConsume(tok::semi, "';'");
  return Actions.ActOnReturnStmt(SourceRange(Begin, End), Value);
}

// ===------------------------------------------------------------------=== //
// Expressions
// ===------------------------------------------------------------------=== //

namespace {

/// Binary operator precedence (higher binds tighter); 0 = not a binary op.
unsigned getBinOpPrecedence(tok::TokenKind K) {
  switch (K) {
  case tok::pipepipe:
    return 1;
  case tok::ampamp:
    return 2;
  case tok::pipe:
    return 3;
  case tok::caret:
    return 4;
  case tok::amp:
    return 5;
  case tok::equalequal:
  case tok::exclaimequal:
    return 6;
  case tok::less:
  case tok::greater:
  case tok::lessequal:
  case tok::greaterequal:
    return 7;
  case tok::lessless:
  case tok::greatergreater:
    return 8;
  case tok::plus:
  case tok::minus:
    return 9;
  case tok::star:
  case tok::slash:
  case tok::percent:
    return 10;
  default:
    return 0;
  }
}

BinaryOperatorKind getBinOpKind(tok::TokenKind K) {
  switch (K) {
  case tok::pipepipe:
    return BinaryOperatorKind::LOr;
  case tok::ampamp:
    return BinaryOperatorKind::LAnd;
  case tok::pipe:
    return BinaryOperatorKind::Or;
  case tok::caret:
    return BinaryOperatorKind::Xor;
  case tok::amp:
    return BinaryOperatorKind::And;
  case tok::equalequal:
    return BinaryOperatorKind::EQ;
  case tok::exclaimequal:
    return BinaryOperatorKind::NE;
  case tok::less:
    return BinaryOperatorKind::LT;
  case tok::greater:
    return BinaryOperatorKind::GT;
  case tok::lessequal:
    return BinaryOperatorKind::LE;
  case tok::greaterequal:
    return BinaryOperatorKind::GE;
  case tok::lessless:
    return BinaryOperatorKind::Shl;
  case tok::greatergreater:
    return BinaryOperatorKind::Shr;
  case tok::plus:
    return BinaryOperatorKind::Add;
  case tok::minus:
    return BinaryOperatorKind::Sub;
  case tok::star:
    return BinaryOperatorKind::Mul;
  case tok::slash:
    return BinaryOperatorKind::Div;
  case tok::percent:
    return BinaryOperatorKind::Rem;
  default:
    return BinaryOperatorKind::Comma;
  }
}

std::optional<BinaryOperatorKind> getAssignOpKind(tok::TokenKind K) {
  switch (K) {
  case tok::equal:
    return BinaryOperatorKind::Assign;
  case tok::plusequal:
    return BinaryOperatorKind::AddAssign;
  case tok::minusequal:
    return BinaryOperatorKind::SubAssign;
  case tok::starequal:
    return BinaryOperatorKind::MulAssign;
  case tok::slashequal:
    return BinaryOperatorKind::DivAssign;
  case tok::percentequal:
    return BinaryOperatorKind::RemAssign;
  case tok::ampequal:
    return BinaryOperatorKind::AndAssign;
  case tok::pipeequal:
    return BinaryOperatorKind::OrAssign;
  case tok::caretequal:
    return BinaryOperatorKind::XorAssign;
  default:
    return std::nullopt;
  }
}

} // namespace

Expr *Parser::parseExpression() { return parseAssignmentExpression(); }

Expr *Parser::parseAssignmentExpression() {
  Expr *LHS = parseConditionalExpression();
  if (auto Opc = getAssignOpKind(Tok.getKind())) {
    SourceLocation OpLoc = Tok.getLocation();
    consumeToken();
    Expr *RHS = parseAssignmentExpression(); // right-associative
    return Actions.ActOnBinaryOp(OpLoc, *Opc, LHS, RHS);
  }
  return LHS;
}

Expr *Parser::parseConditionalExpression() {
  Expr *Cond = parseBinaryExpression(1);
  if (!Tok.is(tok::question))
    return Cond;
  SourceLocation QLoc = Tok.getLocation();
  consumeToken();
  Expr *TrueE = parseAssignmentExpression();
  if (!expectAndConsume(tok::colon, "':'"))
    return nullptr;
  Expr *FalseE = parseConditionalExpression();
  return Actions.ActOnConditionalOp(QLoc, Cond, TrueE, FalseE);
}

Expr *Parser::parseBinaryExpression(unsigned MinPrec) {
  Expr *LHS = parseUnaryExpression();
  while (true) {
    unsigned Prec = getBinOpPrecedence(Tok.getKind());
    if (Prec < MinPrec || Prec == 0)
      return LHS;
    BinaryOperatorKind Opc = getBinOpKind(Tok.getKind());
    SourceLocation OpLoc = Tok.getLocation();
    consumeToken();
    Expr *RHS = parseBinaryExpression(Prec + 1);
    LHS = Actions.ActOnBinaryOp(OpLoc, Opc, LHS, RHS);
    if (!LHS)
      return nullptr;
  }
}

Expr *Parser::parseUnaryExpression() {
  SourceLocation OpLoc = Tok.getLocation();
  switch (Tok.getKind()) {
  case tok::plus:
    consumeToken();
    return Actions.ActOnUnaryOp(OpLoc, UnaryOperatorKind::Plus,
                                parseUnaryExpression());
  case tok::minus:
    consumeToken();
    return Actions.ActOnUnaryOp(OpLoc, UnaryOperatorKind::Minus,
                                parseUnaryExpression());
  case tok::exclaim:
    consumeToken();
    return Actions.ActOnUnaryOp(OpLoc, UnaryOperatorKind::LNot,
                                parseUnaryExpression());
  case tok::tilde:
    consumeToken();
    return Actions.ActOnUnaryOp(OpLoc, UnaryOperatorKind::Not,
                                parseUnaryExpression());
  case tok::star:
    consumeToken();
    return Actions.ActOnUnaryOp(OpLoc, UnaryOperatorKind::Deref,
                                parseUnaryExpression());
  case tok::amp:
    consumeToken();
    return Actions.ActOnUnaryOp(OpLoc, UnaryOperatorKind::AddrOf,
                                parseUnaryExpression());
  case tok::plusplus:
    consumeToken();
    return Actions.ActOnUnaryOp(OpLoc, UnaryOperatorKind::PreInc,
                                parseUnaryExpression());
  case tok::minusminus:
    consumeToken();
    return Actions.ActOnUnaryOp(OpLoc, UnaryOperatorKind::PreDec,
                                parseUnaryExpression());
  default:
    return parsePostfixExpressionSuffix(parsePrimaryExpression());
  }
}

Expr *Parser::parsePostfixExpressionSuffix(Expr *LHS) {
  while (LHS) {
    switch (Tok.getKind()) {
    case tok::l_paren: {
      SourceLocation LParen = Tok.getLocation();
      consumeToken();
      std::vector<Expr *> Args;
      if (!Tok.is(tok::r_paren)) {
        while (true) {
          Args.push_back(parseAssignmentExpression());
          if (!tryConsume(tok::comma))
            break;
        }
      }
      SourceLocation RParen = Tok.getLocation();
      expectAndConsume(tok::r_paren, "')'");
      LHS = Actions.ActOnCallExpr(
          SourceRange(LHS->getBeginLoc(), RParen), LHS, std::move(Args));
      (void)LParen;
      break;
    }
    case tok::l_square: {
      consumeToken();
      Expr *Index = parseExpression();
      SourceLocation RSquare = Tok.getLocation();
      expectAndConsume(tok::r_square, "']'");
      LHS = Actions.ActOnArraySubscript(
          SourceRange(LHS->getBeginLoc(), RSquare), LHS, Index);
      break;
    }
    case tok::plusplus: {
      SourceLocation OpLoc = Tok.getLocation();
      consumeToken();
      LHS = Actions.ActOnUnaryOp(OpLoc, UnaryOperatorKind::PostInc, LHS);
      break;
    }
    case tok::minusminus: {
      SourceLocation OpLoc = Tok.getLocation();
      consumeToken();
      LHS = Actions.ActOnUnaryOp(OpLoc, UnaryOperatorKind::PostDec, LHS);
      break;
    }
    default:
      return LHS;
    }
  }
  return LHS;
}

Expr *Parser::parsePrimaryExpression() {
  switch (Tok.getKind()) {
  case tok::numeric_constant: {
    Token Lit = Tok;
    consumeToken();
    std::string_view Text = Lit.getText();
    bool IsFloating =
        Text.find('.') != std::string_view::npos ||
        (Text.find_first_of("eE") != std::string_view::npos &&
         !(Text.size() > 1 && Text[0] == '0' &&
           (Text[1] == 'x' || Text[1] == 'X'))) ||
        Text.back() == 'f' || Text.back() == 'F';
    return IsFloating ? Actions.ActOnFloatingLiteral(Lit)
                      : Actions.ActOnIntegerLiteral(Lit);
  }
  case tok::kw_true: {
    SourceLocation Loc = Tok.getLocation();
    consumeToken();
    return Actions.ActOnBoolLiteral(Loc, true);
  }
  case tok::kw_false: {
    SourceLocation Loc = Tok.getLocation();
    consumeToken();
    return Actions.ActOnBoolLiteral(Loc, false);
  }
  case tok::identifier: {
    SourceLocation Loc = Tok.getLocation();
    std::string Name(Tok.getText());
    consumeToken();
    return Actions.ActOnIdExpression(Loc, Name);
  }
  case tok::l_paren: {
    SourceLocation LParen = Tok.getLocation();
    consumeToken();
    Expr *Sub = parseExpression();
    SourceLocation RParen = Tok.getLocation();
    if (!expectAndConsume(tok::r_paren, "')'"))
      return nullptr;
    return Actions.ActOnParenExpr(SourceRange(LParen, RParen), Sub);
  }
  default:
    diags().report(Tok.getLocation(), diag::err_expected_expression);
    consumeToken();
    return nullptr;
  }
}

} // namespace mcc
