//===--- Parser.h - MiniC recursive-descent parser --------------*- C++ -*-===//
//
// The Parser layer of the paper's Fig. 1: pulls preprocessed tokens from
// the Preprocessor and pushes syntactic elements to Sema, which builds the
// AST. OpenMP directives arrive as annot_pragma_openmp token sequences
// (exactly like Clang) and are parsed by the ParseOpenMP.cpp part.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_PARSE_PARSER_H
#define MCC_PARSE_PARSER_H

#include "lex/Preprocessor.h"
#include "sema/Sema.h"

#include <deque>

namespace mcc {

class Parser {
public:
  Parser(Preprocessor &PP, Sema &Actions);

  /// Parses the whole translation unit. Returns the TU even if errors were
  /// reported (check the DiagnosticsEngine for error counts).
  TranslationUnitDecl *parseTranslationUnit();

private:
  // --- Token stream management ---
  void consumeToken();
  const Token &peekAhead(unsigned N); // N=1: next token after Tok
  bool tryConsume(tok::TokenKind K) {
    if (Tok.is(K)) {
      consumeToken();
      return true;
    }
    return false;
  }
  /// Consumes \p K or diagnoses "expected %0".
  bool expectAndConsume(tok::TokenKind K, const char *What);
  void skipUntil(tok::TokenKind K, bool ConsumeIt);
  void skipToEndOfPragma();

  DiagnosticsEngine &diags() { return Actions.getDiagnostics(); }

  // --- Types ---
  bool isTypeSpecifierStart() const;
  /// Parses decl-specifiers (const + builtin type keywords). Returns a
  /// null QualType on error.
  QualType parseDeclSpecifiers();
  /// Parses "*"* name "[N]"*; fills Name/NameLoc and derives the full type.
  bool parseDeclarator(QualType &Ty, std::string &Name,
                       SourceLocation &NameLoc);

  // --- Declarations ---
  Decl *parseExternalDeclaration();
  FunctionDecl *parseFunctionDefinition(QualType RetTy, std::string Name,
                                        SourceLocation NameLoc);
  Stmt *parseDeclarationStatement();

  // --- Statements ---
  Stmt *parseStatement();
  Stmt *parseCompoundStatement();
  Stmt *parseIfStatement();
  Stmt *parseWhileStatement();
  Stmt *parseDoStatement();
  Stmt *parseForStatement();
  Stmt *parseReturnStatement();

  // --- Expressions ---
  Expr *parseExpression(); // assignment-expression (no comma operator)
  Expr *parseAssignmentExpression();
  Expr *parseConditionalExpression();
  Expr *parseBinaryExpression(unsigned MinPrec);
  Expr *parseUnaryExpression();
  Expr *parsePostfixExpressionSuffix(Expr *LHS);
  Expr *parsePrimaryExpression();

  // --- OpenMP (ParseOpenMP.cpp) ---
  Stmt *parseOpenMPDeclarativeOrExecutableDirective();
  OMPClause *parseOpenMPClause(OpenMPDirectiveKind DKind);
  bool parseOpenMPVarList(std::vector<Expr *> &Vars);

  Preprocessor &PP;
  Sema &Actions;
  Token Tok;
  std::deque<Token> LookAhead;
};

} // namespace mcc

#endif // MCC_PARSE_PARSER_H
