//===--- ParseOpenMP.cpp - Parsing of OpenMP directives and clauses --------===//
//
// Parses the annot_pragma_openmp ... annot_pragma_openmp_end token
// sequences the preprocessor injects. Stacked pragmas (the free
// composability that OpenMP 5.1 loop transformations introduced, Section
// 1.1 of the paper) fall out of the grammar naturally: the statement
// associated with a directive may itself start with a pragma, and
// directives apply in reverse order of their appearance.
//
//===----------------------------------------------------------------------===//
#include "parse/Parser.h"

namespace mcc {

Stmt *Parser::parseOpenMPDeclarativeOrExecutableDirective() {
  SourceLocation PragmaLoc = Tok.getLocation();
  consumeToken(); // annot_pragma_openmp

  // Directive name: possibly multiple tokens ("parallel for", "for simd").
  // Note that "for" arrives as the keyword token, not an identifier.
  auto DirectiveWord = [this]() -> std::string_view {
    if (Tok.is(tok::identifier))
      return Tok.getText();
    if (Tok.is(tok::kw_for))
      return "for";
    return {};
  };

  std::string_view First = DirectiveWord();
  if (First.empty()) {
    diags().report(Tok.getLocation(), diag::err_omp_unknown_directive)
        << std::string(Tok.getText());
    skipToEndOfPragma();
    return nullptr;
  }

  OpenMPDirectiveKind DKind = OpenMPDirectiveKind::Unknown;
  if (First == "parallel") {
    consumeToken();
    if (DirectiveWord() == "for") {
      consumeToken();
      DKind = OpenMPDirectiveKind::ParallelFor;
    } else {
      DKind = OpenMPDirectiveKind::Parallel;
    }
  } else if (First == "for") {
    consumeToken();
    if (DirectiveWord() == "simd") {
      consumeToken();
      DKind = OpenMPDirectiveKind::ForSimd;
    } else {
      DKind = OpenMPDirectiveKind::For;
    }
  } else {
    DKind = parseOpenMPDirectiveKind(First);
    if (DKind == OpenMPDirectiveKind::Unknown) {
      diags().report(Tok.getLocation(), diag::err_omp_unknown_directive)
          << std::string(First);
      skipToEndOfPragma();
      return nullptr;
    }
    consumeToken();
  }

  // Clauses.
  std::vector<OMPClause *> Clauses;
  bool ClauseError = false;
  while (!Tok.is(tok::annot_pragma_openmp_end) && !Tok.is(tok::eof)) {
    tryConsume(tok::comma); // clauses may be comma-separated
    if (Tok.is(tok::annot_pragma_openmp_end))
      break;
    OMPClause *C = parseOpenMPClause(DKind);
    if (!C)
      ClauseError = true;
    Clauses.push_back(C);
  }
  if (Tok.is(tok::annot_pragma_openmp_end))
    consumeToken();

  // Associated statement (standalone directives have none).
  Stmt *AStmt = nullptr;
  bool IsStandalone = DKind == OpenMPDirectiveKind::Barrier;
  if (!IsStandalone) {
    Actions.pushScope();
    AStmt = parseStatement();
    Actions.popScope();
    if (!AStmt)
      return nullptr;
  }

  if (ClauseError)
    return nullptr;
  return Actions.ActOnOpenMPExecutableDirective(
      DKind, std::move(Clauses), AStmt,
      SourceRange(PragmaLoc, AStmt ? AStmt->getEndLoc() : PragmaLoc));
}

bool Parser::parseOpenMPVarList(std::vector<Expr *> &Vars) {
  if (!expectAndConsume(tok::l_paren, "'('"))
    return false;
  while (true) {
    if (!Tok.is(tok::identifier)) {
      diags().report(Tok.getLocation(), diag::err_expected_identifier);
      skipToEndOfPragma();
      return false;
    }
    Vars.push_back(
        Actions.ActOnIdExpression(Tok.getLocation(), Tok.getText()));
    consumeToken();
    if (!tryConsume(tok::comma))
      break;
  }
  return expectAndConsume(tok::r_paren, "')'");
}

OMPClause *Parser::parseOpenMPClause(OpenMPDirectiveKind DKind) {
  if (!Tok.is(tok::identifier)) {
    diags().report(Tok.getLocation(), diag::err_omp_unknown_clause)
        << std::string(Tok.getText())
        << std::string(getOpenMPDirectiveName(DKind));
    skipToEndOfPragma();
    return nullptr;
  }

  SourceLocation ClauseLoc = Tok.getLocation();
  std::string Name(Tok.getText());
  OpenMPClauseKind CKind = parseOpenMPClauseKind(Name);
  if (CKind == OpenMPClauseKind::Unknown ||
      !isAllowedClauseForDirective(DKind, CKind)) {
    diags().report(ClauseLoc, diag::err_omp_unknown_clause)
        << Name << std::string(getOpenMPDirectiveName(DKind));
    skipToEndOfPragma();
    return nullptr;
  }
  consumeToken();

  auto ParseParenExpr = [this](Expr *&Out) -> bool {
    if (!expectAndConsume(tok::l_paren, "'('"))
      return false;
    Out = parseAssignmentExpression();
    return expectAndConsume(tok::r_paren, "')'") && Out;
  };

  SourceLocation EndLoc = Tok.getLocation();
  switch (CKind) {
  case OpenMPClauseKind::NumThreads: {
    Expr *E = nullptr;
    if (!ParseParenExpr(E))
      return nullptr;
    return Actions.ActOnOpenMPNumThreadsClause(SourceRange(ClauseLoc, EndLoc),
                                               E);
  }
  case OpenMPClauseKind::Collapse: {
    Expr *E = nullptr;
    if (!ParseParenExpr(E))
      return nullptr;
    return Actions.ActOnOpenMPCollapseClause(SourceRange(ClauseLoc, EndLoc),
                                             E);
  }
  case OpenMPClauseKind::Partial: {
    // The argument is optional: "partial" or "partial(k)".
    Expr *E = nullptr;
    if (Tok.is(tok::l_paren)) {
      if (!ParseParenExpr(E))
        return nullptr;
    }
    return Actions.ActOnOpenMPPartialClause(SourceRange(ClauseLoc, EndLoc),
                                            E);
  }
  case OpenMPClauseKind::Full:
    return Actions.ActOnOpenMPFullClause(SourceRange(ClauseLoc, EndLoc));
  case OpenMPClauseKind::NoWait:
    return Actions.ActOnOpenMPNoWaitClause(SourceRange(ClauseLoc, EndLoc));
  case OpenMPClauseKind::Sizes: {
    if (!expectAndConsume(tok::l_paren, "'('"))
      return nullptr;
    std::vector<Expr *> Sizes;
    while (true) {
      Expr *E = parseAssignmentExpression();
      if (!E) {
        skipToEndOfPragma();
        return nullptr;
      }
      Sizes.push_back(E);
      if (!tryConsume(tok::comma))
        break;
    }
    if (!expectAndConsume(tok::r_paren, "')'"))
      return nullptr;
    return Actions.ActOnOpenMPSizesClause(SourceRange(ClauseLoc, EndLoc),
                                          std::move(Sizes));
  }
  case OpenMPClauseKind::Permutation: {
    if (!expectAndConsume(tok::l_paren, "'('"))
      return nullptr;
    std::vector<Expr *> Args;
    while (true) {
      Expr *E = parseAssignmentExpression();
      if (!E) {
        skipToEndOfPragma();
        return nullptr;
      }
      Args.push_back(E);
      if (!tryConsume(tok::comma))
        break;
    }
    if (!expectAndConsume(tok::r_paren, "')'"))
      return nullptr;
    return Actions.ActOnOpenMPPermutationClause(SourceRange(ClauseLoc, EndLoc),
                                                std::move(Args));
  }
  case OpenMPClauseKind::LoopRange: {
    if (!expectAndConsume(tok::l_paren, "'('"))
      return nullptr;
    std::vector<Expr *> Args;
    while (true) {
      Expr *E = parseAssignmentExpression();
      if (!E) {
        skipToEndOfPragma();
        return nullptr;
      }
      Args.push_back(E);
      if (!tryConsume(tok::comma))
        break;
    }
    if (!expectAndConsume(tok::r_paren, "')'"))
      return nullptr;
    return Actions.ActOnOpenMPLoopRangeClause(SourceRange(ClauseLoc, EndLoc),
                                              std::move(Args));
  }
  case OpenMPClauseKind::Schedule: {
    if (!expectAndConsume(tok::l_paren, "'('"))
      return nullptr;
    // "static" is a keyword token; the other schedule kinds are plain
    // identifiers.
    if (!Tok.is(tok::identifier) && !Tok.is(tok::kw_static)) {
      diags().report(Tok.getLocation(), diag::err_omp_invalid_schedule_kind)
          << std::string(Tok.getText());
      skipToEndOfPragma();
      return nullptr;
    }
    OpenMPScheduleKind SKind = parseOpenMPScheduleKind(Tok.getText());
    if (SKind == OpenMPScheduleKind::Unknown) {
      diags().report(Tok.getLocation(), diag::err_omp_invalid_schedule_kind)
          << std::string(Tok.getText());
      skipToEndOfPragma();
      return nullptr;
    }
    consumeToken();
    Expr *Chunk = nullptr;
    if (tryConsume(tok::comma)) {
      Chunk = parseAssignmentExpression();
      if (!Chunk) {
        skipToEndOfPragma();
        return nullptr;
      }
    }
    if (!expectAndConsume(tok::r_paren, "')'"))
      return nullptr;
    return Actions.ActOnOpenMPScheduleClause(SourceRange(ClauseLoc, EndLoc),
                                             SKind, Chunk);
  }
  case OpenMPClauseKind::Private:
  case OpenMPClauseKind::FirstPrivate:
  case OpenMPClauseKind::Shared: {
    std::vector<Expr *> Vars;
    if (!parseOpenMPVarList(Vars))
      return nullptr;
    return Actions.ActOnOpenMPVarListClause(CKind,
                                            SourceRange(ClauseLoc, EndLoc),
                                            std::move(Vars),
                                            OpenMPReductionOp::Add);
  }
  case OpenMPClauseKind::Reduction: {
    if (!expectAndConsume(tok::l_paren, "'('"))
      return nullptr;
    OpenMPReductionOp Op;
    if (Tok.is(tok::plus))
      Op = OpenMPReductionOp::Add;
    else if (Tok.is(tok::star))
      Op = OpenMPReductionOp::Mul;
    else if (Tok.is(tok::amp))
      Op = OpenMPReductionOp::BitAnd;
    else if (Tok.is(tok::pipe))
      Op = OpenMPReductionOp::BitOr;
    else if (Tok.is(tok::caret))
      Op = OpenMPReductionOp::BitXor;
    else if (Tok.is(tok::ampamp))
      Op = OpenMPReductionOp::LogAnd;
    else if (Tok.is(tok::pipepipe))
      Op = OpenMPReductionOp::LogOr;
    else if (Tok.isIdentifierNamed("min"))
      Op = OpenMPReductionOp::Min;
    else if (Tok.isIdentifierNamed("max"))
      Op = OpenMPReductionOp::Max;
    else {
      diags().report(Tok.getLocation(), diag::err_unexpected_token)
          << std::string(Tok.getText());
      skipToEndOfPragma();
      return nullptr;
    }
    consumeToken();
    if (!expectAndConsume(tok::colon, "':'"))
      return nullptr;
    std::vector<Expr *> Vars;
    while (true) {
      if (!Tok.is(tok::identifier)) {
        diags().report(Tok.getLocation(), diag::err_expected_identifier);
        skipToEndOfPragma();
        return nullptr;
      }
      Vars.push_back(
          Actions.ActOnIdExpression(Tok.getLocation(), Tok.getText()));
      consumeToken();
      if (!tryConsume(tok::comma))
        break;
    }
    if (!expectAndConsume(tok::r_paren, "')'"))
      return nullptr;
    return Actions.ActOnOpenMPVarListClause(
        CKind, SourceRange(ClauseLoc, EndLoc), std::move(Vars), Op);
  }
  default:
    diags().report(ClauseLoc, diag::err_omp_unknown_clause)
        << Name << std::string(getOpenMPDirectiveName(DKind));
    skipToEndOfPragma();
    return nullptr;
  }
}

} // namespace mcc
