//===--- DependenceAnalysis.cpp - Affine loop data-dependence analysis -----===//
//
// Implementation notes.
//
// Every induction variable is normalized to its logical iteration number:
// iv_k = lb_k + step_k * t_k with t_k in [0, N_k). A subscript that is
// affine in the IVs, sum(c_k * iv_k) + const + symbols, then becomes
// sum(a_k * t_k) + ... with a_k = c_k * step_k. When both accesses of a
// pair agree on every c_k and on the symbolic terms, the lower bounds and
// symbols cancel out of the dependence equation
//
//     sum(a_k * delta_k) = const_src - const_sink,  delta_k = t_sink - t_src
//
// so nests with symbolic bounds stay analyzable. For each of the 3^depth
// direction combinations {<,=,>} the equation is tested per subscript
// dimension with a GCD divisibility test and a Banerjee-style interval
// test; a combination all of whose dimensions pin the same constant
// solution yields an exact distance (strong SIV). Pairs whose coefficients
// differ, non-affine subscripts, escaped arrays and non-reduction scalar
// writes degrade to a conservative all-'*' dependence instead.
//
//===----------------------------------------------------------------------===//
#include "analysis/DependenceAnalysis.h"

#include "analysis/Analysis.h"
#include "ast/ExprConstant.h"

#include <algorithm>
#include <numeric>
#include <set>

namespace mcc::analysis {

std::string_view getDepKindName(DepKind K) {
  switch (K) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  }
  return "?";
}

unsigned Dependence::carrierLevel() const {
  for (unsigned I = 0; I < Dirs.size(); ++I)
    if (Dirs[I] != DepDir::Eq)
      return I;
  return static_cast<unsigned>(Dirs.size());
}

bool Dependence::isLoopIndependent() const {
  return carrierLevel() == Dirs.size();
}

bool Dependence::isExact() const {
  for (const auto &D : Dist)
    if (!D)
      return false;
  return true;
}

std::string Dependence::describe() const {
  std::string S(getDepKindName(Kind));
  S += " dependence on '";
  S += Base ? std::string(Base->getName()) : std::string("<unknown>");
  S += "', direction (";
  for (unsigned I = 0; I < Dirs.size(); ++I) {
    if (I)
      S += ',';
    S += static_cast<char>(Dirs[I]);
  }
  S += ')';
  bool AnyDist = false;
  for (const auto &D : Dist)
    AnyDist |= D.has_value();
  if (AnyDist && !isLoopIndependent()) {
    S += ", distance (";
    for (unsigned I = 0; I < Dist.size(); ++I) {
      if (I)
        S += ',';
      S += Dist[I] ? std::to_string(*Dist[I]) : std::string("?");
    }
    S += ')';
  }
  if (!Detail.empty()) {
    S += " [";
    S += Detail;
    S += ']';
  }
  return S;
}

// Helpers below intentionally have namespace (not anonymous) linkage:
// DependenceBuilder is a friend of DependenceInfo and holds members of
// these types, and GCC's -Wsubobject-linkage objects to anonymous-namespace
// members in an externally visible class.
namespace depdetail {

bool refersTo(Expr *E, const VarDecl *V) {
  if (!E)
    return false;
  if (auto *DRE = stmt_dyn_cast<DeclRefExpr>(E->ignoreParenImpCasts()))
    if (DRE->getDecl() == V)
      return true;
  for (Stmt *C : E->children())
    if (auto *CE = stmt_dyn_cast<Expr>(C))
      if (refersTo(CE, V))
        return true;
  return false;
}

// --- Affine subscript form: Const + sum(Coef[V] * V) ---------------------

struct AffineExpr {
  std::int64_t Const = 0;
  std::map<const VarDecl *, std::int64_t> Coef;
};

/// Accumulates Scale * E into Out. False when E is not affine.
///
/// \p LocalInits maps single-assignment body-local variables to their
/// initializer: a reference to such a variable is forward-substituted by
/// the initializer instead of appearing as a symbolic term. This is what
/// keeps the shadow ASTs of preceding transformations (tile/unroll
/// materialize the user IV as `T i = lb + iv*step;`) analyzable instead of
/// degrading to a conservative "varies inside the nest" dependence.
bool addAffine(Expr *E, std::int64_t Scale, AffineExpr &Out,
               const std::map<const VarDecl *, Expr *> *LocalInits = nullptr,
               unsigned Depth = 0) {
  if (auto C = evaluateIntegerWithConstVars(E)) {
    Out.Const += Scale * *C;
    return true;
  }
  E = E->ignoreParenImpCasts();
  if (auto *DRE = stmt_dyn_cast<DeclRefExpr>(E)) {
    if (auto *V = decl_dyn_cast<VarDecl>(DRE->getDecl())) {
      if (LocalInits && Depth < 8) {
        auto It = LocalInits->find(V);
        if (It != LocalInits->end())
          return addAffine(It->second, Scale, Out, LocalInits, Depth + 1);
      }
      Out.Coef[V] += Scale;
      return true;
    }
    return false;
  }
  if (auto *UO = stmt_dyn_cast<UnaryOperator>(E)) {
    if (UO->getOpcode() == UnaryOperatorKind::Minus)
      return addAffine(UO->getSubExpr(), -Scale, Out, LocalInits, Depth);
    if (UO->getOpcode() == UnaryOperatorKind::Plus)
      return addAffine(UO->getSubExpr(), Scale, Out, LocalInits, Depth);
    return false;
  }
  if (auto *BO = stmt_dyn_cast<BinaryOperator>(E)) {
    switch (BO->getOpcode()) {
    case BinaryOperatorKind::Add:
      return addAffine(BO->getLHS(), Scale, Out, LocalInits, Depth) &&
             addAffine(BO->getRHS(), Scale, Out, LocalInits, Depth);
    case BinaryOperatorKind::Sub:
      return addAffine(BO->getLHS(), Scale, Out, LocalInits, Depth) &&
             addAffine(BO->getRHS(), -Scale, Out, LocalInits, Depth);
    case BinaryOperatorKind::Mul:
      if (auto C = evaluateIntegerWithConstVars(BO->getLHS()))
        return addAffine(BO->getRHS(), Scale * *C, Out, LocalInits, Depth);
      if (auto C = evaluateIntegerWithConstVars(BO->getRHS()))
        return addAffine(BO->getLHS(), Scale * *C, Out, LocalInits, Depth);
      return false;
    default:
      return false;
    }
  }
  return false;
}

// --- Canonical-loop shape extraction -------------------------------------

std::optional<std::int64_t> stepOf(const ForStmt *For, const VarDecl *IV) {
  Expr *Inc = For->getInc();
  if (!Inc)
    return std::nullopt;
  Expr *E = Inc->ignoreParenImpCasts();
  auto IsIV = [IV](Expr *X) {
    auto *DRE = stmt_dyn_cast<DeclRefExpr>(X->ignoreParenImpCasts());
    return DRE && DRE->getDecl() == IV;
  };
  if (auto *UO = stmt_dyn_cast<UnaryOperator>(E)) {
    if (UO->isIncrementDecrementOp() && IsIV(UO->getSubExpr()))
      return UO->isIncrementOp() ? 1 : -1;
    return std::nullopt;
  }
  auto *BO = stmt_dyn_cast<BinaryOperator>(E);
  if (!BO || !IsIV(BO->getLHS()))
    return std::nullopt;
  switch (BO->getOpcode()) {
  case BinaryOperatorKind::AddAssign:
    if (auto C = evaluateIntegerWithConstVars(BO->getRHS()))
      return *C;
    return std::nullopt;
  case BinaryOperatorKind::SubAssign:
    if (auto C = evaluateIntegerWithConstVars(BO->getRHS()))
      return -*C;
    return std::nullopt;
  case BinaryOperatorKind::Assign: {
    auto *RHS = stmt_dyn_cast<BinaryOperator>(BO->getRHS()->ignoreParenImpCasts());
    if (!RHS || !RHS->isAdditiveOp())
      return std::nullopt;
    bool Sub = RHS->getOpcode() == BinaryOperatorKind::Sub;
    Expr *Amount = nullptr;
    if (IsIV(RHS->getLHS()))
      Amount = RHS->getRHS();
    else if (!Sub && IsIV(RHS->getRHS()))
      Amount = RHS->getLHS();
    if (!Amount)
      return std::nullopt;
    if (auto C = evaluateIntegerWithConstVars(Amount))
      return Sub ? -*C : *C;
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
}

std::optional<std::int64_t> lowerBoundOf(const ForStmt *For) {
  Stmt *Init = For->getInit();
  if (!Init)
    return std::nullopt;
  if (auto *DS = stmt_dyn_cast<DeclStmt>(Init)) {
    if (DS->isSingleDecl() && DS->getSingleDecl()->hasInit())
      return evaluateIntegerWithConstVars(DS->getSingleDecl()->getInit());
    return std::nullopt;
  }
  if (auto *BO = stmt_dyn_cast<BinaryOperator>(Init))
    if (BO->getOpcode() == BinaryOperatorKind::Assign)
      return evaluateIntegerWithConstVars(BO->getRHS());
  return std::nullopt;
}

std::optional<std::int64_t> tripCountOf(const ForStmt *For, const VarDecl *IV,
                                        std::int64_t Step,
                                        std::optional<std::int64_t> Lb) {
  if (!Lb)
    return std::nullopt;
  auto *BO = stmt_dyn_cast<BinaryOperator>(
      For->getCond() ? For->getCond()->ignoreParenImpCasts() : nullptr);
  if (!BO || !BO->isComparisonOp())
    return std::nullopt;
  auto IsIV = [IV](Expr *X) {
    auto *DRE = stmt_dyn_cast<DeclRefExpr>(X->ignoreParenImpCasts());
    return DRE && DRE->getDecl() == IV;
  };
  BinaryOperatorKind Op = BO->getOpcode();
  Expr *Bound = nullptr;
  if (IsIV(BO->getLHS())) {
    Bound = BO->getRHS();
  } else if (IsIV(BO->getRHS())) {
    Bound = BO->getLHS();
    switch (Op) { // mirror: "ub > iv" is "iv < ub"
    case BinaryOperatorKind::LT:
      Op = BinaryOperatorKind::GT;
      break;
    case BinaryOperatorKind::GT:
      Op = BinaryOperatorKind::LT;
      break;
    case BinaryOperatorKind::LE:
      Op = BinaryOperatorKind::GE;
      break;
    case BinaryOperatorKind::GE:
      Op = BinaryOperatorKind::LE;
      break;
    default:
      break;
    }
  } else {
    return std::nullopt;
  }
  auto Ub = evaluateIntegerWithConstVars(Bound);
  if (!Ub)
    return std::nullopt;
  auto CeilDiv = [](std::int64_t A, std::int64_t B) { // A,B > 0
    return (A + B - 1) / B;
  };
  switch (Op) {
  case BinaryOperatorKind::LT:
    if (Step > 0)
      return *Ub > *Lb ? CeilDiv(*Ub - *Lb, Step) : 0;
    return std::nullopt;
  case BinaryOperatorKind::LE:
    if (Step > 0)
      return *Ub >= *Lb ? (*Ub - *Lb) / Step + 1 : 0;
    return std::nullopt;
  case BinaryOperatorKind::GT:
    if (Step < 0)
      return *Lb > *Ub ? CeilDiv(*Lb - *Ub, -Step) : 0;
    return std::nullopt;
  case BinaryOperatorKind::GE:
    if (Step < 0)
      return *Lb >= *Ub ? (*Lb - *Ub) / (-Step) + 1 : 0;
    return std::nullopt;
  case BinaryOperatorKind::NE: {
    if (Step != 1 && Step != -1)
      return std::nullopt;
    std::int64_t Q = (*Ub - *Lb) / Step;
    return Q >= 0 ? std::optional<std::int64_t>(Q) : std::nullopt;
  }
  default:
    return std::nullopt;
  }
}

// --- The builder ----------------------------------------------------------

/// An array access with affine subscripts, in collection (execution
/// pre-order) order.
struct Access {
  const VarDecl *Base = nullptr;
  std::vector<AffineExpr> Subs; ///< outermost dimension first
  bool IsWrite = false;
  SourceLocation Loc;
};

/// Saturating helpers for the Banerjee interval test. A missing optional
/// bound stands for the corresponding infinity.
using MaybeInt = std::optional<std::int64_t>;

std::int64_t mulSat(std::int64_t A, std::int64_t B) {
  __int128 P = static_cast<__int128>(A) * B;
  if (P > INT64_MAX)
    return INT64_MAX;
  if (P < INT64_MIN)
    return INT64_MIN;
  return static_cast<std::int64_t>(P);
}

std::int64_t addSat(std::int64_t A, std::int64_t B) {
  __int128 S = static_cast<__int128>(A) + B;
  if (S > INT64_MAX)
    return INT64_MAX;
  if (S < INT64_MIN)
    return INT64_MIN;
  return static_cast<std::int64_t>(S);
}

} // namespace depdetail

using namespace depdetail;

class DependenceBuilder {
public:
  DependenceInfo build(Stmt *Root, unsigned MinDepth);

private:
  DependenceInfo R;
  std::vector<const VarDecl *> NestIVs; // indexed by level
  std::set<const VarDecl *> NotInvariant;
  std::set<const VarDecl *> LocalDecls;
  /// Body-local vars declared with an initializer and never reassigned:
  /// subscript references are forward-substituted by the initializer.
  std::map<const VarDecl *, Expr *> LocalInits;
  std::set<const VarDecl *> LocalReassigned;
  std::set<const VarDecl *> EscapedBases;
  std::vector<Access> Accesses;
  bool UnattributedWrite = false;
  SourceLocation UnattributedLoc;

  struct ScalarState {
    bool Written = false;
    bool ReductionOk = true;
    std::optional<BinaryOperatorKind> ReductionOp;
    unsigned ExpectedRefs = 0;
    SourceLocation FirstWriteLoc;
  };
  std::map<const VarDecl *, ScalarState> Scalars;

  [[nodiscard]] int ivLevel(const VarDecl *V) const {
    for (unsigned I = 0; I < NestIVs.size(); ++I)
      if (NestIVs[I] == V)
        return static_cast<int>(I);
    return -1;
  }

  bool parseNest(Stmt *Root, unsigned MinDepth);
  void scanModifications(Stmt *S);
  void collect(Stmt *S);
  void handleAssign(BinaryOperator *BO);
  void recordAccess(ArraySubscriptExpr *ASE, bool IsWrite,
                    bool WalkIndices = true);
  void noteScalarWrite(const VarDecl *V, BinaryOperator *BO,
                       SourceLocation Loc);
  void countRefs(Stmt *S, std::map<const VarDecl *, unsigned> &Counts);
  void addConservativeDep(const VarDecl *Base, SourceLocation Loc,
                          std::string Detail);
  void finalizeScalars(Stmt *Body);
  void pairAccesses();
  void testPair(const Access &A, const Access &B, bool SelfPair);
  void buildSummaries();
};

DependenceInfo DependenceBuilder::build(Stmt *Root, unsigned MinDepth) {
  if (!parseNest(Root, MinDepth))
    return std::move(R);
  R.Analyzable = true;

  Stmt *Body = R.Loops.back().Loop->getBody();
  scanModifications(Body);
  for (const VarDecl *V : LocalReassigned)
    LocalInits.erase(V);
  collect(Body);
  finalizeScalars(Body);
  pairAccesses();
  buildSummaries();
  return std::move(R);
}

bool DependenceBuilder::parseNest(Stmt *Root, unsigned MinDepth) {
  // Extending the nest past MinDepth sharpens the vectors (an inner IV in
  // a subscript stays affine instead of degrading to '*'), but the combo
  // enumeration is 3^depth, so stop at a small cap.
  const unsigned MaxDepth = std::max(MinDepth, 4u);
  Stmt *S = Root;
  for (unsigned D = 0; D < MaxDepth; ++D) {
    S = skipLoopWrappers(S);
    auto *For = stmt_dyn_cast<ForStmt>(S);
    auto Fail = [&](const char *Why) {
      if (R.Loops.size() < MinDepth) {
        R.FailureReason = Why;
        return false;
      }
      return true; // deep enough; stop extending
    };
    if (!For)
      return Fail("the associated statement is not a perfectly nested for "
                  "loop at the requested depth");
    NestLoop L;
    L.Loop = For;
    L.IV = getLoopIterationVar(For);
    if (!L.IV)
      return Fail("a loop of the nest has no recognizable induction "
                  "variable");
    if (ivLevel(L.IV) >= 0)
      return Fail("two loops of the nest share an induction variable");
    auto Step = stepOf(For, L.IV);
    if (!Step || *Step == 0)
      return Fail("a loop of the nest does not advance its induction "
                  "variable by a nonzero constant");
    L.Step = *Step;
    L.LowerBound = lowerBoundOf(For);
    L.TripCount = tripCountOf(For, L.IV, L.Step, L.LowerBound);
    R.Loops.push_back(L);
    NestIVs.push_back(L.IV);
    S = For->getBody();
  }
  return R.Loops.size() >= MinDepth;
}

/// Pre-pass: which variables are written (or locally declared) anywhere in
/// the nest body? Those cannot appear in an affine subscript as invariant
/// symbols.
void DependenceBuilder::scanModifications(Stmt *S) {
  if (!S)
    return;
  if (auto *DS = stmt_dyn_cast<DeclStmt>(S)) {
    for (VarDecl *V : DS->decls()) {
      LocalDecls.insert(V);
      NotInvariant.insert(V);
      if (V->hasInit() && !LocalInits.count(V))
        LocalInits[V] = V->getInit();
      else
        LocalReassigned.insert(V);
    }
  } else if (auto *BO = stmt_dyn_cast<BinaryOperator>(S)) {
    if (BO->isAssignmentOp())
      if (auto *DRE =
              stmt_dyn_cast<DeclRefExpr>(BO->getLHS()->ignoreParenImpCasts()))
        if (auto *V = decl_dyn_cast<VarDecl>(DRE->getDecl())) {
          NotInvariant.insert(V);
          LocalReassigned.insert(V);
        }
  } else if (auto *UO = stmt_dyn_cast<UnaryOperator>(S)) {
    if (UO->isIncrementDecrementOp())
      if (auto *DRE =
              stmt_dyn_cast<DeclRefExpr>(UO->getSubExpr()->ignoreParenImpCasts()))
        if (auto *V = decl_dyn_cast<VarDecl>(DRE->getDecl())) {
          NotInvariant.insert(V);
          LocalReassigned.insert(V);
        }
  }
  for (Stmt *C : S->children())
    scanModifications(C);
}

void DependenceBuilder::collect(Stmt *S) {
  if (!S)
    return;
  if (auto *BO = stmt_dyn_cast<BinaryOperator>(S)) {
    if (BO->isAssignmentOp()) {
      handleAssign(BO);
      return;
    }
  }
  if (auto *UO = stmt_dyn_cast<UnaryOperator>(S)) {
    Expr *Sub = UO->getSubExpr()->ignoreParenImpCasts();
    if (UO->isIncrementDecrementOp()) {
      if (auto *ASE = stmt_dyn_cast<ArraySubscriptExpr>(Sub)) {
        recordAccess(ASE, /*IsWrite=*/false);
        recordAccess(ASE, /*IsWrite=*/true, /*WalkIndices=*/false);
        return;
      }
      if (auto *DRE = stmt_dyn_cast<DeclRefExpr>(Sub)) {
        if (auto *V = decl_dyn_cast<VarDecl>(DRE->getDecl()))
          noteScalarWrite(V, /*BO=*/nullptr, UO->getBeginLoc());
        return;
      }
      // *p++ and friends: an unattributable write.
      UnattributedWrite = true;
      UnattributedLoc = UO->getBeginLoc();
      R.SkippedWrites.push_back({UO->getBeginLoc(), "<expression>",
                                 "write target is not a named array element "
                                 "or scalar"});
      return;
    }
    if (UO->getOpcode() == UnaryOperatorKind::AddrOf) {
      // Taking an address lets the pointee be accessed outside the
      // subscript discipline: escape the underlying base.
      Expr *E = Sub;
      while (auto *ASE = stmt_dyn_cast<ArraySubscriptExpr>(E)) {
        collect(ASE->getIndex());
        E = ASE->getBase()->ignoreParenImpCasts();
      }
      if (auto *DRE = stmt_dyn_cast<DeclRefExpr>(E))
        if (auto *V = decl_dyn_cast<VarDecl>(DRE->getDecl()))
          EscapedBases.insert(V);
      return;
    }
  }
  if (auto *CE = stmt_dyn_cast<CallExpr>(S)) {
    R.HasCall = true;
    for (Expr *A : CE->arguments())
      collect(A);
    return;
  }
  if (auto *ASE = stmt_dyn_cast<ArraySubscriptExpr>(S)) {
    recordAccess(ASE, /*IsWrite=*/false);
    return;
  }
  if (auto *DRE = stmt_dyn_cast<DeclRefExpr>(S)) {
    // An array or pointer name used as a plain value (call argument,
    // pointer arithmetic, pointer assignment source) escapes the base.
    if (auto *V = decl_dyn_cast<VarDecl>(DRE->getDecl()))
      if (V->getType()->isPointerType() || V->getType()->isArrayType())
        EscapedBases.insert(V);
    return;
  }
  for (Stmt *C : S->children())
    collect(C);
}

void DependenceBuilder::handleAssign(BinaryOperator *BO) {
  Expr *LHS = BO->getLHS()->ignoreParenImpCasts();
  if (auto *ASE = stmt_dyn_cast<ArraySubscriptExpr>(LHS)) {
    if (BO->isCompoundAssignmentOp()) {
      recordAccess(ASE, /*IsWrite=*/false);
      recordAccess(ASE, /*IsWrite=*/true, /*WalkIndices=*/false);
    } else {
      recordAccess(ASE, /*IsWrite=*/true);
    }
  } else if (auto *DRE = stmt_dyn_cast<DeclRefExpr>(LHS)) {
    if (auto *V = decl_dyn_cast<VarDecl>(DRE->getDecl())) {
      noteScalarWrite(V, BO, BO->getBeginLoc());
      if (V->getType()->isPointerType())
        EscapedBases.insert(V); // reseating a pointer base mid-nest
    }
  } else {
    UnattributedWrite = true;
    UnattributedLoc = BO->getBeginLoc();
    R.SkippedWrites.push_back({BO->getBeginLoc(), "<expression>",
                               "write target is not a named array element "
                               "or scalar"});
  }
  collect(BO->getRHS());
}

void DependenceBuilder::recordAccess(ArraySubscriptExpr *ASE, bool IsWrite,
                                     bool WalkIndices) {
  Access A;
  A.IsWrite = IsWrite;
  A.Loc = ASE->getBeginLoc();

  std::vector<Expr *> Indices;
  Expr *E = ASE;
  while (auto *Cur = stmt_dyn_cast<ArraySubscriptExpr>(E)) {
    Indices.push_back(Cur->getIndex());
    E = Cur->getBase()->ignoreParenImpCasts();
  }
  std::reverse(Indices.begin(), Indices.end());

  // Nested accesses inside the index expressions (a[b[i]]) are reads in
  // their own right; the outer subscript then fails the affine test.
  if (WalkIndices)
    for (Expr *Idx : Indices)
      collect(Idx);

  auto *DRE = stmt_dyn_cast<DeclRefExpr>(E);
  auto *Base = DRE ? decl_dyn_cast<VarDecl>(DRE->getDecl()) : nullptr;
  if (!Base) {
    if (IsWrite) {
      UnattributedWrite = true;
      UnattributedLoc = A.Loc;
      R.SkippedWrites.push_back({A.Loc, "<expression>",
                                 "subscript base is not a declared array"});
    }
    return;
  }
  A.Base = Base;

  bool Affine = true;
  std::string Why;
  for (Expr *Idx : Indices) {
    AffineExpr AE;
    if (!addAffine(Idx, 1, AE, &LocalInits)) {
      Affine = false;
      Why = "non-affine subscript";
      break;
    }
    for (const auto &[V, C] : AE.Coef) {
      (void)C;
      if (ivLevel(V) < 0 && NotInvariant.count(V)) {
        Affine = false;
        Why = "subscript uses variable '" + std::string(V->getName()) +
              "' that varies inside the nest";
        break;
      }
    }
    if (!Affine)
      break;
    A.Subs.push_back(std::move(AE));
  }

  if (!Affine) {
    addConservativeDep(Base, A.Loc, Why);
    if (IsWrite)
      R.SkippedWrites.push_back({A.Loc, std::string(Base->getName()), Why});
    return;
  }
  Accesses.push_back(std::move(A));
}

void DependenceBuilder::noteScalarWrite(const VarDecl *V, BinaryOperator *BO,
                                        SourceLocation Loc) {
  if (LocalDecls.count(V))
    return; // private to a single iteration
  ScalarState &S = Scalars[V];
  if (!S.Written) {
    S.Written = true;
    S.FirstWriteLoc = Loc;
  }

  // Reduction recognition: every write must be 's = s op expr' / 's op= expr'
  // with one commutative-associative integer op and no other reference to s.
  auto Classify = [&]() -> std::optional<BinaryOperatorKind> {
    if (!BO)
      return std::nullopt; // ++/-- statements are not recognized
    if (!V->getType()->isIntegerType())
      return std::nullopt; // FP reductions reorder rounding: never relaxed
    switch (BO->getOpcode()) {
    case BinaryOperatorKind::AddAssign:
    case BinaryOperatorKind::MulAssign:
    case BinaryOperatorKind::AndAssign:
    case BinaryOperatorKind::OrAssign:
    case BinaryOperatorKind::XorAssign:
      if (refersTo(BO->getRHS(), V))
        return std::nullopt;
      S.ExpectedRefs += 1;
      return BO->getCompoundOpcode();
    case BinaryOperatorKind::Assign: {
      auto *RHS =
          stmt_dyn_cast<BinaryOperator>(BO->getRHS()->ignoreParenImpCasts());
      if (!RHS)
        return std::nullopt;
      switch (RHS->getOpcode()) {
      case BinaryOperatorKind::Add:
      case BinaryOperatorKind::Mul:
      case BinaryOperatorKind::And:
      case BinaryOperatorKind::Or:
      case BinaryOperatorKind::Xor:
        break;
      default:
        return std::nullopt;
      }
      auto IsV = [&](Expr *X) {
        auto *DRE = stmt_dyn_cast<DeclRefExpr>(X->ignoreParenImpCasts());
        return DRE && DRE->getDecl() == V;
      };
      Expr *Other = nullptr;
      if (IsV(RHS->getLHS()))
        Other = RHS->getRHS();
      else if (IsV(RHS->getRHS()))
        Other = RHS->getLHS();
      if (!Other || refersTo(Other, V))
        return std::nullopt;
      S.ExpectedRefs += 2;
      return RHS->getOpcode();
    }
    default:
      return std::nullopt;
    }
  };

  auto Op = Classify();
  if (!Op) {
    S.ReductionOk = false;
    return;
  }
  if (S.ReductionOp && *S.ReductionOp != *Op)
    S.ReductionOk = false; // mixed ops do not commute with each other
  else
    S.ReductionOp = *Op;
}

void DependenceBuilder::countRefs(Stmt *S,
                                  std::map<const VarDecl *, unsigned> &Counts) {
  if (!S)
    return;
  if (auto *DRE = stmt_dyn_cast<DeclRefExpr>(S))
    if (auto *V = decl_dyn_cast<VarDecl>(DRE->getDecl()))
      ++Counts[V];
  for (Stmt *C : S->children())
    countRefs(C, Counts);
}

void DependenceBuilder::addConservativeDep(const VarDecl *Base,
                                           SourceLocation Loc,
                                           std::string Detail) {
  // One all-'*' record per (base, detail) is enough to block everything.
  for (const Dependence &D : R.Deps)
    if (D.Base == Base && D.Detail == Detail)
      return;
  Dependence D;
  D.Kind = DepKind::Flow;
  D.Base = Base;
  D.Dirs.assign(R.Loops.size(), DepDir::Any);
  D.Dist.assign(R.Loops.size(), std::nullopt);
  D.SrcLoc = D.SinkLoc = Loc;
  D.Detail = std::move(Detail);
  R.Deps.push_back(std::move(D));
}

void DependenceBuilder::finalizeScalars(Stmt *Body) {
  std::map<const VarDecl *, unsigned> Counts;
  countRefs(Body, Counts);
  for (auto &[V, S] : Scalars) {
    if (!S.Written)
      continue;
    bool Reduction = S.ReductionOk && S.ReductionOp &&
                     Counts[V] == S.ExpectedRefs && !EscapedBases.count(V);
    if (Reduction)
      continue; // reordering iterations of a reduction is legal
    addConservativeDep(V, S.FirstWriteLoc,
                       "scalar is written and is not a recognized reduction");
  }
  if (UnattributedWrite) {
    addConservativeDep(nullptr, UnattributedLoc,
                       "a write could not be attributed to a declared array "
                       "or scalar");
  }
  for (const VarDecl *V : EscapedBases) {
    // An escaped base only matters if it is actually accessed here.
    bool Touched = false;
    for (const Access &A : Accesses)
      Touched |= A.Base == V;
    if (Touched || Scalars.count(V))
      addConservativeDep(V, SourceLocation(),
                         "the address of '" + std::string(V->getName()) +
                             "' escapes the nest");
  }
}

void DependenceBuilder::pairAccesses() {
  for (const Access &A : Accesses)
    if (!EscapedBases.count(A.Base))
      ++R.NumAnalyzableAccesses;

  for (unsigned I = 0; I < Accesses.size(); ++I) {
    const Access &A = Accesses[I];
    if (EscapedBases.count(A.Base))
      continue; // already covered by a conservative record
    for (unsigned J = I; J < Accesses.size(); ++J) {
      const Access &B = Accesses[J];
      if (B.Base != A.Base)
        continue;
      if (!A.IsWrite && !B.IsWrite)
        continue;
      testPair(A, B, /*SelfPair=*/I == J);
    }
  }
}

void DependenceBuilder::testPair(const Access &A, const Access &B,
                                 bool SelfPair) {
  if (SelfPair && !A.IsWrite)
    return;
  const unsigned Depth = static_cast<unsigned>(R.Loops.size());
  const unsigned Dims = static_cast<unsigned>(A.Subs.size());
  if (Dims != B.Subs.size()) {
    addConservativeDep(A.Base, A.Loc, "accesses use different subscript "
                                      "ranks");
    return;
  }

  // Per dimension: sum(Coef[k] * delta_k) = Rhs, with Coef[k] = c_k*step_k.
  struct DimEq {
    std::vector<std::int64_t> Coef;
    std::int64_t Rhs = 0;
  };
  std::vector<DimEq> Eqs(Dims);
  for (unsigned D = 0; D < Dims; ++D) {
    DimEq &Eq = Eqs[D];
    Eq.Coef.assign(Depth, 0);
    Eq.Rhs = A.Subs[D].Const - B.Subs[D].Const;
    std::set<const VarDecl *> Vars;
    for (const auto &[V, C] : A.Subs[D].Coef)
      Vars.insert(V);
    for (const auto &[V, C] : B.Subs[D].Coef)
      Vars.insert(V);
    for (const VarDecl *V : Vars) {
      auto Get = [V](const AffineExpr &E) {
        auto It = E.Coef.find(V);
        return It == E.Coef.end() ? 0 : It->second;
      };
      std::int64_t CA = Get(A.Subs[D]);
      std::int64_t CB = Get(B.Subs[D]);
      int Level = ivLevel(V);
      if (CA != CB) {
        // Lower bounds / symbols no longer cancel: give up on the pair.
        addConservativeDep(A.Base, A.Loc,
                           Level >= 0 ? "subscript coefficients of the pair "
                                        "differ (coupled subscripts)"
                                      : "symbolic subscript terms of the "
                                        "pair differ");
        return;
      }
      if (Level >= 0)
        Eq.Coef[Level] = mulSat(CA, R.Loops[Level].Step);
      // Equal symbolic terms cancel; equal IV coefficients keep lb out of
      // the equation, so symbolic loop bounds stay analyzable.
    }
  }

  // Enumerate the 3^depth direction combinations.
  static constexpr DepDir Menu[3] = {DepDir::Lt, DepDir::Eq, DepDir::Gt};
  std::vector<unsigned> Digits(Depth, 0);
  const std::uint64_t Total = [&] {
    std::uint64_t T = 1;
    for (unsigned I = 0; I < Depth; ++I)
      T *= 3;
    return T;
  }();

  for (std::uint64_t Mask = 0; Mask < Total; ++Mask) {
    std::uint64_t M = Mask;
    for (unsigned I = 0; I < Depth; ++I) {
      Digits[I] = M % 3;
      M /= 3;
    }
    std::vector<DepDir> Combo(Depth);
    for (unsigned I = 0; I < Depth; ++I)
      Combo[I] = Menu[Digits[I]];

    bool AllEq = true;
    for (DepDir D : Combo)
      AllEq &= D == DepDir::Eq;
    if (AllEq && SelfPair)
      continue; // the same access in the same iteration

    // A level with fewer than two iterations cannot carry a dependence.
    bool RangeEmpty = false;
    for (unsigned K = 0; K < Depth; ++K)
      if (Combo[K] != DepDir::Eq && R.Loops[K].TripCount &&
          *R.Loops[K].TripCount <= 1)
        RangeEmpty = true;
    if (RangeEmpty)
      continue;

    std::vector<std::optional<std::int64_t>> Pins(Depth);
    bool Feasible = true;
    for (unsigned D = 0; D < Dims && Feasible; ++D) {
      const DimEq &Eq = Eqs[D];
      std::int64_t G = 0;
      unsigned NumNonZero = 0;
      int LastNonZero = -1;
      MaybeInt Lo = 0, Hi = 0; // nullopt = the matching infinity
      for (unsigned K = 0; K < Depth; ++K) {
        if (Combo[K] == DepDir::Eq || Eq.Coef[K] == 0)
          continue;
        std::int64_t C = Eq.Coef[K];
        G = std::gcd(G, C < 0 ? -C : C);
        ++NumNonZero;
        LastNonZero = static_cast<int>(K);
        // delta range at this level: Lt -> [1, N-1], Gt -> [-(N-1), -1].
        MaybeInt DLo, DHi;
        if (Combo[K] == DepDir::Lt) {
          DLo = 1;
          if (R.Loops[K].TripCount)
            DHi = *R.Loops[K].TripCount - 1;
        } else {
          DHi = -1;
          if (R.Loops[K].TripCount)
            DLo = -(*R.Loops[K].TripCount - 1);
        }
        MaybeInt TLo, THi;
        if (C > 0) {
          TLo = DLo ? MaybeInt(mulSat(C, *DLo)) : std::nullopt;
          THi = DHi ? MaybeInt(mulSat(C, *DHi)) : std::nullopt;
        } else {
          TLo = DHi ? MaybeInt(mulSat(C, *DHi)) : std::nullopt;
          THi = DLo ? MaybeInt(mulSat(C, *DLo)) : std::nullopt;
        }
        Lo = (Lo && TLo) ? MaybeInt(addSat(*Lo, *TLo)) : std::nullopt;
        Hi = (Hi && THi) ? MaybeInt(addSat(*Hi, *THi)) : std::nullopt;
      }
      if (NumNonZero == 0) {
        if (Eq.Rhs != 0)
          Feasible = false;
        continue;
      }
      if (Eq.Rhs % G != 0) { // GCD test
        Feasible = false;
        continue;
      }
      if ((Lo && Eq.Rhs < *Lo) || (Hi && Eq.Rhs > *Hi)) { // Banerjee test
        Feasible = false;
        continue;
      }
      if (NumNonZero == 1) { // strong SIV: the solution is pinned
        std::int64_t C = Eq.Coef[LastNonZero];
        if (Eq.Rhs % C != 0) {
          Feasible = false;
          continue;
        }
        std::int64_t Delta = Eq.Rhs / C;
        if (Pins[LastNonZero] && *Pins[LastNonZero] != Delta) {
          Feasible = false;
          continue;
        }
        if ((Combo[LastNonZero] == DepDir::Lt && Delta < 1) ||
            (Combo[LastNonZero] == DepDir::Gt && Delta > -1)) {
          Feasible = false;
          continue;
        }
        if (R.Loops[LastNonZero].TripCount &&
            (Delta >= *R.Loops[LastNonZero].TripCount ||
             Delta <= -*R.Loops[LastNonZero].TripCount)) {
          Feasible = false;
          continue;
        }
        Pins[LastNonZero] = Delta;
      }
    }
    if (!Feasible)
      continue;

    // Canonicalize to a lexicographically non-negative vector: a '>'-first
    // combination is really a dependence in the other direction.
    bool Swapped = false;
    for (DepDir Dir : Combo) {
      if (Dir == DepDir::Eq)
        continue;
      Swapped = Dir == DepDir::Gt;
      break;
    }
    Dependence Dep;
    Dep.Base = A.Base;
    Dep.Dirs.resize(Depth);
    Dep.Dist.resize(Depth);
    for (unsigned K = 0; K < Depth; ++K) {
      DepDir Dir = Combo[K];
      std::optional<std::int64_t> Pin =
          Combo[K] == DepDir::Eq ? std::optional<std::int64_t>(0) : Pins[K];
      if (Swapped) {
        if (Dir == DepDir::Lt)
          Dir = DepDir::Gt;
        else if (Dir == DepDir::Gt)
          Dir = DepDir::Lt;
        if (Pin)
          Pin = -*Pin;
      }
      Dep.Dirs[K] = Dir;
      Dep.Dist[K] = Pin;
    }
    const Access &Src = Swapped ? B : A;
    const Access &Sink = Swapped ? A : B;
    Dep.SrcLoc = Src.Loc;
    Dep.SinkLoc = Sink.Loc;
    if (Src.IsWrite && Sink.IsWrite)
      Dep.Kind = DepKind::Output;
    else if (Src.IsWrite)
      Dep.Kind = DepKind::Flow;
    else
      Dep.Kind = DepKind::Anti;
    R.Deps.push_back(std::move(Dep));
  }
}

void DependenceBuilder::buildSummaries() {
  for (const Access &A : Accesses) {
    if (EscapedBases.count(A.Base))
      continue;
    DependenceInfo::AccessSummary S;
    S.Base = A.Base;
    S.IsWrite = A.IsWrite;
    S.Loc = A.Loc;
    for (const AffineExpr &AE : A.Subs) {
      DependenceInfo::AccessSummary::Dim D;
      D.K = AE.Const;
      D.HasK = true;
      for (const auto &[V, C] : AE.Coef) {
        int Level = ivLevel(V);
        if (Level == 0) {
          D.A0 = mulSat(C, R.Loops[0].Step);
          if (R.Loops[0].LowerBound)
            D.K = addSat(D.K, mulSat(C, *R.Loops[0].LowerBound));
          else
            D.HasK = false;
        } else if (Level > 0) {
          D.InnerUse = true;
        } else {
          D.Sym[V] = C;
        }
      }
      S.Dims.push_back(std::move(D));
    }
    R.Summaries.push_back(std::move(S));
  }
}

DependenceInfo DependenceInfo::analyze(Stmt *NestRoot, unsigned MinDepth) {
  return DependenceBuilder().build(NestRoot, std::max(MinDepth, 1u));
}

// --- Legality oracle ------------------------------------------------------

namespace {

/// Provably lexicographically non-negative after a transformation: a '<'
/// before any '>' or '*', or all '='.
bool lexNonNegative(std::span<const DepDir> W) {
  for (DepDir D : W) {
    if (D == DepDir::Lt)
      return true;
    if (D == DepDir::Gt || D == DepDir::Any)
      return false;
  }
  return true;
}

} // namespace

Legality DependenceInfo::checkOracleBasis() const {
  if (!Analyzable)
    return {false, FailureReason.empty()
                       ? std::string("the loop nest is not analyzable")
                       : FailureReason};
  if (HasCall)
    return {false, "the loop nest contains a function call with unknown "
                   "side effects"};
  return {};
}

Legality DependenceInfo::isLegalReverse(unsigned Level) const {
  if (Legality Basis = checkOracleBasis(); !Basis)
    return Basis;
  if (Level >= getDepth())
    return {false, "the nest is not deep enough for the requested level"};
  for (const Dependence &Dep : Deps) {
    std::vector<DepDir> W = Dep.Dirs;
    if (W[Level] == DepDir::Lt)
      W[Level] = DepDir::Gt;
    else if (W[Level] == DepDir::Gt)
      W[Level] = DepDir::Lt;
    if (!lexNonNegative(W))
      return {false, Dep.describe(), &Dep};
  }
  return {};
}

Legality
DependenceInfo::isLegalInterchange(std::span<const unsigned> Perm) const {
  if (Legality Basis = checkOracleBasis(); !Basis)
    return Basis;
  if (Perm.size() > getDepth())
    return {false, "the nest is not deep enough for the requested "
                   "permutation"};
  for (unsigned P : Perm)
    if (P >= Perm.size())
      return {false, "invalid permutation"};
  for (const Dependence &Dep : Deps) {
    std::vector<DepDir> W = Dep.Dirs;
    for (unsigned P = 0; P < Perm.size(); ++P)
      W[P] = Dep.Dirs[Perm[P]];
    if (!lexNonNegative(W))
      return {false, Dep.describe(), &Dep};
  }
  return {};
}

Legality DependenceInfo::isLegalInterchange(unsigned I, unsigned J) const {
  std::vector<unsigned> Perm(std::max(I, J) + 1);
  for (unsigned P = 0; P < Perm.size(); ++P)
    Perm[P] = P;
  std::swap(Perm[I], Perm[J]);
  return isLegalInterchange(Perm);
}

Legality DependenceInfo::isLegalFuse(const DependenceInfo &First,
                                     const DependenceInfo &Second) {
  if (Legality Basis = First.checkOracleBasis(); !Basis)
    return Basis;
  if (Legality Basis = Second.checkOracleBasis(); !Basis)
    return Basis;

  // Fusing runs iteration t of Second before iterations t+1.. of First.
  // Originally all of First preceded all of Second, so the fusion is
  // illegal exactly when some access pair (x in First at t1, y in Second
  // at t2) touches the same element with t1 > t2.
  auto HazardOn = [](const DependenceInfo &Info, const VarDecl *Base) {
    for (const Dependence &D : Info.Deps)
      if ((D.Base == Base || !D.Base) &&
          !D.Dirs.empty() && D.Dirs[0] == DepDir::Any)
        return true;
    return false;
  };

  for (const AccessSummary &X : First.Summaries) {
    for (const AccessSummary &Y : Second.Summaries) {
      if (X.Base != Y.Base || (!X.IsWrite && !Y.IsWrite))
        continue;
      if (HazardOn(First, X.Base) || HazardOn(Second, Y.Base))
        return {false, "accesses to '" + std::string(X.Base->getName()) +
                           "' are not fully analyzable in one of the loops"};
      if (X.Dims.size() != Y.Dims.size())
        return {false, "accesses to '" + std::string(X.Base->getName()) +
                           "' use different subscript ranks"};
      // Solve per dimension: A0*t1 + K_x = A0*t2 + K_y  =>  t1-t2 = dK/A0.
      std::optional<std::int64_t> Delta;
      bool NoDep = false;
      bool Unknown = false;
      for (unsigned D = 0; D < X.Dims.size() && !NoDep && !Unknown; ++D) {
        const auto &DX = X.Dims[D];
        const auto &DY = Y.Dims[D];
        if (DX.InnerUse || DY.InnerUse || DX.Sym != DY.Sym || !DX.HasK ||
            !DY.HasK || DX.A0 != DY.A0) {
          Unknown = true;
          break;
        }
        std::int64_t DK = DY.K - DX.K;
        if (DX.A0 == 0) {
          if (DK != 0)
            NoDep = true; // constant subscripts touch different elements
          continue;
        }
        if (DK % DX.A0 != 0) {
          NoDep = true;
          continue;
        }
        std::int64_t ThisDelta = DK / DX.A0;
        if (Delta && *Delta != ThisDelta)
          NoDep = true;
        else
          Delta = ThisDelta;
      }
      if (NoDep)
        continue;
      std::string Name(X.Base->getName());
      if (Unknown)
        return {false,
                "accesses to '" + Name + "' cannot be compared across the "
                                         "two loops"};
      if (!Delta)
        // Same element in every iteration pair: any t1 > t2 conflicts.
        return {false, "both loops access the same element of '" + Name +
                           "' in every iteration"};
      std::int64_t D = *Delta; // t1 - t2 of a conflicting pair
      bool InRange = D >= 1;
      if (InRange && First.Loops[0].TripCount &&
          D > *First.Loops[0].TripCount - 1)
        InRange = false;
      if (InRange)
        return {false, "iteration t of the second loop would read/write "
                       "what iteration t+" +
                           std::to_string(D) + " of the first loop "
                                               "accesses ('" +
                           Name + "')"};
    }
  }
  return {};
}

Legality DependenceInfo::isLegalDistribute() const {
  if (Legality Basis = checkOracleBasis(); !Basis)
    return Basis;
  if (Loops.empty())
    return {false, "no loop to distribute"};
  // Groups are the top-level statements of the outermost loop's compound
  // body. Distribution runs every iteration of group g before any
  // iteration of group g+1, so it is illegal exactly when a dependence
  // carried by the loop flows from a textually later group to an earlier
  // one (the sink's whole loop would then run before the source).
  const auto *Body = stmt_dyn_cast<CompoundStmt>(Loops[0].Loop->getBody());
  if (!Body || Body->size() <= 1)
    return {}; // one group: distribution is the identity
  std::vector<SourceRange> Groups;
  for (const Stmt *S : Body->body())
    Groups.push_back(S->getSourceRange());
  auto GroupOf = [&](SourceLocation Loc) -> int {
    if (!Loc.isValid())
      return -1;
    for (unsigned G = 0; G < Groups.size(); ++G)
      if (Groups[G].getBegin() <= Loc && Loc <= Groups[G].getEnd())
        return static_cast<int>(G);
    return -1;
  };
  for (const Dependence &Dep : Deps) {
    if (Dep.Dirs.empty() || Dep.Dirs[0] == DepDir::Eq)
      continue; // loop-independent: source order of groups is preserved
    if (Dep.Dirs[0] == DepDir::Any)
      return {false, Dep.describe(), &Dep};
    // Canonicalization guarantees the first non-'=' level is '<': the
    // source iteration is earlier. Only a source in a *later* group is
    // reversed by distribution.
    int SrcG = GroupOf(Dep.SrcLoc);
    int SinkG = GroupOf(Dep.SinkLoc);
    if (SrcG < 0 || SinkG < 0)
      return {false,
              "a dependence endpoint could not be attributed to a "
              "statement group: " +
                  Dep.describe(),
              &Dep};
    if (SrcG > SinkG)
      return {false,
              Dep.describe() + " flows from statement group " +
                  std::to_string(SrcG + 1) + " back to group " +
                  std::to_string(SinkG + 1),
              &Dep};
  }
  return {};
}

const Dependence *
DependenceInfo::findParallelConflict(unsigned ParallelLevels,
                                     const VarDecl *Base) const {
  for (const Dependence &Dep : Deps) {
    if (Base && Dep.Base != Base)
      continue;
    if (Dep.carrierLevel() < std::min<unsigned>(ParallelLevels, getDepth()))
      return &Dep;
  }
  return nullptr;
}

} // namespace mcc::analysis
