//===--- CanonicalLoopCheck.cpp - Canonical-loop conformance checker -------===//
//
// Explains *why* a loop fails OpenMP canonical-loop form (OpenMP 5.1
// s4.4.1): one warning per offending loop, with notes pointing at each
// offending expression. Runs over the loops associated with every
// loop-based directive — including the generated loops of tile / unroll
// partial shadow ASTs, where diagnostics without a usable location are
// remapped to the literal loop (paper Section 2).
//
// Complements Sema: Sema *rejects* structurally unusable loops with
// errors; this pass warns about forms Sema accepts but that violate the
// canonical-loop contract in ways that change the iteration count at
// runtime (condition variable modified in the body) or lose iterations to
// rounding (non-integer induction variable).
//
//===----------------------------------------------------------------------===//
#include "analysis/Analysis.h"

#include <set>
#include <vector>

namespace mcc::analysis {

namespace {

/// Does \p E (ignoring parens/casts) reference exactly \p V?
bool isRefTo(const Expr *E, const VarDecl *V) {
  const auto *DRE = stmt_dyn_cast<DeclRefExpr>(E->ignoreParenImpCasts());
  return DRE && DRE->getDecl() == V;
}

void collectReferencedVars(const Stmt *S, std::set<const VarDecl *> &Out) {
  if (!S)
    return;
  if (const auto *DRE = stmt_dyn_cast<DeclRefExpr>(S))
    if (auto *V = decl_dyn_cast<VarDecl>(DRE->getDecl()))
      Out.insert(V);
  for (Stmt *Child : S->children())
    collectReferencedVars(Child, Out);
}

/// First statement in \p S that modifies \p V (assignment target or
/// increment/decrement operand), or null.
const Stmt *findModification(const Stmt *S, const VarDecl *V) {
  if (!S)
    return nullptr;
  if (const auto *BO = stmt_dyn_cast<BinaryOperator>(S)) {
    if (BO->isAssignmentOp() && isRefTo(BO->getLHS(), V))
      return BO;
  } else if (const auto *UO = stmt_dyn_cast<UnaryOperator>(S)) {
    if (UO->isIncrementDecrementOp() && isRefTo(UO->getSubExpr(), V))
      return UO;
  }
  for (Stmt *Child : S->children())
    if (const Stmt *Found = findModification(Child, V))
      return Found;
  return nullptr;
}

bool isCanonicalCondition(const Expr *Cond, const VarDecl *IV) {
  const auto *BO = stmt_dyn_cast<BinaryOperator>(Cond->ignoreParenImpCasts());
  if (!BO || !BO->isComparisonOp() ||
      BO->getOpcode() == BinaryOperatorKind::EQ)
    return false;
  return isRefTo(BO->getLHS(), IV) || isRefTo(BO->getRHS(), IV);
}

bool isCanonicalIncrement(const Expr *Inc, const VarDecl *IV) {
  const Expr *E = Inc->ignoreParenImpCasts();
  if (const auto *UO = stmt_dyn_cast<UnaryOperator>(E))
    return UO->isIncrementDecrementOp() && isRefTo(UO->getSubExpr(), IV);
  const auto *BO = stmt_dyn_cast<BinaryOperator>(E);
  if (!BO || !isRefTo(BO->getLHS(), IV))
    return false;
  switch (BO->getOpcode()) {
  case BinaryOperatorKind::AddAssign:
  case BinaryOperatorKind::SubAssign:
    return true;
  case BinaryOperatorKind::Assign: {
    // var = var + incr / var = incr + var / var = var - incr
    const auto *RHS =
        stmt_dyn_cast<BinaryOperator>(BO->getRHS()->ignoreParenImpCasts());
    if (!RHS || !RHS->isAdditiveOp())
      return false;
    if (RHS->getOpcode() == BinaryOperatorKind::Sub)
      return isRefTo(RHS->getLHS(), IV);
    return isRefTo(RHS->getLHS(), IV) || isRefTo(RHS->getRHS(), IV);
  }
  default:
    return false;
  }
}

} // namespace

bool checkCanonicalLoopConformance(Stmt *Loop, OpenMPDirectiveKind DKind,
                                   DiagnosticsEngine &Diags) {
  Loop = skipLoopWrappers(Loop);
  std::string DirName(getOpenMPDirectiveName(DKind));

  auto *For = stmt_dyn_cast<ForStmt>(Loop);
  if (!For) {
    Diags.report(Loop->getBeginLoc(), diag::warn_analysis_loop_not_canonical)
        << DirName;
    Diags.report(Loop->getBeginLoc(), diag::note_analysis_not_a_loop)
        << Loop->getStmtClassName();
    return false;
  }

  struct Issue {
    diag::DiagID ID;
    SourceLocation Loc;
    std::vector<std::string> Args;
  };
  std::vector<Issue> Issues;

  VarDecl *IV = getLoopIterationVar(For);
  if (!IV) {
    Stmt *At = For->getInit() ? For->getInit() : static_cast<Stmt *>(For);
    Issues.push_back({diag::note_analysis_noncanonical_init,
                      At->getBeginLoc(),
                      {}});
  } else {
    std::string IVName(IV->getName());

    if (!IV->getType()->isIntegerType() && !IV->getType()->isPointerType())
      Issues.push_back({diag::note_analysis_noninteger_iv, IV->getLocation(),
                        {IVName, IV->getType().getAsString()}});

    Expr *Cond = For->getCond();
    if (!Cond || !isCanonicalCondition(Cond, IV))
      Issues.push_back(
          {diag::note_analysis_noncanonical_cond,
           Cond ? Cond->getBeginLoc() : For->getBeginLoc(),
           {IVName}});

    Expr *Inc = For->getInc();
    if (!Inc || !isCanonicalIncrement(Inc, IV))
      Issues.push_back({diag::note_analysis_noncanonical_inc,
                        Inc ? Inc->getBeginLoc() : For->getBeginLoc(),
                        {IVName}});

    // The trip count must be invariant: neither the iteration variable nor
    // any variable the condition depends on may be modified in the body.
    if (Cond) {
      std::set<const VarDecl *> CondVars;
      collectReferencedVars(Cond, CondVars);
      for (const VarDecl *V : CondVars) {
        const Stmt *Mod = findModification(For->getBody(), V);
        if (!Mod)
          continue;
        Issues.push_back({V == IV ? diag::note_analysis_iv_modified_here
                                  : diag::note_analysis_cond_var_modified_here,
                          Mod->getBeginLoc(),
                          {std::string(V->getName())}});
      }
    }
  }

  if (Issues.empty())
    return true;

  Diags.report(For->getBeginLoc(), diag::warn_analysis_loop_not_canonical)
      << DirName;
  for (const Issue &I : Issues) {
    DiagnosticBuilder B = Diags.report(I.Loc, I.ID);
    for (const std::string &A : I.Args)
      B << A;
  }
  return false;
}

namespace {

class CanonicalLoopConformance final : public ASTAnalysis {
public:
  CanonicalLoopConformance()
      : ASTAnalysis("canonical-loop-conformance") {}

  void run(TranslationUnitDecl *TU, AnalysisManager &AM) override {
    struct Finder : RecursiveASTVisitor<Finder> {
      CanonicalLoopConformance *Self = nullptr;
      DiagnosticsEngine *Diags = nullptr;
      bool visitStmt(Stmt *S) {
        if (auto *D = stmt_dyn_cast<OMPLoopBasedDirective>(S))
          Self->checkDirective(D, *Diags);
        return true;
      }
      bool visitDecl(Decl *) { return true; }
    } F;
    F.Self = this;
    F.Diags = &AM.getDiagnostics();
    F.traverseDecl(TU);
  }

private:
  void checkDirective(OMPLoopBasedDirective *D, DiagnosticsEngine &Diags) {
    std::string DirName(getOpenMPDirectiveName(D->getDirectiveKind()));

    // The literal associated nest.
    checkNest(D->getAssociatedStmt(), D->getLoopsNumber(),
              D->getDirectiveKind(), Diags);

    // The generated loops of a transformation's shadow AST: the floor
    // loops of tile, the strip-mined outer loop of unroll partial. These
    // are what an enclosing directive would associate with, so they must
    // be canonical too. Diagnostics lacking a location are remapped to the
    // directive (paper Section 2).
    auto *TD = stmt_dyn_cast<OMPLoopTransformationDirective>(D);
    if (!TD || !TD->getTransformedStmt())
      return;
    unsigned GeneratedLoops =
        stmt_dyn_cast<OMPTileDirective>(TD) ? TD->getLoopsNumber() : 1;
    Diags.pushTransformRemap(D->getBeginLoc(), DirName);
    checkNest(TD->getTransformedStmt(), GeneratedLoops,
              D->getDirectiveKind(), Diags);
    Diags.popTransformRemap();
  }

  void checkNest(Stmt *S, unsigned Depth, OpenMPDirectiveKind DKind,
                 DiagnosticsEngine &Diags) {
    for (unsigned D = 0; D < Depth && S; ++D) {
      S = skipLoopWrappers(S);
      // A nested transformation directive is checked at its own visit.
      if (stmt_dyn_cast<OMPLoopTransformationDirective>(S))
        return;
      auto *For = stmt_dyn_cast<ForStmt>(S);
      if (!For)
        return; // structural problems are Sema's / the verifier's job
      // Generated loops reuse the literal loop's source range, so keying
      // on the begin location dedups the literal nest against its clones.
      // Loops without a location (fully synthesized) are always checked.
      if (For->getBeginLoc().isInvalid() ||
          Checked.insert(For->getBeginLoc().getRawEncoding()).second)
        checkCanonicalLoopConformance(For, DKind, Diags);
      S = For->getBody();
    }
  }

  std::set<std::uint32_t> Checked;
};

} // namespace

std::unique_ptr<ASTAnalysis> createCanonicalLoopConformanceCheck() {
  return std::make_unique<CanonicalLoopConformance>();
}

} // namespace mcc::analysis
