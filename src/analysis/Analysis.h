//===--- Analysis.h - AST static-analysis pass framework --------*- C++ -*-===//
//
// The static-analysis layer that sits between Sema and CodeGen: an
// AnalysisManager runs registered ASTAnalysis passes over a translation
// unit; each pass walks the AST with RecursiveASTVisitor and reports
// through the shared DiagnosticsEngine (so the location-remapping policy of
// paper Section 2 applies to analysis diagnostics too).
//
// Three passes ship with the framework:
//   * openmp-race-linter          warns on unsynchronized writes to
//                                 variables shared by default in parallel /
//                                 worksharing regions
//   * canonical-loop-conformance  explains *why* a loop fails OpenMP
//                                 canonical-loop form (OpenMP 5.1 s4.4.1),
//                                 including the generated loops of
//                                 tile/unroll shadow ASTs
//   * post-transform-verifier     the AST analogue of ir::Verifier: checks
//                                 the structural invariants of shadow ASTs
//                                 produced by SemaOpenMPTransform
//
//===----------------------------------------------------------------------===//
#ifndef MCC_ANALYSIS_ANALYSIS_H
#define MCC_ANALYSIS_ANALYSIS_H

#include "ast/RecursiveASTVisitor.h"
#include "support/Diagnostic.h"

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace mcc {

class ASTContext;

namespace analysis {

class AnalysisManager;

/// A single analysis pass over a translation unit. Passes are stateless
/// between runs; all output goes through the AnalysisManager's
/// DiagnosticsEngine.
class ASTAnalysis {
public:
  explicit ASTAnalysis(std::string Name) : Name(std::move(Name)) {}
  virtual ~ASTAnalysis() = default;

  [[nodiscard]] const std::string &getName() const { return Name; }

  virtual void run(TranslationUnitDecl *TU, AnalysisManager &AM) = 0;

private:
  std::string Name;
};

/// Owns and runs a pipeline of ASTAnalysis passes, tracking how many
/// warnings/errors each pass produced.
class AnalysisManager {
public:
  AnalysisManager(ASTContext &Ctx, DiagnosticsEngine &Diags)
      : Ctx(Ctx), Diags(Diags) {}

  void addPass(std::unique_ptr<ASTAnalysis> Pass);

  /// Runs every registered pass over \p TU. Returns false if any pass
  /// emitted an error-severity diagnostic.
  bool run(TranslationUnitDecl *TU);

  [[nodiscard]] ASTContext &getASTContext() { return Ctx; }
  [[nodiscard]] DiagnosticsEngine &getDiagnostics() { return Diags; }

  struct PassStats {
    std::string Name;
    unsigned Warnings = 0;
    unsigned Errors = 0;
    unsigned Remarks = 0;
  };
  [[nodiscard]] const std::vector<PassStats> &getStats() const {
    return Stats;
  }

private:
  ASTContext &Ctx;
  DiagnosticsEngine &Diags;
  std::vector<std::unique_ptr<ASTAnalysis>> Passes;
  std::vector<PassStats> Stats;
};

// --- Pass factories ---
std::unique_ptr<ASTAnalysis> createOpenMPRaceLinter();
std::unique_ptr<ASTAnalysis> createCanonicalLoopConformanceCheck();
std::unique_ptr<ASTAnalysis> createPostTransformVerifier();
std::unique_ptr<ASTAnalysis> createDependenceReporter();

/// Registers the default pipeline: the post-transform verifier when
/// \p EnableVerifier (on by default in the driver, like RunVerifier for
/// IR), plus the linter passes when \p EnableLinters (--analyze).
void registerDefaultAnalyses(AnalysisManager &AM, bool EnableLinters,
                             bool EnableVerifier = true);

/// The names --analyze=<pass,...> accepts, comma-separated (for driver
/// diagnostics).
std::string getKnownAnalysisPassNames();

/// Registers exactly the passes named in \p Names, in the canonical
/// pipeline order regardless of the order given (plus the verifier when
/// \p EnableVerifier). Returns the first unknown name, or an empty string
/// on success.
std::string registerAnalysesByName(AnalysisManager &AM,
                                   std::span<const std::string> Names,
                                   bool EnableVerifier = true);

// --- Re-usable single-node checks (also the unit-test entry points) ---

/// Checks one loop against the OpenMP canonical-loop form, emitting
/// warn_analysis_loop_not_canonical plus notes pointing at each offending
/// expression. Returns true if the loop conforms.
bool checkCanonicalLoopConformance(Stmt *Loop, OpenMPDirectiveKind DKind,
                                   DiagnosticsEngine &Diags);

/// Verifies the shadow-AST structural invariants of one loop
/// transformation directive (perfect nesting for tile, generated-loop
/// structure matching the clause arguments, shadow locations confined to
/// the literal loop). Emits err_ast_verifier on violation; returns true if
/// the directive verifies.
bool verifyLoopTransformation(OMPLoopTransformationDirective *Dir,
                              DiagnosticsEngine &Diags);

// --- Loop-nest helpers shared by the passes ---

/// Strips CapturedStmt, OMPCanonicalLoop and single-statement CompoundStmt
/// wrappers (the layers Sema may interpose between a directive and its
/// associated loop).
Stmt *skipLoopWrappers(Stmt *S);

/// The induction variable of a canonical-looking for loop: declared by the
/// init ('T var = lb') or assigned by it ('var = lb'). Null if the init
/// has neither form.
VarDecl *getLoopIterationVar(const ForStmt *Loop);

} // namespace analysis
} // namespace mcc

#endif // MCC_ANALYSIS_ANALYSIS_H
