//===--- DependenceAnalysis.h - Affine loop data-dependence analysis -*- C++ -*-===//
//
// Data-dependence analysis over canonical loop nests: extracts affine
// subscript functions of the nest induction variables from array accesses,
// pairs reads and writes to the same base array, and computes
// distance/direction vectors. Constant-distance dependences are resolved
// exactly (strong SIV); everything else falls back to a conservative
// GCD + Banerjee feasibility test per direction combination, and anything
// non-affine degrades to the unknown direction '*'.
//
// Directions and distances are expressed in the *logical* iteration space
// (iteration numbers 0..N-1 in execution order), so they are directly
// meaningful to the loop transformations that operate on logical
// iterations: a legality query is a scan of the (possibly transformed)
// direction vectors for lexicographic positivity.
//
// The three consumers are Sema (gating #pragma omp reverse / interchange),
// the OpenMP race linter (index-aware analysis of array writes in parallel
// regions), and the --analyze=deps report pass.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_ANALYSIS_DEPENDENCEANALYSIS_H
#define MCC_ANALYSIS_DEPENDENCEANALYSIS_H

#include "ast/StmtOpenMP.h"

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace mcc::analysis {

/// Dependence kind, named from the source (earlier) access to the sink.
enum class DepKind { Flow, Anti, Output };

/// Per-level direction of a dependence. Lt means the source iteration is
/// strictly earlier than the sink at that level; Any ('*') means unknown.
enum class DepDir : char { Lt = '<', Eq = '=', Gt = '>', Any = '*' };

[[nodiscard]] std::string_view getDepKindName(DepKind K);

/// One dependence between two accesses of a loop nest. Vectors are stored
/// canonicalized: lexicographically non-negative (the first non-'=' level,
/// if any, is never '>').
struct Dependence {
  DepKind Kind = DepKind::Flow;
  const VarDecl *Base = nullptr;
  /// One direction per nest level, outermost first.
  std::vector<DepDir> Dirs;
  /// Parallel to Dirs; set where the distance is provably constant.
  std::vector<std::optional<std::int64_t>> Dist;
  SourceLocation SrcLoc;
  SourceLocation SinkLoc;
  /// Extra context for conservative records ("non-affine subscript",
  /// "scalar is written and is not a recognized reduction", ...).
  std::string Detail;

  /// First level whose direction is not '='; getDepth() if all are.
  [[nodiscard]] unsigned carrierLevel() const;
  [[nodiscard]] bool isLoopIndependent() const;
  /// Every level has a known constant distance.
  [[nodiscard]] bool isExact() const;
  /// "flow dependence on 'a', direction (<,=), distance (1,0)"
  [[nodiscard]] std::string describe() const;
};

/// One level of the analyzed nest.
struct NestLoop {
  const ForStmt *Loop = nullptr;
  const VarDecl *IV = nullptr;
  std::int64_t Step = 1; ///< signed constant step (never 0)
  std::optional<std::int64_t> LowerBound;
  std::optional<std::int64_t> TripCount;
};

/// A write the analysis could not model (pointer-expression base, escaped
/// array, non-affine subscript, unrecognized scalar update). Surfaced so
/// clients can report the skip instead of silently under-approximating.
struct SkippedAccess {
  SourceLocation Loc;
  std::string Base;
  std::string Reason;
};

/// Answer of a legality query; Reason names the blocking dependence or
/// obstacle when Legal is false. Blocking points at the stored dependence
/// that refutes the transform, when one does (null for basis failures such
/// as an unanalyzable nest); it lets clients attach a note at the
/// conflicting access.
struct Legality {
  bool Legal = true;
  std::string Reason;
  const Dependence *Blocking = nullptr;
  explicit operator bool() const { return Legal; }
};

class DependenceInfo {
public:
  /// Analyzes the maximal perfectly nested canonical loop nest rooted at
  /// \p NestRoot (statement wrappers are skipped). The nest is extended
  /// beyond \p MinDepth as far as perfect nesting and constant steps
  /// allow, which sharpens the directions seen by outer-level queries.
  /// isAnalyzable() is false when not even \p MinDepth levels could be
  /// modeled.
  static DependenceInfo analyze(Stmt *NestRoot, unsigned MinDepth = 1);

  [[nodiscard]] bool isAnalyzable() const { return Analyzable; }
  [[nodiscard]] const std::string &getFailureReason() const {
    return FailureReason;
  }
  [[nodiscard]] unsigned getDepth() const {
    return static_cast<unsigned>(Loops.size());
  }
  [[nodiscard]] const std::vector<NestLoop> &getLoops() const { return Loops; }
  [[nodiscard]] const std::vector<Dependence> &getDependences() const {
    return Deps;
  }
  [[nodiscard]] const std::vector<SkippedAccess> &getSkippedWrites() const {
    return SkippedWrites;
  }
  /// Array accesses whose subscripts were fully modeled as affine.
  [[nodiscard]] unsigned getNumAnalyzableAccesses() const {
    return NumAnalyzableAccesses;
  }
  [[nodiscard]] bool hasCall() const { return HasCall; }

  // --- Transform-legality oracle ---

  /// May the loop at \p Level (0 = outermost) be reversed?
  [[nodiscard]] Legality isLegalReverse(unsigned Level) const;
  /// May the first Perm.size() levels be reordered so that position p runs
  /// original level Perm[p]?
  [[nodiscard]] Legality
  isLegalInterchange(std::span<const unsigned> Perm) const;
  /// Plain swap of two levels.
  [[nodiscard]] Legality isLegalInterchange(unsigned I, unsigned J) const;
  /// May two adjacent sibling loops (each analyzed as a depth-1 nest) be
  /// fused, with \p First textually preceding \p Second?
  [[nodiscard]] static Legality isLegalFuse(const DependenceInfo &First,
                                            const DependenceInfo &Second);
  /// May the outermost loop be distributed into one loop per top-level
  /// statement of its (compound) body, run in source order? Refused when a
  /// dependence carried by the loop flows from a textually later group to
  /// an earlier one — distribution would run all iterations of the earlier
  /// group first and reverse that dependence.
  [[nodiscard]] Legality isLegalDistribute() const;

  /// The first dependence on \p Base carried by one of the outermost
  /// \p ParallelLevels loops, i.e. a conflict between different iterations
  /// that a worksharing construct would run concurrently. Null if none.
  /// Pass null \p Base to match any array base.
  [[nodiscard]] const Dependence *
  findParallelConflict(unsigned ParallelLevels,
                       const VarDecl *Base = nullptr) const;

private:
  /// Per-access summary retained for the cross-nest fusion query: the
  /// subscript rewritten over the *logical* iteration of this nest's
  /// outermost loop (A0 * t + K per dimension).
  struct AccessSummary {
    const VarDecl *Base = nullptr;
    bool IsWrite = false;
    SourceLocation Loc;
    struct Dim {
      std::int64_t A0 = 0;  ///< coefficient of the outermost logical iter
      std::int64_t K = 0;   ///< constant part (coef*lb + literal constant)
      bool HasK = false;    ///< K could be folded to a constant
      bool InnerUse = false; ///< references an inner level's IV
      std::map<const VarDecl *, std::int64_t> Sym; ///< invariant symbols
    };
    std::vector<Dim> Dims;
  };

  bool Analyzable = false;
  std::string FailureReason;
  bool HasCall = false;
  unsigned NumAnalyzableAccesses = 0;
  std::vector<NestLoop> Loops;
  std::vector<Dependence> Deps;
  std::vector<SkippedAccess> SkippedWrites;
  std::vector<AccessSummary> Summaries;

  /// Checks analyzability and the no-calls rule shared by every transform
  /// query; returns a failed Legality when the nest cannot be reasoned
  /// about at all.
  [[nodiscard]] Legality checkOracleBasis() const;

  friend class DependenceBuilder;
};

} // namespace mcc::analysis

#endif // MCC_ANALYSIS_DEPENDENCEANALYSIS_H
