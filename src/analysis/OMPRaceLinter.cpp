//===--- OMPRaceLinter.cpp - OpenMP data-race linter -----------------------===//
//
// Walks parallel / worksharing regions and warns on writes to variables
// that are shared by default and neither privatized, reduced,
// loop-iteration-local, nor protected by a synchronizing construct. This
// catches the two classic mistakes the paper's directives make easy to
// write: the un-privatized inner induction variable and the shared
// accumulator.
//
// Only the *syntactic* AST is walked, so every diagnostic lands on the
// user's literal code — never on a shadow node like '.capture_expr.'.
//
// Array-element writes are judged with the affine dependence analysis: a
// write a[f(i)] in a worksharing loop races exactly when some dependence on
// 'a' is carried by a parallelized loop level. Writes the analysis cannot
// model are surfaced as remarks instead of being silently ignored.
//
//===----------------------------------------------------------------------===//
#include "analysis/Analysis.h"
#include "analysis/DependenceAnalysis.h"

#include <set>
#include <vector>

namespace mcc::analysis {

namespace {

/// Directives that start a region whose statements execute concurrently on
/// the threads of a team.
bool isRaceRegionDirective(OpenMPDirectiveKind K) {
  return K == OpenMPDirectiveKind::Parallel ||
         isOpenMPWorksharingDirective(K);
}

/// Directives whose associated statement is executed by one thread at a
/// time (or by a single thread), so writes inside are not team races.
bool isSynchronizedDirective(OpenMPDirectiveKind K) {
  return K == OpenMPDirectiveKind::Critical ||
         K == OpenMPDirectiveKind::Single ||
         K == OpenMPDirectiveKind::Master;
}

/// Internal variables synthesized by Sema are never user races.
bool isInternalVar(const VarDecl *V) {
  return V->isImplicit() || (!V->getName().empty() && V->getName()[0] == '.');
}

void addClauseVars(const OMPExecutableDirective *D,
                   std::set<const VarDecl *> &Out) {
  for (const OMPClause *C : D->clauses())
    if (const auto *VL = clause_dyn_cast<OMPVarListClause>(C))
      for (const DeclRefExpr *Ref : VL->getVarRefs())
        if (auto *V = decl_dyn_cast<VarDecl>(Ref->getDecl()))
          Out.insert(V);
}

/// Collects the predetermined-private induction variables of the loop nest
/// associated with \p S up to \p Depth loops. Loops consumed by a nested
/// transformation directive are re-materialized per iteration in the
/// generated code, so their IVs are iteration-local as well.
void collectLoopPrivateIVs(Stmt *S, unsigned Depth,
                           std::set<const VarDecl *> &Out) {
  if (!S)
    return;
  S = skipLoopWrappers(S);
  if (auto *TD = stmt_dyn_cast<OMPLoopTransformationDirective>(S)) {
    collectLoopPrivateIVs(TD->getAssociatedStmt(), TD->getLoopsNumber(), Out);
    return;
  }
  if (Depth == 0)
    return;
  if (auto *For = stmt_dyn_cast<ForStmt>(S)) {
    if (VarDecl *IV = getLoopIterationVar(For))
      Out.insert(IV);
    collectLoopPrivateIVs(For->getBody(), Depth - 1, Out);
  }
}

/// All variables a directive makes safe to write inside its region:
/// explicit data-sharing clauses plus the associated-loop IVs.
void addRegionSafeVars(const OMPExecutableDirective *D,
                       std::set<const VarDecl *> &Out) {
  addClauseVars(D, Out);
  if (const auto *LB = stmt_dyn_cast<OMPLoopBasedDirective>(D))
    collectLoopPrivateIVs(LB->getAssociatedStmt(), LB->getLoopsNumber(), Out);
}

/// Scans the body of one region for unsynchronized shared writes.
class RegionScanner {
public:
  /// An array-element or pointer write whose race-freedom depends on the
  /// subscripts; decided after the scan by the dependence analysis.
  struct IndexedWrite {
    const VarDecl *Base = nullptr; ///< null when the base is no named array
    std::string Name;
    SourceLocation Loc;
  };

  RegionScanner(DiagnosticsEngine &Diags, OpenMPDirectiveKind RegionKind,
                std::set<const VarDecl *> Safe)
      : Diags(Diags), RegionKind(RegionKind), Safe(std::move(Safe)) {}

  [[nodiscard]] std::vector<IndexedWrite> takeIndexedWrites() {
    return std::move(IndexedWrites);
  }

  void scan(Stmt *S, bool Synchronized) {
    if (!S)
      return;

    if (auto *DS = stmt_dyn_cast<DeclStmt>(S)) {
      // Declared inside the region: every thread has its own instance.
      for (VarDecl *V : DS->decls()) {
        Safe.insert(V);
        scan(V->getInit(), Synchronized);
      }
      return;
    }

    if (auto *D = stmt_dyn_cast<OMPExecutableDirective>(S)) {
      OpenMPDirectiveKind K = D->getDirectiveKind();
      if (isRaceRegionDirective(K))
        return; // analyzed as its own region
      if (isSynchronizedDirective(K)) {
        scan(D->getAssociatedStmt(), /*Synchronized=*/true);
        return;
      }
      // simd / tile / unroll are transparent: extend the safe set with
      // their clauses and (re-materialized) loop IVs, then keep scanning
      // the literal associated statement.
      auto Saved = Safe;
      addRegionSafeVars(D, Safe);
      scan(D->getAssociatedStmt(), Synchronized);
      Safe = std::move(Saved);
      return;
    }

    if (auto *UO = stmt_dyn_cast<UnaryOperator>(S)) {
      if (UO->isIncrementDecrementOp())
        checkWrite(UO->getSubExpr(), Synchronized);
    } else if (auto *BO = stmt_dyn_cast<BinaryOperator>(S)) {
      if (BO->isAssignmentOp())
        checkWrite(BO->getLHS(), Synchronized);
    }

    for (Stmt *Child : S->children())
      scan(Child, Synchronized);
  }

private:
  void checkWrite(Expr *Target, bool Synchronized) {
    Expr *E = Target->ignoreParenImpCasts();
    if (auto *DRE = stmt_dyn_cast<DeclRefExpr>(E)) {
      auto *V = decl_dyn_cast<VarDecl>(DRE->getDecl());
      if (!V || Synchronized || Safe.count(V) || isInternalVar(V))
        return;
      if (!Warned.insert(V).second)
        return;
      Diags.report(DRE->getBeginLoc(), diag::warn_analysis_shared_write_race)
          << V->getName()
          << std::string(getOpenMPDirectiveName(RegionKind));
      Diags.report(V->getLocation(), diag::note_analysis_shared_decl_here)
          << V->getName();
      return;
    }

    if (Synchronized)
      return;

    // Array-element write: resolve the (possibly multi-dimensional) base
    // and queue it for the post-scan dependence query.
    if (auto *ASE = stmt_dyn_cast<ArraySubscriptExpr>(E)) {
      Expr *B = ASE->getBase()->ignoreParenImpCasts();
      while (auto *Inner = stmt_dyn_cast<ArraySubscriptExpr>(B))
        B = Inner->getBase()->ignoreParenImpCasts();
      if (auto *BDRE = stmt_dyn_cast<DeclRefExpr>(B))
        if (auto *V = decl_dyn_cast<VarDecl>(BDRE->getDecl())) {
          if (Safe.count(V) || isInternalVar(V))
            return;
          IndexedWrites.push_back(
              {V, std::string(V->getName()), E->getBeginLoc()});
          return;
        }
      IndexedWrites.push_back({nullptr, "<expression>", E->getBeginLoc()});
      return;
    }

    // *p = ... and anything else without a named base.
    std::string Name = "<expression>";
    if (auto *UO = stmt_dyn_cast<UnaryOperator>(E))
      if (UO->getOpcode() == UnaryOperatorKind::Deref)
        if (auto *P = stmt_dyn_cast<DeclRefExpr>(
                UO->getSubExpr()->ignoreParenImpCasts()))
          Name = std::string(P->getDecl()->getName());
    IndexedWrites.push_back({nullptr, Name, E->getBeginLoc()});
  }

  DiagnosticsEngine &Diags;
  OpenMPDirectiveKind RegionKind;
  std::set<const VarDecl *> Safe;
  std::set<const VarDecl *> Warned;
  std::vector<IndexedWrite> IndexedWrites;
};

class OpenMPRaceLinter final : public ASTAnalysis {
public:
  OpenMPRaceLinter() : ASTAnalysis("openmp-race-linter") {}

  void run(TranslationUnitDecl *TU, AnalysisManager &AM) override {
    for (Decl *D : TU->decls())
      if (auto *FD = decl_dyn_cast<FunctionDecl>(D))
        if (FD->hasBody())
          findRegions(FD->getBody(), {}, AM.getDiagnostics());
  }

private:
  /// Finds region directives, threading down the set of variables already
  /// made thread-local by enclosing regions (clauses, loop IVs, and
  /// declarations inside the enclosing region).
  void findRegions(Stmt *S, std::set<const VarDecl *> Inherited,
                   DiagnosticsEngine &Diags) {
    if (!S)
      return;
    if (auto *D = stmt_dyn_cast<OMPExecutableDirective>(S)) {
      if (isRaceRegionDirective(D->getDirectiveKind())) {
        addRegionSafeVars(D, Inherited);
        RegionScanner Scanner(Diags, D->getDirectiveKind(), Inherited);
        Scanner.scan(D->getAssociatedStmt(), /*Synchronized=*/false);
        judgeIndexedWrites(D, Scanner.takeIndexedWrites(), Diags);
        collectLocalDecls(D->getAssociatedStmt(), Inherited);
      }
    }
    for (Stmt *Child : S->children())
      findRegions(Child, Inherited, Diags);
  }

  /// Decides the queued array/pointer writes of one region. For a
  /// worksharing loop, a write races exactly when the dependence analysis
  /// finds a dependence on its base carried by a parallelized level; a
  /// dependence with unknown direction, an unanalyzable nest, or a
  /// non-loop region degrade to a remark naming what was skipped and why —
  /// never to a silent pass.
  static void judgeIndexedWrites(
      const OMPExecutableDirective *D,
      std::vector<RegionScanner::IndexedWrite> Writes,
      DiagnosticsEngine &Diags) {
    if (Writes.empty())
      return;
    std::string DirName(getOpenMPDirectiveName(D->getDirectiveKind()));

    const auto *LB = stmt_dyn_cast<OMPLoopBasedDirective>(D);
    if (!LB) {
      for (const auto &W : Writes)
        Diags.report(W.Loc, diag::remark_analysis_write_skipped)
            << W.Name
            << ("'#pragma omp " + DirName +
                "' is not a worksharing loop; subscripts not analyzed");
      return;
    }

    unsigned Levels = LB->getLoopsNumber();
    DependenceInfo Info = DependenceInfo::analyze(
        const_cast<OMPLoopBasedDirective *>(LB)->getAssociatedStmt(), Levels);
    if (!Info.isAnalyzable()) {
      for (const auto &W : Writes)
        Diags.report(W.Loc, diag::remark_analysis_write_skipped)
            << W.Name << ("loop nest not analyzable: " +
                          Info.getFailureReason());
      return;
    }

    std::set<std::string> Reported;
    for (const auto &W : Writes) {
      if (!Reported.insert(W.Name).second)
        continue;
      if (!W.Base) {
        Diags.report(W.Loc, diag::remark_analysis_write_skipped)
            << W.Name << "write target is not a named array";
        continue;
      }
      const Dependence *Dep = Info.findParallelConflict(Levels, W.Base);
      if (!Dep)
        continue; // proven independent across the parallelized iterations
      unsigned Carrier = Dep->carrierLevel();
      if (Carrier < Dep->Dirs.size() && Dep->Dirs[Carrier] != DepDir::Any) {
        std::string DepStr = Dep->describe();
        Diags.report(W.Loc, diag::warn_analysis_array_write_race)
            << W.Name << ("(" + DepStr + ")") << DirName;
        if (Dep->SrcLoc.isValid() && !(Dep->SrcLoc == W.Loc))
          Diags.report(Dep->SrcLoc, diag::note_omp_dependence_source)
              << W.Name;
      } else {
        Diags.report(W.Loc, diag::remark_analysis_write_skipped)
            << W.Name
            << (Dep->Detail.empty() ? std::string("dependence direction unknown")
                                    : Dep->Detail);
      }
    }

    // Writes the dependence analysis itself had to give up on (non-affine
    // subscripts, escaped bases, unrecognized scalar updates).
    for (const SkippedAccess &SW : Info.getSkippedWrites())
      if (Reported.insert(SW.Base).second)
        Diags.report(SW.Loc, diag::remark_analysis_write_skipped)
            << SW.Base << SW.Reason;
  }

  /// Every VarDecl declared anywhere inside \p S. Used to mark
  /// block-locals of an enclosing parallel region as thread-private for
  /// nested worksharing regions.
  static void collectLocalDecls(Stmt *S, std::set<const VarDecl *> &Out) {
    if (!S)
      return;
    if (auto *DS = stmt_dyn_cast<DeclStmt>(S))
      for (VarDecl *V : DS->decls())
        Out.insert(V);
    for (Stmt *Child : S->children())
      collectLocalDecls(Child, Out);
  }
};

} // namespace

std::unique_ptr<ASTAnalysis> createOpenMPRaceLinter() {
  return std::make_unique<OpenMPRaceLinter>();
}

} // namespace mcc::analysis
