//===--- OMPRaceLinter.cpp - OpenMP data-race linter -----------------------===//
//
// Walks parallel / worksharing regions and warns on writes to variables
// that are shared by default and neither privatized, reduced,
// loop-iteration-local, nor protected by a synchronizing construct. This
// catches the two classic mistakes the paper's directives make easy to
// write: the un-privatized inner induction variable and the shared
// accumulator.
//
// Only the *syntactic* AST is walked, so every diagnostic lands on the
// user's literal code — never on a shadow node like '.capture_expr.'.
//
//===----------------------------------------------------------------------===//
#include "analysis/Analysis.h"

#include <set>

namespace mcc::analysis {

namespace {

/// Directives that start a region whose statements execute concurrently on
/// the threads of a team.
bool isRaceRegionDirective(OpenMPDirectiveKind K) {
  return K == OpenMPDirectiveKind::Parallel ||
         isOpenMPWorksharingDirective(K);
}

/// Directives whose associated statement is executed by one thread at a
/// time (or by a single thread), so writes inside are not team races.
bool isSynchronizedDirective(OpenMPDirectiveKind K) {
  return K == OpenMPDirectiveKind::Critical ||
         K == OpenMPDirectiveKind::Single ||
         K == OpenMPDirectiveKind::Master;
}

/// Internal variables synthesized by Sema are never user races.
bool isInternalVar(const VarDecl *V) {
  return V->isImplicit() || (!V->getName().empty() && V->getName()[0] == '.');
}

void addClauseVars(const OMPExecutableDirective *D,
                   std::set<const VarDecl *> &Out) {
  for (const OMPClause *C : D->clauses())
    if (const auto *VL = clause_dyn_cast<OMPVarListClause>(C))
      for (const DeclRefExpr *Ref : VL->getVarRefs())
        if (auto *V = decl_dyn_cast<VarDecl>(Ref->getDecl()))
          Out.insert(V);
}

/// Collects the predetermined-private induction variables of the loop nest
/// associated with \p S up to \p Depth loops. Loops consumed by a nested
/// transformation directive are re-materialized per iteration in the
/// generated code, so their IVs are iteration-local as well.
void collectLoopPrivateIVs(Stmt *S, unsigned Depth,
                           std::set<const VarDecl *> &Out) {
  if (!S)
    return;
  S = skipLoopWrappers(S);
  if (auto *TD = stmt_dyn_cast<OMPLoopTransformationDirective>(S)) {
    collectLoopPrivateIVs(TD->getAssociatedStmt(), TD->getLoopsNumber(), Out);
    return;
  }
  if (Depth == 0)
    return;
  if (auto *For = stmt_dyn_cast<ForStmt>(S)) {
    if (VarDecl *IV = getLoopIterationVar(For))
      Out.insert(IV);
    collectLoopPrivateIVs(For->getBody(), Depth - 1, Out);
  }
}

/// All variables a directive makes safe to write inside its region:
/// explicit data-sharing clauses plus the associated-loop IVs.
void addRegionSafeVars(const OMPExecutableDirective *D,
                       std::set<const VarDecl *> &Out) {
  addClauseVars(D, Out);
  if (const auto *LB = stmt_dyn_cast<OMPLoopBasedDirective>(D))
    collectLoopPrivateIVs(LB->getAssociatedStmt(), LB->getLoopsNumber(), Out);
}

/// Scans the body of one region for unsynchronized shared writes.
class RegionScanner {
public:
  RegionScanner(DiagnosticsEngine &Diags, OpenMPDirectiveKind RegionKind,
                std::set<const VarDecl *> Safe)
      : Diags(Diags), RegionKind(RegionKind), Safe(std::move(Safe)) {}

  void scan(Stmt *S, bool Synchronized) {
    if (!S)
      return;

    if (auto *DS = stmt_dyn_cast<DeclStmt>(S)) {
      // Declared inside the region: every thread has its own instance.
      for (VarDecl *V : DS->decls()) {
        Safe.insert(V);
        scan(V->getInit(), Synchronized);
      }
      return;
    }

    if (auto *D = stmt_dyn_cast<OMPExecutableDirective>(S)) {
      OpenMPDirectiveKind K = D->getDirectiveKind();
      if (isRaceRegionDirective(K))
        return; // analyzed as its own region
      if (isSynchronizedDirective(K)) {
        scan(D->getAssociatedStmt(), /*Synchronized=*/true);
        return;
      }
      // simd / tile / unroll are transparent: extend the safe set with
      // their clauses and (re-materialized) loop IVs, then keep scanning
      // the literal associated statement.
      auto Saved = Safe;
      addRegionSafeVars(D, Safe);
      scan(D->getAssociatedStmt(), Synchronized);
      Safe = std::move(Saved);
      return;
    }

    if (auto *UO = stmt_dyn_cast<UnaryOperator>(S)) {
      if (UO->isIncrementDecrementOp())
        checkWrite(UO->getSubExpr(), Synchronized);
    } else if (auto *BO = stmt_dyn_cast<BinaryOperator>(S)) {
      if (BO->isAssignmentOp())
        checkWrite(BO->getLHS(), Synchronized);
    }

    for (Stmt *Child : S->children())
      scan(Child, Synchronized);
  }

private:
  void checkWrite(Expr *Target, bool Synchronized) {
    auto *DRE = stmt_dyn_cast<DeclRefExpr>(Target->ignoreParenImpCasts());
    if (!DRE)
      return; // array-element / pointer writes need index analysis
    auto *V = decl_dyn_cast<VarDecl>(DRE->getDecl());
    if (!V || Synchronized || Safe.count(V) || isInternalVar(V))
      return;
    if (!Warned.insert(V).second)
      return;
    Diags.report(DRE->getBeginLoc(), diag::warn_analysis_shared_write_race)
        << V->getName()
        << std::string(getOpenMPDirectiveName(RegionKind));
    Diags.report(V->getLocation(), diag::note_analysis_shared_decl_here)
        << V->getName();
  }

  DiagnosticsEngine &Diags;
  OpenMPDirectiveKind RegionKind;
  std::set<const VarDecl *> Safe;
  std::set<const VarDecl *> Warned;
};

class OpenMPRaceLinter final : public ASTAnalysis {
public:
  OpenMPRaceLinter() : ASTAnalysis("openmp-race-linter") {}

  void run(TranslationUnitDecl *TU, AnalysisManager &AM) override {
    for (Decl *D : TU->decls())
      if (auto *FD = decl_dyn_cast<FunctionDecl>(D))
        if (FD->hasBody())
          findRegions(FD->getBody(), {}, AM.getDiagnostics());
  }

private:
  /// Finds region directives, threading down the set of variables already
  /// made thread-local by enclosing regions (clauses, loop IVs, and
  /// declarations inside the enclosing region).
  void findRegions(Stmt *S, std::set<const VarDecl *> Inherited,
                   DiagnosticsEngine &Diags) {
    if (!S)
      return;
    if (auto *D = stmt_dyn_cast<OMPExecutableDirective>(S)) {
      if (isRaceRegionDirective(D->getDirectiveKind())) {
        addRegionSafeVars(D, Inherited);
        RegionScanner(Diags, D->getDirectiveKind(), Inherited)
            .scan(D->getAssociatedStmt(), /*Synchronized=*/false);
        collectLocalDecls(D->getAssociatedStmt(), Inherited);
      }
    }
    for (Stmt *Child : S->children())
      findRegions(Child, Inherited, Diags);
  }

  /// Every VarDecl declared anywhere inside \p S. Used to mark
  /// block-locals of an enclosing parallel region as thread-private for
  /// nested worksharing regions.
  static void collectLocalDecls(Stmt *S, std::set<const VarDecl *> &Out) {
    if (!S)
      return;
    if (auto *DS = stmt_dyn_cast<DeclStmt>(S))
      for (VarDecl *V : DS->decls())
        Out.insert(V);
    for (Stmt *Child : S->children())
      collectLocalDecls(Child, Out);
  }
};

} // namespace

std::unique_ptr<ASTAnalysis> createOpenMPRaceLinter() {
  return std::make_unique<OpenMPRaceLinter>();
}

} // namespace mcc::analysis
