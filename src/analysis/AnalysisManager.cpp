//===--- AnalysisManager.cpp - Pass pipeline and shared helpers ------------===//
#include "analysis/Analysis.h"

#include "ast/ASTContext.h"

namespace mcc::analysis {

void AnalysisManager::addPass(std::unique_ptr<ASTAnalysis> Pass) {
  Passes.push_back(std::move(Pass));
}

bool AnalysisManager::run(TranslationUnitDecl *TU) {
  unsigned ErrorsBefore = Diags.getNumErrors();
  for (const auto &Pass : Passes) {
    unsigned E0 = Diags.getNumErrors();
    unsigned W0 = Diags.getNumWarnings();
    unsigned R0 = Diags.getNumRemarks();
    Pass->run(TU, *this);
    Stats.push_back({Pass->getName(), Diags.getNumWarnings() - W0,
                     Diags.getNumErrors() - E0, Diags.getNumRemarks() - R0});
  }
  return Diags.getNumErrors() == ErrorsBefore;
}

void registerDefaultAnalyses(AnalysisManager &AM, bool EnableLinters,
                             bool EnableVerifier) {
  if (EnableVerifier)
    AM.addPass(createPostTransformVerifier());
  if (EnableLinters) {
    AM.addPass(createOpenMPRaceLinter());
    AM.addPass(createCanonicalLoopConformanceCheck());
  }
}

std::string getKnownAnalysisPassNames() {
  return "openmp-race-linter, canonical-loop-conformance, deps";
}

std::string registerAnalysesByName(AnalysisManager &AM,
                                   std::span<const std::string> Names,
                                   bool EnableVerifier) {
  bool Race = false, Conformance = false, Deps = false;
  for (const std::string &N : Names) {
    if (N == "openmp-race-linter")
      Race = true;
    else if (N == "canonical-loop-conformance")
      Conformance = true;
    else if (N == "deps")
      Deps = true;
    else
      return N;
  }
  if (EnableVerifier)
    AM.addPass(createPostTransformVerifier());
  // Canonical pipeline order, independent of the order requested.
  if (Race)
    AM.addPass(createOpenMPRaceLinter());
  if (Conformance)
    AM.addPass(createCanonicalLoopConformanceCheck());
  if (Deps)
    AM.addPass(createDependenceReporter());
  return {};
}

Stmt *skipLoopWrappers(Stmt *S) {
  for (;;) {
    if (auto *Cap = stmt_dyn_cast<CapturedStmt>(S)) {
      S = Cap->getCapturedStmt();
      continue;
    }
    if (auto *CL = stmt_dyn_cast<OMPCanonicalLoop>(S)) {
      S = CL->getLoopStmt();
      continue;
    }
    if (auto *CS = stmt_dyn_cast<CompoundStmt>(S)) {
      if (CS->size() == 1) {
        S = CS->body()[0];
        continue;
      }
    }
    return S;
  }
}

VarDecl *getLoopIterationVar(const ForStmt *Loop) {
  Stmt *Init = Loop->getInit();
  if (!Init)
    return nullptr;
  if (auto *DS = stmt_dyn_cast<DeclStmt>(Init)) {
    if (DS->isSingleDecl())
      return DS->getSingleDecl();
    return nullptr;
  }
  if (auto *BO = stmt_dyn_cast<BinaryOperator>(Init)) {
    if (BO->getOpcode() == BinaryOperatorKind::Assign)
      if (auto *DRE =
              stmt_dyn_cast<DeclRefExpr>(BO->getLHS()->ignoreParenImpCasts()))
        return decl_dyn_cast<VarDecl>(DRE->getDecl());
  }
  return nullptr;
}

} // namespace mcc::analysis
