//===--- DependenceReporter.cpp - --analyze=deps report pass ---------------===//
//
// Prints, as remarks, what the dependence analysis can prove about every
// top-level loop nest of the translation unit: the nest shape, each
// dependence with its direction/distance vector, and the verdict of the
// transform-legality oracle for the transformations the compiler supports
// (reverse of each level, interchange of the outer two levels, fusion of
// adjacent sibling loops, distribution of a multi-statement body). This is
// the human-facing window into the
// machinery Sema consults when it refuses an illegal #pragma omp reverse /
// interchange.
//
//===----------------------------------------------------------------------===//
#include "analysis/Analysis.h"
#include "analysis/DependenceAnalysis.h"

#include <set>
#include <vector>

namespace mcc::analysis {

namespace {

/// Collects every ForStmt of a function body in pre-order, plus the pairs
/// of ForStmts that are textually adjacent in the same CompoundStmt (the
/// fusion candidates).
struct LoopCollector {
  std::vector<ForStmt *> Loops;
  std::vector<std::pair<ForStmt *, ForStmt *>> Siblings;

  void walk(Stmt *S) {
    if (!S)
      return;
    if (auto *For = stmt_dyn_cast<ForStmt>(S))
      Loops.push_back(For);
    if (auto *CS = stmt_dyn_cast<CompoundStmt>(S)) {
      ForStmt *Prev = nullptr;
      for (Stmt *Child : CS->body()) {
        auto *Next = stmt_dyn_cast<ForStmt>(Child);
        if (Prev && Next)
          Siblings.emplace_back(Prev, Next);
        Prev = Next;
      }
    }
    for (Stmt *Child : S->children())
      walk(Child);
  }
};

std::string legalityWord(const Legality &L) {
  if (L)
    return "yes";
  return "no (" + L.Reason + ")";
}

class DependenceReporter final : public ASTAnalysis {
public:
  DependenceReporter() : ASTAnalysis("deps") {}

  void run(TranslationUnitDecl *TU, AnalysisManager &AM) override {
    DiagnosticsEngine &Diags = AM.getDiagnostics();
    for (Decl *D : TU->decls())
      if (auto *FD = decl_dyn_cast<FunctionDecl>(D))
        if (FD->hasBody())
          reportFunction(FD->getBody(), Diags);
  }

private:
  void reportFunction(Stmt *Body, DiagnosticsEngine &Diags) {
    LoopCollector C;
    C.walk(Body);

    // Report each maximal nest once: analyzing a root consumes the loops
    // that became levels of its nest; inner loops of imperfect nests are
    // then reported as nests of their own.
    std::set<const ForStmt *> Consumed;
    for (ForStmt *Root : C.Loops) {
      if (Consumed.count(Root))
        continue;
      DependenceInfo Info = DependenceInfo::analyze(Root);
      if (!Info.isAnalyzable()) {
        Consumed.insert(Root);
        Diags.report(Root->getBeginLoc(), diag::remark_deps_nest)
            << 0U << 0U << 0U
            << ("; not analyzable: " + Info.getFailureReason());
        continue;
      }
      for (const NestLoop &L : Info.getLoops())
        Consumed.insert(L.Loop);
      reportNest(Root, Info, Diags);
    }

    for (auto &[First, Second] : C.Siblings) {
      DependenceInfo FI = DependenceInfo::analyze(First);
      DependenceInfo SI = DependenceInfo::analyze(Second);
      Diags.report(Second->getBeginLoc(), diag::remark_deps_legality)
          << ("fuse with preceding loop: " +
              legalityWord(DependenceInfo::isLegalFuse(FI, SI)));
    }
  }

  void reportNest(ForStmt *Root, const DependenceInfo &Info,
                  DiagnosticsEngine &Diags) {
    std::string Extra;
    if (!Info.getSkippedWrites().empty())
      Extra = ", " + std::to_string(Info.getSkippedWrites().size()) +
              " writes skipped";
    if (Info.hasCall())
      Extra += ", contains calls";
    Diags.report(Root->getBeginLoc(), diag::remark_deps_nest)
        << Info.getDepth() << Info.getNumAnalyzableAccesses()
        << static_cast<unsigned>(Info.getDependences().size()) << Extra;

    for (const Dependence &Dep : Info.getDependences()) {
      SourceLocation Loc = Dep.SrcLoc.isValid() ? Dep.SrcLoc
                                                : Root->getBeginLoc();
      Diags.report(Loc, diag::remark_deps_dep) << Dep.describe();
    }

    for (unsigned L = 0; L < Info.getDepth(); ++L)
      Diags.report(Root->getBeginLoc(), diag::remark_deps_legality)
          << ("reverse level " + std::to_string(L + 1) + ": " +
              legalityWord(Info.isLegalReverse(L)));
    if (Info.getDepth() >= 2)
      Diags.report(Root->getBeginLoc(), diag::remark_deps_legality)
          << ("interchange levels 1,2: " +
              legalityWord(Info.isLegalInterchange(0, 1)));
    // Distribution verdict only applies when the body has several
    // top-level statement groups to split into.
    if (const auto *BodyCS = stmt_dyn_cast<CompoundStmt>(Root->getBody());
        BodyCS && BodyCS->size() >= 2)
      Diags.report(Root->getBeginLoc(), diag::remark_deps_legality)
          << ("distribute into " + std::to_string(BodyCS->size()) +
              " loops: " + legalityWord(Info.isLegalDistribute()));
  }
};

} // namespace

std::unique_ptr<ASTAnalysis> createDependenceReporter() {
  return std::make_unique<DependenceReporter>();
}

} // namespace mcc::analysis
