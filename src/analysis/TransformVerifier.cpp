//===--- TransformVerifier.cpp - Post-transform shadow-AST verifier --------===//
//
// The AST analogue of ir::Verifier: after SemaOpenMPTransform has built the
// shadow ASTs, checks the structural invariants the rest of the pipeline
// relies on:
//
//   * tile applies to a perfectly nested loop nest of the directive's
//     association depth;
//   * the generated loops match the clause arguments: tile with sizes(n)
//     produces the 2n-loop floor/tile spine, unroll partial(k) produces
//     the strip-mined outer loop plus a LoopHintAttr(UnrollCount, k)
//     annotated inner loop, unroll full produces no generated loop;
//   * every shadow node's diagnostic location remaps into the literal
//     loop: it is either invalid (the DiagnosticsEngine remap policy
//     retargets it) or lies within the directive + associated statement's
//     source range.
//
// Violations are errors (err_ast_verifier): they indicate a transformation
// bug, not a user mistake.
//
//===----------------------------------------------------------------------===//
#include "analysis/Analysis.h"

#include <string>

namespace mcc::analysis {

namespace {

bool reportVerifierError(const OMPLoopTransformationDirective *Dir,
                         DiagnosticsEngine &Diags, const std::string &Msg) {
  Diags.report(Dir->getBeginLoc(), diag::err_ast_verifier) << Msg;
  return false;
}

std::string dirName(const OMPLoopTransformationDirective *Dir) {
  return std::string(getOpenMPDirectiveName(Dir->getDirectiveKind()));
}

/// Resolves a statement to the for loop it contributes, unwrapping
/// captures, canonical-loop wrappers, single-statement compounds, and
/// transformation directives (through their transformed statement, as Sema
/// does). Returns null if no for loop results; \p Deferred is set when an
/// IRBuilder-mode transformation with no shadow blocks further walking.
ForStmt *resolveToForLoop(Stmt *Cur, bool &Deferred) {
  for (;;) {
    if (auto *Cap = stmt_dyn_cast<CapturedStmt>(Cur)) {
      Cur = Cap->getCapturedStmt();
    } else if (auto *CL = stmt_dyn_cast<OMPCanonicalLoop>(Cur)) {
      Cur = CL->getLoopStmt();
    } else if (auto *CS = stmt_dyn_cast<CompoundStmt>(Cur)) {
      if (CS->size() != 1)
        return nullptr;
      Cur = CS->body()[0];
    } else if (auto *TD =
                   stmt_dyn_cast<OMPLoopTransformationDirective>(Cur)) {
      if (!TD->getTransformedStmt()) {
        Deferred = true;
        return nullptr;
      }
      Cur = TD->getTransformedStmt();
    } else {
      break;
    }
  }
  return stmt_dyn_cast<ForStmt>(Cur);
}

/// fuse associates with a statement sequence, not a nest: every member of
/// the looprange must resolve to a for loop (possibly the generated loop
/// of a preceding transformation).
bool verifyFuseSequence(const OMPFuseDirective *Fuse,
                        DiagnosticsEngine &Diags) {
  Stmt *Assoc = Fuse->getAssociatedStmt();
  if (auto *Cap = stmt_dyn_cast<CapturedStmt>(Assoc))
    Assoc = Cap->getCapturedStmt();
  auto *CS = stmt_dyn_cast<CompoundStmt>(Assoc);
  unsigned First = Fuse->getFirstLoopIndex();
  unsigned Count = Fuse->getLoopsNumber();
  if (!CS || CS->size() < First + Count)
    return reportVerifierError(
        Fuse, Diags,
        "'fuse' must be associated with a statement sequence containing "
        "its looprange");
  for (unsigned K = 0; K < Count; ++K) {
    bool Deferred = false;
    if (!resolveToForLoop(CS->body()[First + K], Deferred) && !Deferred)
      return reportVerifierError(
          Fuse, Diags,
          "fused member " + std::to_string(K + 1) +
              " does not resolve to a for loop");
  }
  return true;
}

/// Walks the literal associated nest of \p Dir checking perfect nesting to
/// the directive's association depth. Nested transformation directives are
/// consumed through their transformed statement, as Sema does.
bool verifyPerfectNesting(const OMPLoopTransformationDirective *Dir,
                          DiagnosticsEngine &Diags) {
  Stmt *Cur = Dir->getAssociatedStmt();
  unsigned N = Dir->getLoopsNumber();
  for (unsigned Depth = 0; Depth < N; ++Depth) {
    for (;;) {
      if (auto *Cap = stmt_dyn_cast<CapturedStmt>(Cur)) {
        Cur = Cap->getCapturedStmt();
      } else if (auto *CL = stmt_dyn_cast<OMPCanonicalLoop>(Cur)) {
        Cur = CL->getLoopStmt();
      } else if (auto *CS = stmt_dyn_cast<CompoundStmt>(Cur)) {
        if (CS->size() != 1) {
          std::string Msg = "'";
          Msg += dirName(Dir);
          Msg += "' requires a perfectly nested loop nest of depth ";
          Msg += std::to_string(N);
          Msg += ", but the block at depth ";
          Msg += std::to_string(Depth);
          Msg += " contains ";
          Msg += std::to_string(CS->size());
          Msg += " statements";
          return reportVerifierError(Dir, Diags, Msg);
        }
        Cur = CS->body()[0];
      } else if (auto *TD =
                     stmt_dyn_cast<OMPLoopTransformationDirective>(Cur)) {
        if (!TD->getTransformedStmt())
          return true; // IRBuilder mode: nothing further to verify here
        Cur = TD->getTransformedStmt();
      } else {
        break;
      }
    }
    auto *For = stmt_dyn_cast<ForStmt>(Cur);
    if (!For) {
      std::string Msg = "'";
      Msg += dirName(Dir);
      Msg += "' is associated with a ";
      Msg += Cur->getStmtClassName();
      Msg += " at depth ";
      Msg += std::to_string(Depth);
      Msg += " where a for loop is required";
      return reportVerifierError(Dir, Diags, Msg);
    }
    Cur = For->getBody();
  }
  return true;
}

/// The next spine loop of a generated nest: unwraps single-statement
/// compounds only (the generated spine has no other wrappers).
ForStmt *nextSpineLoop(Stmt *&Cur) {
  while (auto *CS = stmt_dyn_cast<CompoundStmt>(Cur)) {
    if (CS->size() != 1)
      return nullptr;
    Cur = CS->body()[0];
  }
  if (auto *For = stmt_dyn_cast<ForStmt>(Cur)) {
    Cur = For->getBody();
    return For;
  }
  return nullptr;
}

bool spineIVNameStartsWith(const ForStmt *For, const std::string &Prefix) {
  const VarDecl *IV = getLoopIterationVar(For);
  return IV && std::string_view(IV->getName()).substr(0, Prefix.size()) ==
                   Prefix;
}

bool verifyTileSpine(const OMPTileDirective *Tile, DiagnosticsEngine &Diags) {
  unsigned N = Tile->getLoopsNumber();

  const auto *Sizes = Tile->getSingleClause<OMPSizesClause>();
  if (!Sizes)
    return reportVerifierError(Tile, Diags,
                               "'tile' directive has no 'sizes' clause");
  if (Sizes->getNumSizes() != N)
    return reportVerifierError(
        Tile, Diags,
        "'sizes' clause has " + std::to_string(Sizes->getNumSizes()) +
            " arguments but the directive is associated with " +
            std::to_string(N) + " loops");

  // sizes(s1...sn) must generate the 2n-loop spine of the paper's Fig. 7:
  // n floor loops followed by n tile loops.
  Stmt *Cur = Tile->getTransformedStmt();
  for (unsigned Group = 0; Group < 2; ++Group) {
    const char *Kind = Group == 0 ? ".floor." : ".tile.";
    for (unsigned K = 0; K < N; ++K) {
      ForStmt *For = nextSpineLoop(Cur);
      std::string Expected = Kind + std::to_string(K) + ".iv.";
      if (!For || !spineIVNameStartsWith(For, Expected))
        return reportVerifierError(
            Tile, Diags,
            "'tile sizes(" + std::to_string(Sizes->getNumSizes()) +
                ")' must generate " + std::to_string(2 * N) +
                " loops, but generated loop " +
                std::to_string(Group * N + K) + " (expected '" + Expected +
                "*') is missing or malformed");
    }
  }
  return true;
}

bool verifyUnrollSpine(const OMPUnrollDirective *Unroll,
                       DiagnosticsEngine &Diags) {
  Stmt *Cur = Unroll->getTransformedStmt();

  if (Unroll->hasFullClause())
    return reportVerifierError(Unroll, Diags,
                               "'unroll full' must not produce a generated "
                               "loop, but a transformed statement is "
                               "present");

  ForStmt *Outer = nextSpineLoop(Cur);
  if (!Outer || !spineIVNameStartsWith(Outer, "unrolled.iv."))
    return reportVerifierError(Unroll, Diags,
                               "'unroll partial' must generate a "
                               "strip-mined outer loop ('unrolled.iv.*')");

  while (auto *CS = stmt_dyn_cast<CompoundStmt>(Cur)) {
    if (CS->size() != 1)
      break;
    Cur = CS->body()[0];
  }
  auto *Attributed = stmt_dyn_cast<AttributedStmt>(Cur);
  const LoopHintAttr *Hint = nullptr;
  if (Attributed)
    for (const Attr *A : Attributed->getAttrs())
      if (A->getKind() == Attr::Kind::LoopHint) {
        const auto *LH = static_cast<const LoopHintAttr *>(A);
        if (LH->getOption() == LoopHintAttr::OptionKind::UnrollCount)
          Hint = LH;
      }
  if (!Hint)
    return reportVerifierError(
        Unroll, Diags,
        "'unroll partial' must annotate the generated inner loop with a "
        "LoopHintAttr(UnrollCount)");

  // An explicit partial(k) must propagate k into the hint.
  if (const auto *Partial = Unroll->getSingleClause<OMPPartialClause>())
    if (const ConstantExpr *Factor = Partial->getFactor())
      if (const auto *Lit = stmt_dyn_cast<IntegerLiteral>(
              Hint->getValue()->ignoreParenImpCasts()))
        if (static_cast<std::int64_t>(Lit->getValue()) !=
            Factor->getResult())
          return reportVerifierError(
              Unroll, Diags,
              "'unroll partial(" + std::to_string(Factor->getResult()) +
                  ")' generated an unroll hint with factor " +
                  std::to_string(Lit->getValue()));

  Stmt *Sub = Attributed->getSubStmt();
  ForStmt *Inner = nextSpineLoop(Sub);
  if (!Inner || !spineIVNameStartsWith(Inner, "unroll_inner.iv."))
    return reportVerifierError(Unroll, Diags,
                               "'unroll partial' must generate an inner "
                               "loop ('unroll_inner.iv.*') under the "
                               "unroll hint");
  return true;
}

bool verifyFuseSpine(const OMPFuseDirective *Fuse, DiagnosticsEngine &Diags) {
  // The shadow is the sibling sequence with the looprange replaced by one
  // generated loop ('fused.iv') at the position of the first fused member.
  auto *CS = stmt_dyn_cast<CompoundStmt>(Fuse->getTransformedStmt());
  unsigned First = Fuse->getFirstLoopIndex();
  if (!CS || CS->size() <= First)
    return reportVerifierError(Fuse, Diags,
                               "'fuse' must generate the surrounding "
                               "sibling sequence with the fused loop in "
                               "place of the looprange");
  Stmt *Cur = CS->body()[First];
  ForStmt *For = nextSpineLoop(Cur);
  if (!For || !spineIVNameStartsWith(For, "fused.iv"))
    return reportVerifierError(
        Fuse, Diags,
        "'fuse' must generate a single fused loop ('fused.iv')");
  return true;
}

bool verifyDistributeSpine(const OMPDistributeLoopDirective *Dist,
                           DiagnosticsEngine &Diags) {
  // The shadow is a sequence of per-group loops ('distributed.<g>.iv.*')
  // preceded by the shared trip-count declaration.
  auto *CS = stmt_dyn_cast<CompoundStmt>(Dist->getTransformedStmt());
  if (!CS || CS->size() < 3)
    return reportVerifierError(
        Dist, Diags,
        "'distribute_loop' must generate the trip count plus one loop per "
        "statement group (at least two groups)");
  for (unsigned G = 1; G < CS->size(); ++G) {
    Stmt *Cur = CS->body()[G];
    ForStmt *For = nextSpineLoop(Cur);
    std::string Expected = "distributed." + std::to_string(G - 1) + ".iv.";
    if (!For || !spineIVNameStartsWith(For, Expected))
      return reportVerifierError(
          Dist, Diags,
          "'distribute_loop' generated loop " + std::to_string(G - 1) +
              " (expected '" + Expected + "*') is missing or malformed");
  }
  return true;
}

/// Checks that every node of a shadow subtree either has no location (the
/// remap policy retargets it) or a location within the literal region
/// [directive begin, max(directive end, associated stmt end)].
const Stmt *findEscapedLocation(const Stmt *S, SourceLocation Begin,
                                SourceLocation End) {
  if (!S)
    return nullptr;
  SourceLocation Loc = S->getBeginLoc();
  if (Loc.isValid() && (Loc < Begin || End < Loc))
    return S;
  for (Stmt *Child : S->children())
    if (const Stmt *Found = findEscapedLocation(Child, Begin, End))
      return Found;
  if (const auto *TD = stmt_dyn_cast<OMPLoopTransformationDirective>(S)) {
    if (const Stmt *Found =
            findEscapedLocation(TD->getPreInits(), Begin, End))
      return Found;
    if (const Stmt *Found =
            findEscapedLocation(TD->getTransformedStmt(), Begin, End))
      return Found;
  }
  return nullptr;
}

bool verifyShadowLocations(const OMPLoopTransformationDirective *Dir,
                           DiagnosticsEngine &Diags) {
  SourceLocation Begin = Dir->getBeginLoc();
  SourceLocation End = Dir->getEndLoc();
  if (const Stmt *Assoc = Dir->getAssociatedStmt())
    if (Assoc->getEndLoc().isValid() && End < Assoc->getEndLoc())
      End = Assoc->getEndLoc();

  for (const Stmt *Root : {Dir->getPreInits(), Dir->getTransformedStmt()})
    if (const Stmt *Escaped = findEscapedLocation(Root, Begin, End))
      return reportVerifierError(
          Dir, Diags,
          std::string("shadow node '") + Escaped->getStmtClassName() +
              "' of '" + dirName(Dir) +
              "' has a source location outside the literal loop; its "
              "diagnostics would not remap to user code");
  return true;
}

} // namespace

bool verifyLoopTransformation(OMPLoopTransformationDirective *Dir,
                              DiagnosticsEngine &Diags) {
  bool OK = stmt_dyn_cast<OMPFuseDirective>(Dir)
                ? verifyFuseSequence(stmt_cast<OMPFuseDirective>(Dir), Diags)
                : verifyPerfectNesting(Dir, Diags);

  if (Stmt *T = Dir->getTransformedStmt()) {
    (void)T;
    if (const auto *Tile = stmt_dyn_cast<OMPTileDirective>(Dir))
      OK = verifyTileSpine(Tile, Diags) && OK;
    else if (const auto *Unroll = stmt_dyn_cast<OMPUnrollDirective>(Dir))
      OK = verifyUnrollSpine(Unroll, Diags) && OK;
    else if (const auto *Fuse = stmt_dyn_cast<OMPFuseDirective>(Dir))
      OK = verifyFuseSpine(Fuse, Diags) && OK;
    else if (const auto *Dist = stmt_dyn_cast<OMPDistributeLoopDirective>(Dir))
      OK = verifyDistributeSpine(Dist, Diags) && OK;
    OK = verifyShadowLocations(Dir, Diags) && OK;
  } else if (const auto *Unroll = stmt_dyn_cast<OMPUnrollDirective>(Dir)) {
    // Full / heuristic unroll legitimately defers to the mid-end; nothing
    // structural to verify.
    (void)Unroll;
  }
  return OK;
}

namespace {

class PostTransformVerifier final : public ASTAnalysis {
public:
  PostTransformVerifier() : ASTAnalysis("post-transform-verifier") {}

  void run(TranslationUnitDecl *TU, AnalysisManager &AM) override {
    struct Finder : RecursiveASTVisitor<Finder> {
      DiagnosticsEngine *Diags = nullptr;
      bool visitStmt(Stmt *S) {
        if (auto *TD = stmt_dyn_cast<OMPLoopTransformationDirective>(S))
          verifyLoopTransformation(TD, *Diags);
        return true;
      }
      bool visitDecl(Decl *) { return true; }
    } F;
    F.Diags = &AM.getDiagnostics();
    F.traverseDecl(TU);
  }
};

} // namespace

std::unique_ptr<ASTAnalysis> createPostTransformVerifier() {
  return std::make_unique<PostTransformVerifier>();
}

} // namespace mcc::analysis
