//===--- KMPRuntime.h - Miniature OpenMP runtime ----------------*- C++ -*-===//
//
// The runtime the "early outlining" lowering targets (paper Section 1):
// generated IR contains no OpenMP constructs, only calls to these entry
// points. A miniature libomp built on std::thread:
//
//   * fork/join thread teams (__kmpc_fork_call),
//   * static worksharing-loop chunking (__kmpc_for_static_init),
//   * dynamic / guided / static-chunked dispatching (__kmpc_dispatch_*),
//   * barriers and critical sections.
//
// All loop bookkeeping operates on the *logical iteration space* as i64
// bounds, matching the paper's normalized-iteration-counter design.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_RUNTIME_KMPRUNTIME_H
#define MCC_RUNTIME_KMPRUNTIME_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace mcc::rt {

/// Schedule identifiers shared with OpenMPIRBuilder (libomp-flavored).
enum ScheduleType : std::int32_t {
  SchedStaticChunked = 33,
  SchedStatic = 34,
  SchedDynamic = 35,
  SchedGuided = 36,
};

/// One fork/join region's team of threads.
class ThreadTeam {
public:
  explicit ThreadTeam(int NumThreads);

  [[nodiscard]] int getNumThreads() const { return NumThreads; }

  /// Blocks until every team member arrived (reusable).
  void barrier();

  // --- Dispatcher state (one worksharing loop at a time per team) ---
  void dispatchInit(int Tid, std::int32_t Sched, std::int64_t Lb,
                    std::int64_t Ub, std::int64_t Chunk);
  /// Fetches the next chunk for \p Tid; returns false when exhausted.
  bool dispatchNext(int Tid, std::int32_t *PLast, std::int64_t *PLower,
                    std::int64_t *PUpper);

  std::mutex CriticalMutex;

private:
  int NumThreads;

  // Barrier (generation-counting).
  std::mutex BarrierMutex;
  std::condition_variable BarrierCV;
  int BarrierArrived = 0;
  std::uint64_t BarrierGeneration = 0;

  // Dispatch.
  struct DispatchState {
    std::int32_t Sched = SchedDynamic;
    std::int64_t Lb = 0, Ub = -1, Chunk = 1;
    std::atomic<std::int64_t> Next{0};
    std::atomic<std::int64_t> Remaining{0};
    // Per-thread chunk index for static-chunked round-robin.
    std::vector<std::int64_t> PerThreadIndex;
    std::uint64_t Epoch = 0;
  };
  std::mutex DispatchMutex;
  DispatchState Dispatch;
  int DispatchInitCount = 0; // counts arrivals so init runs once per team
};

/// Process-wide runtime: owns default settings and the per-thread context.
class OpenMPRuntime {
public:
  static OpenMPRuntime &get();

  void setDefaultNumThreads(int N) { DefaultNumThreads = N; }
  [[nodiscard]] int getDefaultNumThreads() const { return DefaultNumThreads; }

  /// Executes \p Outlined on a fresh team. \p NumThreads <= 0 selects the
  /// default. Thread 0 runs on the calling thread; the call returns after
  /// the join (fork/join semantics of "#pragma omp parallel").
  void forkCall(const std::function<void(int Tid)> &Outlined,
                int NumThreads);

  // --- Entry points used while inside (or outside) a team ---
  [[nodiscard]] int getThreadNum() const;
  [[nodiscard]] int getNumThreads() const;
  [[nodiscard]] ThreadTeam *getCurrentTeam() const;

  void forStaticInit(std::int32_t Sched, std::int32_t *PLast,
                     std::int64_t *PLower, std::int64_t *PUpper,
                     std::int64_t *PStride, std::int64_t Incr,
                     std::int64_t Chunk) const;
  void forStaticFini() const {}

  void dispatchInit(std::int32_t Sched, std::int64_t Lb, std::int64_t Ub,
                    std::int64_t Chunk) const;
  bool dispatchNext(std::int32_t *PLast, std::int64_t *PLower,
                    std::int64_t *PUpper) const;

  void barrier() const;
  void critical() const;
  void endCritical() const;

  /// Number of fork/join regions executed (observability for tests).
  std::atomic<std::uint64_t> NumForkJoins{0};

private:
  OpenMPRuntime() = default;
  int DefaultNumThreads = 4;
};

} // namespace mcc::rt

#endif // MCC_RUNTIME_KMPRUNTIME_H
