//===--- KMPRuntime.h - Miniature OpenMP runtime ----------------*- C++ -*-===//
//
// The runtime the "early outlining" lowering targets (paper Section 1):
// generated IR contains no OpenMP constructs, only calls to these entry
// points. A miniature libomp built on std::thread:
//
//   * fork/join thread teams (__kmpc_fork_call) served by a persistent
//     "hot team" worker pool — workers are created once and re-dispatched
//     across consecutive parallel regions instead of being respawned,
//   * static worksharing-loop chunking (__kmpc_for_static_init),
//   * dynamic / guided / static-chunked dispatching (__kmpc_dispatch_*),
//     lock-free in the steady state,
//   * sense-reversing spin-then-block barriers and critical sections.
//
// All loop bookkeeping operates on the *logical iteration space* as i64
// bounds, matching the paper's normalized-iteration-counter design.
//
// Waiting policy: every wait site (worker parking, fork/join, barrier)
// first spins on a std::atomic with exponential backoff, then falls back
// to a mutex+condvar sleep. The spin budget adapts to the machine — a
// team that oversubscribes the hardware blocks immediately, because a
// spinning waiter would only steal cycles from the thread it waits for.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_RUNTIME_KMPRUNTIME_H
#define MCC_RUNTIME_KMPRUNTIME_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mcc::rt {

/// Alignment used to keep per-thread hot state on distinct cache lines.
inline constexpr std::size_t CacheLineBytes = 64;

/// Schedule identifiers shared with OpenMPIRBuilder (libomp-flavored).
enum ScheduleType : std::int32_t {
  SchedStaticChunked = 33,
  SchedStatic = 34,
  SchedDynamic = 35,
  SchedGuided = 36,
};

/// One fork/join region's team of threads.
///
/// Hot teams are owned by OpenMPRuntime and reused across consecutive
/// parallel regions of the same width; transient (nested/oversubscribed)
/// regions build a short-lived team on the stack.
class ThreadTeam {
public:
  explicit ThreadTeam(int NumThreads);

  [[nodiscard]] int getNumThreads() const { return NumThreads; }

  /// Sense-reversing spin-then-block barrier (reusable). The "sense" is a
  /// monotonically increasing generation word rather than a flipped bool,
  /// which keeps consecutive phases ABA-safe for sleepers that wake late.
  void barrier();

  // --- Dispatcher state (one worksharing loop at a time per team) ---
  void dispatchInit(int Tid, std::int32_t Sched, std::int64_t Lb,
                    std::int64_t Ub, std::int64_t Chunk);
  /// Fetches the next chunk for \p Tid; returns false when exhausted.
  /// Lock-free: dynamic uses fetch_add, guided a compare-exchange loop,
  /// static-chunked per-thread (cache-line-padded) indices.
  bool dispatchNext(int Tid, std::int32_t *PLast, std::int64_t *PLower,
                    std::int64_t *PUpper);
  void dispatchFini(int Tid);

  std::mutex CriticalMutex;

private:
  int NumThreads;

  // Barrier: arrival counter + generation ("sense") word on separate cache
  // lines, with a condvar fallback for waiters that exhaust their spin.
  alignas(CacheLineBytes) std::atomic<int> BarrierArrived{0};
  alignas(CacheLineBytes) std::atomic<std::uint64_t> BarrierSense{0};
  std::mutex BarrierMutex;
  std::condition_variable BarrierCV;

  // Dispatch. Bounds/schedule are written once per epoch under
  // DispatchMutex (the only remaining lock, init-path only); the hot
  // per-chunk path touches only Next / PerThreadIndex.
  struct alignas(CacheLineBytes) PaddedIndex {
    std::int64_t Value = 0;
  };
  struct DispatchState {
    std::int32_t Sched = SchedDynamic;
    std::int64_t Lb = 0, Ub = -1, Chunk = 1;
    alignas(CacheLineBytes) std::atomic<std::int64_t> Next{0};
    // Per-thread chunk index for static-chunked round-robin, padded to
    // cache-line granularity so neighbours do not false-share.
    std::vector<PaddedIndex> PerThreadIndex;
  };
  std::mutex DispatchMutex; // guards epoch initialization only
  DispatchState Dispatch;
  int DispatchInitCount = 0; // counts arrivals so init runs once per epoch
};

/// Process-wide runtime: owns default settings, the hot-team worker pool,
/// observability counters, and the per-thread context.
class OpenMPRuntime {
public:
  /// Observability counters (all atomic; queryable from tests, printed by
  /// `minicc --rt-stats`).
  struct Stats {
    std::atomic<std::uint64_t> NumForkJoins{0};
    std::atomic<std::uint64_t> NumHotTeamForks{0};   // served by the pool
    std::atomic<std::uint64_t> NumTransientForks{0}; // nested/contended
    std::atomic<std::uint64_t> NumTeamReuses{0};     // hot team recycled
    std::atomic<std::uint64_t> NumPoolThreadsSpawned{0};
    std::atomic<std::uint64_t> NumTransientThreadsSpawned{0};
    std::atomic<std::uint64_t> NumChunksStatic{0}; // for_static_init calls
    std::atomic<std::uint64_t> NumChunksStaticChunked{0};
    std::atomic<std::uint64_t> NumChunksDynamic{0};
    std::atomic<std::uint64_t> NumChunksGuided{0};
    std::atomic<std::uint64_t> BarrierSpinWakes{0};
    std::atomic<std::uint64_t> BarrierSleepWakes{0};
    std::atomic<std::uint64_t> WorkerSpinWakes{0};
    std::atomic<std::uint64_t> WorkerSleepWakes{0};
  };

  /// Plain (non-atomic) copy of Stats for assertions and printing.
  struct StatsSnapshot {
    std::uint64_t NumForkJoins, NumHotTeamForks, NumTransientForks,
        NumTeamReuses, NumPoolThreadsSpawned, NumTransientThreadsSpawned,
        NumChunksStatic, NumChunksStaticChunked, NumChunksDynamic,
        NumChunksGuided, BarrierSpinWakes, BarrierSleepWakes,
        WorkerSpinWakes, WorkerSleepWakes;
  };

  static OpenMPRuntime &get();
  ~OpenMPRuntime();

  void setDefaultNumThreads(int N) {
    DefaultNumThreads.store(N, std::memory_order_relaxed);
  }
  [[nodiscard]] int getDefaultNumThreads() const {
    return DefaultNumThreads.load(std::memory_order_relaxed);
  }

  /// Hot teams on (default): top-level regions reuse pooled workers.
  /// Off: every fork spawns transient threads (the pre-pool behaviour,
  /// kept selectable for A/B measurement in bench_runtime_overhead).
  void setHotTeamsEnabled(bool On) {
    HotTeamsEnabled.store(On, std::memory_order_relaxed);
  }
  [[nodiscard]] bool hotTeamsEnabled() const {
    return HotTeamsEnabled.load(std::memory_order_relaxed);
  }

  /// Spin budget before a waiter blocks. Negative (default) = adaptive:
  /// ~8k spins when the team fits the hardware, 0 when oversubscribed.
  /// 0 forces immediate sleep; large values force the spin path (tests).
  void setSpinCount(int N) {
    SpinCountOverride.store(N, std::memory_order_relaxed);
  }
  [[nodiscard]] int spinCount() const {
    return SpinCountOverride.load(std::memory_order_relaxed);
  }

  /// Resolved spin budget for a wait involving \p Waiters runnable
  /// threads (team size for barriers, team size for fork/join parking).
  [[nodiscard]] int effectiveSpinCount(int Waiters) const;

  /// Executes \p Outlined on a team of \p NumThreads (<= 0 selects the
  /// default). Thread 0 runs on the calling thread; the call returns after
  /// the join (fork/join semantics of "#pragma omp parallel"). Top-level
  /// regions are served by the persistent pool; nested regions — and
  /// concurrent top-level forks that find the pool busy — fall back to
  /// transient std::threads.
  void forkCall(const std::function<void(int Tid)> &Outlined,
                int NumThreads);

  // --- Entry points used while inside (or outside) a team ---
  [[nodiscard]] int getThreadNum() const;
  [[nodiscard]] int getNumThreads() const;
  [[nodiscard]] ThreadTeam *getCurrentTeam() const;

  void forStaticInit(std::int32_t Sched, std::int32_t *PLast,
                     std::int64_t *PLower, std::int64_t *PUpper,
                     std::int64_t *PStride, std::int64_t Incr,
                     std::int64_t Chunk) const;
  void forStaticFini() const {}

  void dispatchInit(std::int32_t Sched, std::int64_t Lb, std::int64_t Ub,
                    std::int64_t Chunk) const;
  bool dispatchNext(std::int32_t *PLast, std::int64_t *PLower,
                    std::int64_t *PUpper) const;
  void dispatchFini() const;

  void barrier() const;
  void critical() const;
  void endCritical() const;

  // --- Observability & lifecycle ---
  Stats &stats() { return Counters; }
  [[nodiscard]] StatsSnapshot statsSnapshot() const;
  void resetStats();
  /// Human-readable counter dump (the `minicc --rt-stats` payload).
  [[nodiscard]] std::string renderStats() const;

  /// Joins and destroys all pooled workers and drops the cached hot team.
  /// Safe to call repeatedly; the pool respawns lazily on the next fork.
  /// Tests call this for deterministic counters and TSan-clean exits.
  void shutdown();

private:
  OpenMPRuntime();

  // One pooled worker. Each slot owns its park/wake state so the master
  // wakes exactly the workers a region needs; slots live in a deque for
  // stable addresses across lazy pool growth.
  struct alignas(CacheLineBytes) WorkerSlot {
    std::atomic<std::uint64_t> GoEpoch{0}; // master bumps to dispatch
    std::atomic<bool> Sleeping{false};
    std::atomic<bool> Exit{false};
    std::mutex SleepMutex;
    std::condition_variable SleepCV;
    std::thread Thread;
    std::uint64_t SeenEpoch = 0; // worker-local
  };

  /// What the currently dispatched region runs. Written by the master
  /// before the GoEpoch release-store, read by workers after the acquire.
  struct RegionDesc {
    const std::function<void(int)> *Outlined = nullptr;
    ThreadTeam *Team = nullptr;
    int NumWorkers = 0;
  };

  void workerLoop(WorkerSlot &Slot, int PoolIndex);
  void ensurePoolSize(int NumWorkers);
  void runHotRegion(const std::function<void(int)> &Outlined, int N);
  void runTransientRegion(const std::function<void(int)> &Outlined, int N);

  // Config knobs are atomic: parked pool workers consult the spin budget
  // concurrently with tests/benchmarks mutating it.
  std::atomic<int> DefaultNumThreads{4};
  std::atomic<bool> HotTeamsEnabled{true};
  std::atomic<int> SpinCountOverride{-1};

  // Pool state; ForkMutex serializes top-level pool users (a concurrent
  // top-level fork that fails the try_lock goes transient instead).
  std::mutex ForkMutex;
  std::deque<WorkerSlot> Pool;
  std::unique_ptr<ThreadTeam> HotTeam;
  RegionDesc CurrentRegion;
  std::uint64_t PoolEpoch = 0;

  // Fork/join completion: workers count in, the master spin-then-blocks.
  alignas(CacheLineBytes) std::atomic<int> JoinCount{0};
  std::mutex JoinMutex;
  std::condition_variable JoinCV;

  Stats Counters;
};

} // namespace mcc::rt

#endif // MCC_RUNTIME_KMPRUNTIME_H
