#include "runtime/KMPRuntime.h"

#include <algorithm>
#include <cassert>
#include <thread>

namespace mcc::rt {

namespace {
struct ThreadContext {
  ThreadTeam *Team = nullptr;
  int Tid = 0;
};
thread_local ThreadContext CurrentContext;
} // namespace

// ===--------------------------- ThreadTeam ---------------------------=== //

ThreadTeam::ThreadTeam(int NumThreads) : NumThreads(NumThreads) {
  Dispatch.PerThreadIndex.resize(static_cast<std::size_t>(NumThreads), 0);
}

void ThreadTeam::barrier() {
  std::unique_lock<std::mutex> Lock(BarrierMutex);
  std::uint64_t Gen = BarrierGeneration;
  if (++BarrierArrived == NumThreads) {
    BarrierArrived = 0;
    ++BarrierGeneration;
    BarrierCV.notify_all();
    return;
  }
  BarrierCV.wait(Lock, [&] { return BarrierGeneration != Gen; });
}

void ThreadTeam::dispatchInit(int Tid, std::int32_t Sched, std::int64_t Lb,
                              std::int64_t Ub, std::int64_t Chunk) {
  (void)Tid;
  std::lock_guard<std::mutex> Lock(DispatchMutex);
  // Every team member calls dispatch_init; the first arrival of an epoch
  // initializes the shared state.
  if (DispatchInitCount == 0) {
    Dispatch.Sched = Sched;
    Dispatch.Lb = Lb;
    Dispatch.Ub = Ub;
    Dispatch.Chunk = std::max<std::int64_t>(Chunk, 1);
    Dispatch.Next.store(Lb);
    Dispatch.Remaining.store(Ub >= Lb ? Ub - Lb + 1 : 0);
    std::fill(Dispatch.PerThreadIndex.begin(),
              Dispatch.PerThreadIndex.end(), 0);
    ++Dispatch.Epoch;
  }
  DispatchInitCount = (DispatchInitCount + 1) % NumThreads;
}

bool ThreadTeam::dispatchNext(int Tid, std::int32_t *PLast,
                              std::int64_t *PLower, std::int64_t *PUpper) {
  switch (Dispatch.Sched) {
  case SchedStaticChunked: {
    // Deterministic round-robin: thread t takes chunks t, t+T, t+2T, ...
    std::int64_t ChunkIndex =
        Dispatch.PerThreadIndex[static_cast<std::size_t>(Tid)];
    std::int64_t Start =
        Dispatch.Lb + (ChunkIndex * NumThreads + Tid) * Dispatch.Chunk;
    if (Start > Dispatch.Ub)
      return false;
    Dispatch.PerThreadIndex[static_cast<std::size_t>(Tid)] = ChunkIndex + 1;
    std::int64_t End = std::min(Start + Dispatch.Chunk - 1, Dispatch.Ub);
    *PLower = Start;
    *PUpper = End;
    *PLast = End == Dispatch.Ub;
    return true;
  }
  case SchedGuided: {
    std::lock_guard<std::mutex> Lock(DispatchMutex);
    std::int64_t Next = Dispatch.Next.load(std::memory_order_relaxed);
    if (Next > Dispatch.Ub)
      return false;
    std::int64_t Remaining = Dispatch.Ub - Next + 1;
    // Guided: proportional chunks, never below the minimum chunk size.
    std::int64_t Size =
        std::max<std::int64_t>(Remaining / (2 * NumThreads), Dispatch.Chunk);
    Size = std::min(Size, Remaining);
    Dispatch.Next.store(Next + Size, std::memory_order_relaxed);
    *PLower = Next;
    *PUpper = Next + Size - 1;
    *PLast = *PUpper == Dispatch.Ub;
    return true;
  }
  case SchedDynamic:
  default: {
    std::int64_t Start =
        Dispatch.Next.fetch_add(Dispatch.Chunk, std::memory_order_relaxed);
    if (Start > Dispatch.Ub)
      return false;
    std::int64_t End = std::min(Start + Dispatch.Chunk - 1, Dispatch.Ub);
    *PLower = Start;
    *PUpper = End;
    *PLast = End == Dispatch.Ub;
    return true;
  }
  }
}

// ===-------------------------- OpenMPRuntime -------------------------=== //

OpenMPRuntime &OpenMPRuntime::get() {
  static OpenMPRuntime Instance;
  return Instance;
}

int OpenMPRuntime::getThreadNum() const { return CurrentContext.Tid; }

int OpenMPRuntime::getNumThreads() const {
  return CurrentContext.Team ? CurrentContext.Team->getNumThreads() : 1;
}

ThreadTeam *OpenMPRuntime::getCurrentTeam() const {
  return CurrentContext.Team;
}

void OpenMPRuntime::forkCall(const std::function<void(int)> &Outlined,
                             int NumThreads) {
  int N = NumThreads > 0 ? NumThreads : DefaultNumThreads;
  ++NumForkJoins;

  ThreadTeam Team(N);
  ThreadContext SavedContext = CurrentContext;

  std::vector<std::thread> Workers;
  Workers.reserve(static_cast<std::size_t>(N - 1));
  for (int Tid = 1; Tid < N; ++Tid) {
    Workers.emplace_back([&Team, &Outlined, Tid] {
      CurrentContext.Team = &Team;
      CurrentContext.Tid = Tid;
      Outlined(Tid);
      CurrentContext = ThreadContext{};
    });
  }
  // The encountering thread becomes thread 0 of the team.
  CurrentContext.Team = &Team;
  CurrentContext.Tid = 0;
  Outlined(0);
  CurrentContext = SavedContext;

  for (std::thread &W : Workers)
    W.join();
}

void OpenMPRuntime::forStaticInit(std::int32_t Sched, std::int32_t *PLast,
                                  std::int64_t *PLower, std::int64_t *PUpper,
                                  std::int64_t *PStride, std::int64_t Incr,
                                  std::int64_t Chunk) const {
  (void)Sched;
  (void)Chunk;
  assert(Incr == 1 && "logical iteration space uses unit increments");
  (void)Incr;
  int NumThreads = getNumThreads();
  int Tid = getThreadNum();
  std::int64_t Lb = *PLower;
  std::int64_t Ub = *PUpper;
  std::int64_t Total = Ub >= Lb ? Ub - Lb + 1 : 0;

  // schedule(static) without a chunk: one balanced contiguous chunk per
  // thread, the first (Total % NumThreads) threads get one extra item.
  std::int64_t Base = Total / NumThreads;
  std::int64_t Extra = Total % NumThreads;
  std::int64_t MyCount = Base + (Tid < Extra ? 1 : 0);
  std::int64_t MyStart =
      Lb + Tid * Base + std::min<std::int64_t>(Tid, Extra);
  if (MyCount == 0) {
    // Empty range: lb > ub signals no iterations.
    *PLower = 1;
    *PUpper = 0;
    *PLast = 0;
  } else {
    *PLower = MyStart;
    *PUpper = MyStart + MyCount - 1;
    *PLast = (*PUpper == Ub) ? 1 : 0;
  }
  *PStride = Total;
}

void OpenMPRuntime::dispatchInit(std::int32_t Sched, std::int64_t Lb,
                                 std::int64_t Ub, std::int64_t Chunk) const {
  ThreadTeam *Team = getCurrentTeam();
  if (Team) {
    Team->dispatchInit(getThreadNum(), Sched, Lb, Ub, Chunk);
    return;
  }
  // Outside a parallel region: serial team of one.
  static thread_local ThreadTeam SerialTeam(1);
  CurrentContext.Team = &SerialTeam;
  SerialTeam.dispatchInit(0, Sched, Lb, Ub, Chunk);
}

bool OpenMPRuntime::dispatchNext(std::int32_t *PLast, std::int64_t *PLower,
                                 std::int64_t *PUpper) const {
  ThreadTeam *Team = getCurrentTeam();
  assert(Team && "dispatch_next outside a worksharing loop");
  return Team->dispatchNext(getThreadNum(), PLast, PLower, PUpper);
}

void OpenMPRuntime::barrier() const {
  if (ThreadTeam *Team = getCurrentTeam())
    Team->barrier();
}

void OpenMPRuntime::critical() const {
  if (ThreadTeam *Team = getCurrentTeam())
    Team->CriticalMutex.lock();
}

void OpenMPRuntime::endCritical() const {
  if (ThreadTeam *Team = getCurrentTeam())
    Team->CriticalMutex.unlock();
}

} // namespace mcc::rt
