#include "runtime/KMPRuntime.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mcc::rt {

namespace {

struct ThreadContext {
  ThreadTeam *Team = nullptr;
  int Tid = 0;
  // Set while a serial (outside-parallel) worksharing loop borrows the
  // thread-local serial team; cleared when the loop drains so the team
  // pointer does not leak past the loop.
  bool SerialDispatch = false;
};
thread_local ThreadContext CurrentContext;

/// One spin-wait step with exponential backoff: the pause burst doubles
/// until it saturates, after which the waiter yields its timeslice.
struct Backoff {
  int Burst = 1;
  void pause() {
    for (int I = 0; I < Burst; ++I) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#elif defined(__aarch64__)
      asm volatile("isb" ::: "memory");
#else
      std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
    }
    if (Burst < 64)
      Burst <<= 1;
    else
      std::this_thread::yield();
  }
};

/// Spin on \p Done until it returns true or the budget runs out.
/// Returns true when the condition was met while spinning.
template <typename Pred> bool spinUntil(Pred Done, int SpinBudget) {
  Backoff BO;
  for (int I = 0; I < SpinBudget; ++I) {
    if (Done())
      return true;
    BO.pause();
  }
  return false;
}

} // namespace

// ===--------------------------- ThreadTeam ---------------------------=== //

ThreadTeam::ThreadTeam(int NumThreads) : NumThreads(NumThreads) {
  Dispatch.PerThreadIndex.resize(static_cast<std::size_t>(NumThreads));
}

void ThreadTeam::barrier() {
  if (NumThreads <= 1)
    return;
  OpenMPRuntime &RT = OpenMPRuntime::get();
  std::uint64_t Sense = BarrierSense.load(std::memory_order_acquire);
  if (BarrierArrived.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      NumThreads) {
    // Last arriver: reset the counter for the next phase *before* flipping
    // the sense, then wake sleepers. Taking the mutex around notify_all
    // pairs with the waiter's locked predicate check (no lost wakeups).
    BarrierArrived.store(0, std::memory_order_relaxed);
    BarrierSense.store(Sense + 1, std::memory_order_release);
    {
      std::lock_guard<std::mutex> Lock(BarrierMutex);
      BarrierCV.notify_all();
    }
    return;
  }
  auto Released = [&] {
    return BarrierSense.load(std::memory_order_acquire) != Sense;
  };
  if (spinUntil(Released, RT.effectiveSpinCount(NumThreads))) {
    RT.stats().BarrierSpinWakes.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    std::unique_lock<std::mutex> Lock(BarrierMutex);
    BarrierCV.wait(Lock, Released);
  }
  RT.stats().BarrierSleepWakes.fetch_add(1, std::memory_order_relaxed);
}

void ThreadTeam::dispatchInit(int Tid, std::int32_t Sched, std::int64_t Lb,
                              std::int64_t Ub, std::int64_t Chunk) {
  (void)Tid;
  // Every team member calls dispatch_init; the first arrival of an epoch
  // initializes the shared state. This is the only lock on the dispatch
  // path — the per-chunk fast path below is lock-free.
  std::lock_guard<std::mutex> Lock(DispatchMutex);
  if (DispatchInitCount == 0) {
    Dispatch.Sched = Sched;
    Dispatch.Lb = Lb;
    Dispatch.Ub = Ub;
    Dispatch.Chunk = std::max<std::int64_t>(Chunk, 1);
    Dispatch.Next.store(Lb, std::memory_order_relaxed);
    for (PaddedIndex &PI : Dispatch.PerThreadIndex)
      PI.Value = 0;
  }
  DispatchInitCount = (DispatchInitCount + 1) % NumThreads;
}

bool ThreadTeam::dispatchNext(int Tid, std::int32_t *PLast,
                              std::int64_t *PLower, std::int64_t *PUpper) {
  OpenMPRuntime::Stats &S = OpenMPRuntime::get().stats();
  switch (Dispatch.Sched) {
  case SchedStaticChunked: {
    // Deterministic round-robin: thread t takes chunks t, t+T, t+2T, ...
    // PerThreadIndex entries are cache-line-padded, so this touches no
    // shared line.
    std::int64_t ChunkIndex =
        Dispatch.PerThreadIndex[static_cast<std::size_t>(Tid)].Value;
    std::int64_t Start =
        Dispatch.Lb + (ChunkIndex * NumThreads + Tid) * Dispatch.Chunk;
    if (Start > Dispatch.Ub)
      return false;
    Dispatch.PerThreadIndex[static_cast<std::size_t>(Tid)].Value =
        ChunkIndex + 1;
    std::int64_t End = std::min(Start + Dispatch.Chunk - 1, Dispatch.Ub);
    *PLower = Start;
    *PUpper = End;
    *PLast = End == Dispatch.Ub;
    S.NumChunksStaticChunked.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  case SchedGuided: {
    // Lock-free guided: claim a proportional chunk with a CAS loop on
    // Next. Losing the race reloads and recomputes from the fresh value.
    std::int64_t Next = Dispatch.Next.load(std::memory_order_relaxed);
    std::int64_t Size;
    do {
      if (Next > Dispatch.Ub)
        return false;
      std::int64_t Remaining = Dispatch.Ub - Next + 1;
      // Guided: proportional chunks, never below the minimum chunk size.
      Size = std::max<std::int64_t>(Remaining / (2 * NumThreads),
                                    Dispatch.Chunk);
      Size = std::min(Size, Remaining);
    } while (!Dispatch.Next.compare_exchange_weak(
        Next, Next + Size, std::memory_order_relaxed,
        std::memory_order_relaxed));
    *PLower = Next;
    *PUpper = Next + Size - 1;
    *PLast = *PUpper == Dispatch.Ub;
    S.NumChunksGuided.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  case SchedDynamic:
  default: {
    std::int64_t Start =
        Dispatch.Next.fetch_add(Dispatch.Chunk, std::memory_order_relaxed);
    if (Start > Dispatch.Ub)
      return false;
    std::int64_t End = std::min(Start + Dispatch.Chunk - 1, Dispatch.Ub);
    *PLower = Start;
    *PUpper = End;
    *PLast = End == Dispatch.Ub;
    S.NumChunksDynamic.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  }
}

void ThreadTeam::dispatchFini(int Tid) { (void)Tid; }

// ===-------------------------- OpenMPRuntime -------------------------=== //

OpenMPRuntime &OpenMPRuntime::get() {
  static OpenMPRuntime Instance;
  return Instance;
}

OpenMPRuntime::OpenMPRuntime() {
  if (const char *Env = std::getenv("MCC_RT_SPIN"))
    setSpinCount(std::atoi(Env));
  if (const char *Env = std::getenv("MCC_RT_HOT_TEAMS"))
    setHotTeamsEnabled(std::atoi(Env) != 0);
}

OpenMPRuntime::~OpenMPRuntime() { shutdown(); }

int OpenMPRuntime::effectiveSpinCount(int Waiters) const {
  int Override = SpinCountOverride.load(std::memory_order_relaxed);
  if (Override >= 0)
    return Override;
  static const int HW = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  // Oversubscribed: a spinning waiter steals the timeslice of the very
  // thread it is waiting for — block immediately (libomp's blocktime=0).
  if (Waiters > HW)
    return 0;
  return 8192;
}

int OpenMPRuntime::getThreadNum() const { return CurrentContext.Tid; }

int OpenMPRuntime::getNumThreads() const {
  return CurrentContext.Team ? CurrentContext.Team->getNumThreads() : 1;
}

ThreadTeam *OpenMPRuntime::getCurrentTeam() const {
  return CurrentContext.Team;
}

void OpenMPRuntime::workerLoop(WorkerSlot &Slot, int PoolIndex) {
  const int Tid = PoolIndex + 1;
  for (;;) {
    auto Dispatched = [&] {
      return Slot.GoEpoch.load(std::memory_order_acquire) != Slot.SeenEpoch;
    };
    // Budget by this worker's own slot: if it is dispatched at all, the
    // team has at least PoolIndex + 2 threads. (CurrentRegion cannot be
    // consulted here — the master may be rewriting it for a region this
    // worker is not part of.)
    bool Spun = spinUntil(Dispatched, effectiveSpinCount(PoolIndex + 2));
    if (!Spun) {
      // Publish intent to sleep, then recheck under the slot mutex. The
      // master's GoEpoch store is sequenced before its Sleeping load, so
      // either it sees Sleeping and notifies under the lock, or this
      // thread's locked predicate check sees the new epoch.
      Slot.Sleeping.store(true, std::memory_order_seq_cst);
      {
        std::unique_lock<std::mutex> Lock(Slot.SleepMutex);
        Slot.SleepCV.wait(Lock, Dispatched);
      }
      Slot.Sleeping.store(false, std::memory_order_relaxed);
    }
    if (Slot.Exit.load(std::memory_order_relaxed))
      return;
    Slot.SeenEpoch = Slot.GoEpoch.load(std::memory_order_acquire);
    (Spun ? Counters.WorkerSpinWakes : Counters.WorkerSleepWakes)
        .fetch_add(1, std::memory_order_relaxed);

    // The master wrote the region before bumping GoEpoch and will not
    // rewrite it until every dispatched worker checked in below.
    RegionDesc Region = CurrentRegion;
    CurrentContext.Team = Region.Team;
    CurrentContext.Tid = Tid;
    (*Region.Outlined)(Tid);
    CurrentContext = ThreadContext{};

    if (JoinCount.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        Region.NumWorkers) {
      std::lock_guard<std::mutex> Lock(JoinMutex);
      JoinCV.notify_one();
    }
  }
}

void OpenMPRuntime::ensurePoolSize(int NumWorkers) {
  while (static_cast<int>(Pool.size()) < NumWorkers) {
    int PoolIndex = static_cast<int>(Pool.size());
    WorkerSlot &Slot = Pool.emplace_back();
    Slot.Thread =
        std::thread([this, &Slot, PoolIndex] { workerLoop(Slot, PoolIndex); });
    Counters.NumPoolThreadsSpawned.fetch_add(1, std::memory_order_relaxed);
  }
}

void OpenMPRuntime::runHotRegion(const std::function<void(int)> &Outlined,
                                 int N) {
  Counters.NumHotTeamForks.fetch_add(1, std::memory_order_relaxed);
  if (HotTeam && HotTeam->getNumThreads() == N)
    Counters.NumTeamReuses.fetch_add(1, std::memory_order_relaxed);
  else
    HotTeam = std::make_unique<ThreadTeam>(N);
  ensurePoolSize(N - 1);

  JoinCount.store(0, std::memory_order_relaxed);
  CurrentRegion.Outlined = &Outlined;
  CurrentRegion.Team = HotTeam.get();
  CurrentRegion.NumWorkers = N - 1;
  ++PoolEpoch;
  for (int I = 0; I < N - 1; ++I) {
    WorkerSlot &Slot = Pool[static_cast<std::size_t>(I)];
    Slot.GoEpoch.store(PoolEpoch, std::memory_order_seq_cst);
    if (Slot.Sleeping.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> Lock(Slot.SleepMutex);
      Slot.SleepCV.notify_one();
    }
  }

  // The encountering thread becomes thread 0 of the team.
  ThreadContext SavedContext = CurrentContext;
  CurrentContext.Team = HotTeam.get();
  CurrentContext.Tid = 0;
  CurrentContext.SerialDispatch = false;
  std::exception_ptr MasterError;
  try {
    Outlined(0);
  } catch (...) {
    MasterError = std::current_exception();
  }
  CurrentContext = SavedContext;

  // Join: wait for every dispatched worker to check in, spinning first so
  // short regions never pay a futex round-trip.
  const int Need = N - 1;
  auto Joined = [&] {
    return JoinCount.load(std::memory_order_acquire) == Need;
  };
  if (!spinUntil(Joined, effectiveSpinCount(N))) {
    std::unique_lock<std::mutex> Lock(JoinMutex);
    JoinCV.wait(Lock, Joined);
  }
  if (MasterError)
    std::rethrow_exception(MasterError);
}

void OpenMPRuntime::runTransientRegion(
    const std::function<void(int)> &Outlined, int N) {
  Counters.NumTransientForks.fetch_add(1, std::memory_order_relaxed);
  ThreadTeam Team(N);
  ThreadContext SavedContext = CurrentContext;

  std::vector<std::thread> Workers;
  Workers.reserve(static_cast<std::size_t>(N - 1));
  for (int Tid = 1; Tid < N; ++Tid) {
    Workers.emplace_back([&Team, &Outlined, Tid] {
      CurrentContext.Team = &Team;
      CurrentContext.Tid = Tid;
      Outlined(Tid);
      CurrentContext = ThreadContext{};
    });
    Counters.NumTransientThreadsSpawned.fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  // The encountering thread becomes thread 0 of the team.
  CurrentContext.Team = &Team;
  CurrentContext.Tid = 0;
  CurrentContext.SerialDispatch = false;
  std::exception_ptr MasterError;
  try {
    Outlined(0);
  } catch (...) {
    MasterError = std::current_exception();
  }
  CurrentContext = SavedContext;

  for (std::thread &W : Workers)
    W.join();
  if (MasterError)
    std::rethrow_exception(MasterError);
}

void OpenMPRuntime::forkCall(const std::function<void(int)> &Outlined,
                             int NumThreads) {
  int N = NumThreads > 0 ? NumThreads : getDefaultNumThreads();
  Counters.NumForkJoins.fetch_add(1, std::memory_order_relaxed);

  // Hot path: a top-level region whose pool is free. Nested regions (and
  // concurrent top-level forks from other application threads) go
  // transient so pooled workers are never re-entered recursively.
  if (hotTeamsEnabled() && CurrentContext.Team == nullptr) {
    std::unique_lock<std::mutex> PoolLock(ForkMutex, std::try_to_lock);
    if (PoolLock.owns_lock()) {
      runHotRegion(Outlined, N);
      return;
    }
  }
  runTransientRegion(Outlined, N);
}

void OpenMPRuntime::forStaticInit(std::int32_t Sched, std::int32_t *PLast,
                                  std::int64_t *PLower, std::int64_t *PUpper,
                                  std::int64_t *PStride, std::int64_t Incr,
                                  std::int64_t Chunk) const {
  // Only the unchunked static schedule lowers through for_static_init
  // (chunked/dynamic schedules go through the dispatcher). Fail loudly —
  // not via assert, which vanishes in release builds — so a future
  // static-chunked lowering cannot silently receive wrong bounds.
  if (Sched != SchedStatic) {
    std::fprintf(stderr,
                 "KMPRuntime: __kmpc_for_static_init called with "
                 "unsupported schedule %d (only %d/static is lowered "
                 "through for_static_init; chunked and dynamic schedules "
                 "use __kmpc_dispatch_*)\n",
                 Sched, SchedStatic);
    std::abort();
  }
  (void)Chunk;
  assert(Incr == 1 && "logical iteration space uses unit increments");
  (void)Incr;
  OpenMPRuntime::get().Counters.NumChunksStatic.fetch_add(
      1, std::memory_order_relaxed);
  int NumThreads = getNumThreads();
  int Tid = getThreadNum();
  std::int64_t Lb = *PLower;
  std::int64_t Ub = *PUpper;
  std::int64_t Total = Ub >= Lb ? Ub - Lb + 1 : 0;

  // schedule(static) without a chunk: one balanced contiguous chunk per
  // thread, the first (Total % NumThreads) threads get one extra item.
  std::int64_t Base = Total / NumThreads;
  std::int64_t Extra = Total % NumThreads;
  std::int64_t MyCount = Base + (Tid < Extra ? 1 : 0);
  std::int64_t MyStart =
      Lb + Tid * Base + std::min<std::int64_t>(Tid, Extra);
  if (MyCount == 0) {
    // Empty range: lb > ub signals no iterations.
    *PLower = 1;
    *PUpper = 0;
    *PLast = 0;
  } else {
    *PLower = MyStart;
    *PUpper = MyStart + MyCount - 1;
    *PLast = (*PUpper == Ub) ? 1 : 0;
  }
  *PStride = Total;
}

void OpenMPRuntime::dispatchInit(std::int32_t Sched, std::int64_t Lb,
                                 std::int64_t Ub, std::int64_t Chunk) const {
  ThreadTeam *Team = getCurrentTeam();
  if (Team) {
    Team->dispatchInit(getThreadNum(), Sched, Lb, Ub, Chunk);
    return;
  }
  // Outside a parallel region: serial team of one, released again when
  // the loop drains (dispatchNext -> false) or dispatchFini runs.
  static thread_local ThreadTeam SerialTeam(1);
  CurrentContext.Team = &SerialTeam;
  CurrentContext.SerialDispatch = true;
  SerialTeam.dispatchInit(0, Sched, Lb, Ub, Chunk);
}

bool OpenMPRuntime::dispatchNext(std::int32_t *PLast, std::int64_t *PLower,
                                 std::int64_t *PUpper) const {
  ThreadTeam *Team = getCurrentTeam();
  assert(Team && "dispatch_next outside a worksharing loop");
  bool More = Team->dispatchNext(getThreadNum(), PLast, PLower, PUpper);
  if (!More && CurrentContext.SerialDispatch) {
    // The serial worksharing loop drained: restore the outside-parallel
    // context instead of leaking the serial team pointer.
    CurrentContext.Team = nullptr;
    CurrentContext.SerialDispatch = false;
  }
  return More;
}

void OpenMPRuntime::dispatchFini() const {
  if (ThreadTeam *Team = getCurrentTeam())
    Team->dispatchFini(getThreadNum());
  if (CurrentContext.SerialDispatch) {
    CurrentContext.Team = nullptr;
    CurrentContext.SerialDispatch = false;
  }
}

void OpenMPRuntime::barrier() const {
  if (ThreadTeam *Team = getCurrentTeam())
    Team->barrier();
}

void OpenMPRuntime::critical() const {
  if (ThreadTeam *Team = getCurrentTeam())
    Team->CriticalMutex.lock();
}

void OpenMPRuntime::endCritical() const {
  if (ThreadTeam *Team = getCurrentTeam())
    Team->CriticalMutex.unlock();
}

OpenMPRuntime::StatsSnapshot OpenMPRuntime::statsSnapshot() const {
  auto Load = [](const std::atomic<std::uint64_t> &A) {
    return A.load(std::memory_order_relaxed);
  };
  return StatsSnapshot{
      Load(Counters.NumForkJoins),
      Load(Counters.NumHotTeamForks),
      Load(Counters.NumTransientForks),
      Load(Counters.NumTeamReuses),
      Load(Counters.NumPoolThreadsSpawned),
      Load(Counters.NumTransientThreadsSpawned),
      Load(Counters.NumChunksStatic),
      Load(Counters.NumChunksStaticChunked),
      Load(Counters.NumChunksDynamic),
      Load(Counters.NumChunksGuided),
      Load(Counters.BarrierSpinWakes),
      Load(Counters.BarrierSleepWakes),
      Load(Counters.WorkerSpinWakes),
      Load(Counters.WorkerSleepWakes),
  };
}

void OpenMPRuntime::resetStats() {
  auto Zero = [](std::atomic<std::uint64_t> &A) {
    A.store(0, std::memory_order_relaxed);
  };
  Zero(Counters.NumForkJoins);
  Zero(Counters.NumHotTeamForks);
  Zero(Counters.NumTransientForks);
  Zero(Counters.NumTeamReuses);
  Zero(Counters.NumPoolThreadsSpawned);
  Zero(Counters.NumTransientThreadsSpawned);
  Zero(Counters.NumChunksStatic);
  Zero(Counters.NumChunksStaticChunked);
  Zero(Counters.NumChunksDynamic);
  Zero(Counters.NumChunksGuided);
  Zero(Counters.BarrierSpinWakes);
  Zero(Counters.BarrierSleepWakes);
  Zero(Counters.WorkerSpinWakes);
  Zero(Counters.WorkerSleepWakes);
}

std::string OpenMPRuntime::renderStats() const {
  StatsSnapshot S = statsSnapshot();
  char Buf[640];
  std::snprintf(
      Buf, sizeof(Buf),
      "== OpenMP runtime statistics ==\n"
      "forks:    total=%llu hot=%llu transient=%llu team-reuses=%llu\n"
      "threads:  pool-spawned=%llu transient-spawned=%llu\n"
      "chunks:   static=%llu static-chunked=%llu dynamic=%llu guided=%llu\n"
      "barriers: spin-wakes=%llu sleep-wakes=%llu\n"
      "workers:  spin-wakes=%llu sleep-wakes=%llu\n",
      static_cast<unsigned long long>(S.NumForkJoins),
      static_cast<unsigned long long>(S.NumHotTeamForks),
      static_cast<unsigned long long>(S.NumTransientForks),
      static_cast<unsigned long long>(S.NumTeamReuses),
      static_cast<unsigned long long>(S.NumPoolThreadsSpawned),
      static_cast<unsigned long long>(S.NumTransientThreadsSpawned),
      static_cast<unsigned long long>(S.NumChunksStatic),
      static_cast<unsigned long long>(S.NumChunksStaticChunked),
      static_cast<unsigned long long>(S.NumChunksDynamic),
      static_cast<unsigned long long>(S.NumChunksGuided),
      static_cast<unsigned long long>(S.BarrierSpinWakes),
      static_cast<unsigned long long>(S.BarrierSleepWakes),
      static_cast<unsigned long long>(S.WorkerSpinWakes),
      static_cast<unsigned long long>(S.WorkerSleepWakes));
  return Buf;
}

void OpenMPRuntime::shutdown() {
  std::lock_guard<std::mutex> PoolLock(ForkMutex);
  for (WorkerSlot &Slot : Pool) {
    Slot.Exit.store(true, std::memory_order_relaxed);
    Slot.GoEpoch.fetch_add(1, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> Lock(Slot.SleepMutex);
      Slot.SleepCV.notify_one();
    }
    Slot.Thread.join();
  }
  Pool.clear();
  HotTeam.reset();
  CurrentRegion = RegionDesc{};
  PoolEpoch = 0;
}

} // namespace mcc::rt
