//===--- OpenMPIRBuilder.cpp - OpenMP loop skeletons and transformations ---===//
#include "irbuilder/OpenMPIRBuilder.h"

#include <cassert>
#include <sstream>

namespace mcc::ir {

// ===------------------- CanonicalLoopInfo invariants ------------------=== //

std::string CanonicalLoopInfo::validate() const {
  std::ostringstream Err;
  auto Check = [&](bool Cond, const char *Msg) {
    if (!Cond)
      Err << "CanonicalLoopInfo: " << Msg << "\n";
  };

  Check(Preheader && Header && Cond && Body && Latch && Exit && After,
        "missing skeleton block");
  if (!Preheader || !Header || !Cond || !Body || !Latch || !Exit || !After)
    return Err.str();

  // Preheader falls through to the header.
  Instruction *PreTerm = Preheader->getTerminator();
  Check(PreTerm && PreTerm->getOpcode() == Opcode::Br &&
            !PreTerm->isConditionalBr() && PreTerm->getSuccessor(0) == Header,
        "preheader must branch unconditionally to the header");

  // Header: the IV phi, then an unconditional branch to cond.
  Check(IndVar && IndVar->getOpcode() == Opcode::Phi &&
            IndVar->getParent() == Header,
        "induction variable must be a phi in the header");
  Instruction *HeadTerm = Header->getTerminator();
  Check(HeadTerm && HeadTerm->getOpcode() == Opcode::Br &&
            !HeadTerm->isConditionalBr() && HeadTerm->getSuccessor(0) == Cond,
        "header must branch unconditionally to the cond block");

  // Cond: a comparison against the trip count, conditional branch to body
  // or exit.
  Instruction *CondTerm = Cond->getTerminator();
  Check(CondTerm && CondTerm->isConditionalBr(),
        "cond block must end in a conditional branch");
  if (CondTerm && CondTerm->isConditionalBr()) {
    Check(CondTerm->getSuccessor(0) == Body,
          "cond true-successor must be the body");
    Check(CondTerm->getSuccessor(1) == Exit,
          "cond false-successor must be the exit");
  }
  Check(TripCount != nullptr, "trip count must be identifiable");

  // IV phi: exactly two incomings, from preheader and latch.
  if (IndVar && IndVar->getOpcode() == Opcode::Phi) {
    Check(IndVar->getNumIncoming() == 2,
          "induction variable must have exactly two incoming values");
    if (IndVar->getNumIncoming() == 2) {
      bool FromPre = IndVar->getIncomingBlock(0) == Preheader ||
                     IndVar->getIncomingBlock(1) == Preheader;
      bool FromLatch = IndVar->getIncomingBlock(0) == Latch ||
                       IndVar->getIncomingBlock(1) == Latch;
      Check(FromPre, "IV must have an incoming value from the preheader");
      Check(FromLatch, "IV must have an incoming value from the latch");
    }
  }

  // Latch: increments the IV and branches back to the header.
  Instruction *LatchTerm = Latch->getTerminator();
  Check(LatchTerm && LatchTerm->getOpcode() == Opcode::Br &&
            !LatchTerm->isConditionalBr() &&
            LatchTerm->getSuccessor(0) == Header,
        "latch must branch unconditionally to the header");

  // Exit falls through to after.
  Instruction *ExitTerm = Exit->getTerminator();
  Check(ExitTerm && ExitTerm->getOpcode() == Opcode::Br &&
            !ExitTerm->isConditionalBr(),
        "exit must branch unconditionally");

  return Err.str();
}

void CanonicalLoopInfo::assertOK() const {
#ifndef NDEBUG
  std::string Err = validate();
  if (!Err.empty()) {
    fprintf(stderr, "%s", Err.c_str());
    assert(false && "CanonicalLoopInfo invariants violated");
  }
#endif
}

// ===------------------------- Helpers --------------------------------=== //

void OpenMPIRBuilder::replaceAllUsesIn(Function &F, Value *Old, Value *New) {
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      for (unsigned OpIdx = 0; OpIdx < I->getNumOperands(); ++OpIdx)
        if (I->getOperand(OpIdx) == Old)
          I->setOperand(OpIdx, New);
}

void OpenMPIRBuilder::reopenBlock(IRBuilder &B, BasicBlock *BB,
                                  const std::function<void()> &Fn) {
  assert(BB->getTerminator() && "block must be terminated");
  std::unique_ptr<Instruction> Term = BB->take(BB->size() - 1);
  BasicBlock *Saved = B.getInsertBlock();
  B.setInsertPoint(BB);
  Fn();
  BB->append(std::move(Term));
  B.setInsertPoint(Saved);
}

Function *OpenMPIRBuilder::getOrCreateRuntimeFunction(const std::string &Name) {
  const IRType *I32 = IRType::getI32();
  const IRType *I64 = IRType::getI64();
  const IRType *Ptr = IRType::getPtr();
  const IRType *Void = IRType::getVoid();

  if (Name == "__kmpc_global_thread_num")
    return M.getOrInsertFunction(Name, I32, {});
  if (Name == "__kmpc_for_static_init")
    // (gtid, schedtype, plastiter, plower, pupper, pstride, incr, chunk)
    return M.getOrInsertFunction(Name, Void,
                                 {I32, I32, Ptr, Ptr, Ptr, Ptr, I64, I64});
  if (Name == "__kmpc_for_static_fini")
    return M.getOrInsertFunction(Name, Void, {I32});
  if (Name == "__kmpc_dispatch_init")
    // (gtid, schedtype, lb, ub, chunk)
    return M.getOrInsertFunction(Name, Void, {I32, I32, I64, I64, I64});
  if (Name == "__kmpc_dispatch_next")
    // (gtid, plastiter, plower, pupper) -> i32 (0 = done)
    return M.getOrInsertFunction(Name, I32, {I32, Ptr, Ptr, Ptr});
  if (Name == "__kmpc_barrier")
    return M.getOrInsertFunction(Name, Void, {I32});
  if (Name == "__kmpc_critical")
    return M.getOrInsertFunction(Name, Void, {I32});
  if (Name == "__kmpc_end_critical")
    return M.getOrInsertFunction(Name, Void, {I32});
  if (Name == "__kmpc_fork_call")
    // (outlined fn, nargs, argv, num_threads)
    return M.getOrInsertFunction(Name, Void, {Ptr, I32, Ptr, I32});
  if (Name == "omp_get_thread_num")
    return M.getOrInsertFunction(Name, I32, {});
  if (Name == "omp_get_num_threads")
    return M.getOrInsertFunction(Name, I32, {});
  assert(false && "unknown runtime function");
  return nullptr;
}

// ===------------------------ Loop skeleton ---------------------------=== //

CanonicalLoopInfo *OpenMPIRBuilder::createLoopSkeleton(
    IRBuilder &B, Value *TripCount, BasicBlock *InsertAfter,
    const std::string &Name) {
  Function *F = InsertAfter->getParent();
  const IRType *IVTy = TripCount->getType();

  BasicBlock *Preheader =
      F->createBlockAfter(InsertAfter, Name + ".preheader");
  BasicBlock *Header = F->createBlockAfter(Preheader, Name + ".header");
  BasicBlock *Cond = F->createBlockAfter(Header, Name + ".cond");
  BasicBlock *Body = F->createBlockAfter(Cond, Name + ".body");
  BasicBlock *Latch = F->createBlockAfter(Body, Name + ".inc");
  BasicBlock *Exit = F->createBlockAfter(Latch, Name + ".exit");
  BasicBlock *After = F->createBlockAfter(Exit, Name + ".after");

  BasicBlock *Saved = B.getInsertBlock();

  // preheader -> header
  B.setInsertPoint(Preheader);
  B.createBr(Header);

  // header: iv = phi [0, preheader], [iv.next, latch]; br cond
  B.setInsertPoint(Header);
  Instruction *IV = B.createPhi(IVTy, Name + ".iv");
  B.createBr(Cond);

  // cond: cmp = icmp ult iv, tripcount; br cmp, body, exit
  B.setInsertPoint(Cond);
  Value *Cmp = B.createICmp(CmpPred::ULT, IV, TripCount, Name + ".cmp");
  B.createCondBr(Cmp, Body, Exit);

  // latch: iv.next = iv + 1; br header
  B.setInsertPoint(Latch);
  Value *IVNext = B.createAdd(IV, B.getInt(IVTy, 1), Name + ".next");
  B.createBr(Header);

  IV->addIncoming(B.getInt(IVTy, 0), Preheader);
  IV->addIncoming(IVNext, Latch);

  // exit -> after
  B.setInsertPoint(Exit);
  B.createBr(After);

  B.setInsertPoint(Saved);

  LoopInfos.push_back(std::make_unique<CanonicalLoopInfo>());
  CanonicalLoopInfo *CLI = LoopInfos.back().get();
  CLI->Preheader = Preheader;
  CLI->Header = Header;
  CLI->Cond = Cond;
  CLI->Body = Body;
  CLI->Latch = Latch;
  CLI->Exit = Exit;
  CLI->After = After;
  CLI->IndVar = IV;
  CLI->TripCount = TripCount;
  return CLI;
}

CanonicalLoopInfo *
OpenMPIRBuilder::createCanonicalLoop(IRBuilder &B, Value *TripCount,
                                     const BodyGenCallbackTy &BodyGen,
                                     const std::string &Name) {
  BasicBlock *Cur = B.getInsertBlock();
  assert(Cur && "builder must have an insertion point");
  CanonicalLoopInfo *CLI = createLoopSkeleton(B, TripCount, Cur, Name);

  // Wire the current block into the skeleton.
  assert(!Cur->getTerminator() && "insertion block already terminated");
  B.createBr(CLI->getPreheader());

  // Emit the body.
  B.setInsertPoint(CLI->getBody());
  if (BodyGen)
    BodyGen(B, CLI->getIndVar());
  B.createBr(CLI->getLatch());

  B.setInsertPoint(CLI->getAfter());
  CLI->assertOK();
  return CLI;
}

// ===------------------------ Transformations -------------------------=== //

std::vector<CanonicalLoopInfo *>
OpenMPIRBuilder::tileLoops(std::vector<CanonicalLoopInfo *> Loops,
                           std::vector<Value *> TileSizes) {
  assert(!Loops.empty() && Loops.size() == TileSizes.size());
  const unsigned N = static_cast<unsigned>(Loops.size());
  Function *F = Loops[0]->getFunction();
  IRBuilder B(M);

  BasicBlock *OuterPreheader = Loops[0]->getPreheader();
  BasicBlock *OuterAfter = Loops[0]->getAfter();
  BasicBlock *UserEntry = Loops[N - 1]->getBody();
  BasicBlock *OldInnerLatch = Loops[N - 1]->getLatch();

  // 1. Compute the floor trip counts ceil(trip / size) in the outermost
  //    preheader (requires trip counts to dominate it; the front-end
  //    hoists the distance computations of a transformed nest).
  std::unique_ptr<Instruction> PreTerm =
      OuterPreheader->take(OuterPreheader->size() - 1);
  B.setInsertPoint(OuterPreheader);
  std::vector<Value *> FloorCounts(N), SizeVals(N);
  for (unsigned K = 0; K < N; ++K) {
    Value *Trip = Loops[K]->getTripCount();
    Value *Size = B.createIntCast(TileSizes[K], Trip->getType(),
                                  /*Signed=*/false, "tilesize");
    SizeVals[K] = Size;
    Value *Adjusted =
        B.createAdd(Trip, B.createSub(Size, B.getInt(Trip->getType(), 1)),
                    "tile.adj");
    FloorCounts[K] = B.createUDiv(Adjusted, Size, "floor.tripcount");
  }

  // 2. Build the 2n new skeletons, nesting floor_0 .. floor_{n-1},
  //    tile_0 .. tile_{n-1}. The outermost preheader is re-used as the
  //    entry block of the new nest.
  std::vector<CanonicalLoopInfo *> News;
  BasicBlock *CurBlock = OuterPreheader; // unterminated
  BasicBlock *InsertPoint = OuterPreheader;
  std::vector<Value *> TileTrips(N);
  for (unsigned K = 0; K < 2 * N; ++K) {
    bool IsTile = K >= N;
    unsigned Idx = IsTile ? K - N : K;
    Value *Trip;
    if (!IsTile) {
      Trip = FloorCounts[Idx];
    } else {
      // Trip of the tile loop: min(size, trip - floorIV * size), handling
      // the partial tile at the boundary.
      B.setInsertPoint(CurBlock);
      Value *FloorIV = News[Idx]->getIndVar();
      Value *Used = B.createMul(FloorIV, SizeVals[Idx], "tile.used");
      Value *Remaining = B.createSub(Loops[Idx]->getTripCount(), Used,
                                     "tile.remaining");
      Value *IsPartial = B.createICmp(CmpPred::ULT, Remaining, SizeVals[Idx],
                                      "tile.ispartial");
      Trip = B.createSelect(IsPartial, Remaining, SizeVals[Idx],
                            "tile.tripcount");
    }
    CanonicalLoopInfo *CLI = createLoopSkeleton(
        B, Trip, InsertPoint, IsTile ? "tile" : "floor");
    // Chain: the current (unterminated) block branches into the preheader.
    B.setInsertPoint(CurBlock);
    B.createBr(CLI->getPreheader());
    News.push_back(CLI);
    CurBlock = CLI->getBody(); // unterminated; next skeleton nests here
    InsertPoint = CLI->getBody();
  }

  // 3. Innermost tile body: reconstruct each original logical iteration
  //    number and rebind the old induction variables.
  B.setInsertPoint(CurBlock);
  for (unsigned K = 0; K < N; ++K) {
    Value *Orig = B.createAdd(
        B.createMul(News[K]->getIndVar(), SizeVals[K], "tile.scaled"),
        News[N + K]->getIndVar(), "tile.origiv");
    replaceAllUsesIn(*F, Loops[K]->getIndVar(), Orig);
  }
  B.createBr(UserEntry);

  // 4. The user region's back edge now targets the innermost tile latch.
  for (const auto &BB : F->blocks()) {
    Instruction *Term = BB->getTerminator();
    if (!Term || Term->getOpcode() != Opcode::Br)
      continue;
    if (BB.get() == Loops[N - 1]->getHeader() ||
        BB.get() == Loops[N - 1]->getCond())
      continue; // dead old skeleton edges
    for (unsigned S = 0; S < Term->getNumSuccessors(); ++S)
      if (Term->getSuccessor(S) == OldInnerLatch)
        Term->setSuccessor(S, News[2 * N - 1]->getLatch());
  }

  // 5. Wire the After chain: each inner After branches to the enclosing
  //    latch; the outermost After continues to the old loop's After.
  for (unsigned K = 2 * N; K-- > 0;) {
    B.setInsertPoint(News[K]->getAfter());
    if (K == 0)
      B.createBr(OuterAfter);
    else
      B.createBr(News[K - 1]->getLatch());
  }
  PreTerm.reset(); // old "br header" of the outer preheader is gone

  // 6. Delete the dead blocks of the original skeletons.
  for (unsigned K = 0; K < N; ++K) {
    CanonicalLoopInfo *L = Loops[K];
    std::vector<BasicBlock *> Dead = {L->getHeader(), L->getCond(),
                                      L->getLatch(), L->getExit()};
    if (K > 0) {
      Dead.push_back(L->getPreheader());
      Dead.push_back(L->getAfter());
    }
    if (K < N - 1)
      Dead.push_back(L->getBody()); // pure chain block of a perfect nest
    for (BasicBlock *BB : Dead)
      F->eraseBlock(BB);
    L->invalidate();
  }

  for (CanonicalLoopInfo *CLI : News)
    CLI->assertOK();
  return News;
}

CanonicalLoopInfo *
OpenMPIRBuilder::collapseLoops(std::vector<CanonicalLoopInfo *> Loops) {
  assert(!Loops.empty());
  const unsigned N = static_cast<unsigned>(Loops.size());
  if (N == 1)
    return Loops[0];
  Function *F = Loops[0]->getFunction();
  IRBuilder B(M);

  BasicBlock *OuterPreheader = Loops[0]->getPreheader();
  BasicBlock *OuterAfter = Loops[0]->getAfter();
  BasicBlock *UserEntry = Loops[N - 1]->getBody();
  BasicBlock *OldInnerLatch = Loops[N - 1]->getLatch();
  const IRType *IVTy = IRType::getI64();

  // Combined trip count: the product, computed in the outer preheader.
  std::unique_ptr<Instruction> PreTerm =
      OuterPreheader->take(OuterPreheader->size() - 1);
  B.setInsertPoint(OuterPreheader);
  std::vector<Value *> Trips(N);
  Value *Total = nullptr;
  for (unsigned K = 0; K < N; ++K) {
    Trips[K] = B.createIntCast(Loops[K]->getTripCount(), IVTy,
                               /*Signed=*/false, "collapse.trip");
    Total = Total ? B.createMul(Total, Trips[K], "collapse.total") : Trips[K];
  }

  CanonicalLoopInfo *CLI =
      createLoopSkeleton(B, Total, OuterPreheader, "collapsed");
  B.setInsertPoint(OuterPreheader);
  B.createBr(CLI->getPreheader());
  PreTerm.reset();

  // Body: de-linearize the combined IV into the member IVs and rebind.
  B.setInsertPoint(CLI->getBody());
  for (unsigned K = 0; K < N; ++K) {
    Value *Scaled = CLI->getIndVar();
    for (unsigned J = K + 1; J < N; ++J)
      Scaled = B.createUDiv(Scaled, Trips[J], "collapse.div");
    if (K > 0)
      Scaled = B.createURem(Scaled, Trips[K], "collapse.rem");
    Value *Orig = B.createIntCast(
        Scaled, Loops[K]->getIndVar()->getType(), false, "collapse.iv");
    replaceAllUsesIn(*F, Loops[K]->getIndVar(), Orig);
  }
  B.createBr(UserEntry);

  // Rewire the user region's back edge and the after chain.
  for (const auto &BB : F->blocks()) {
    Instruction *Term = BB->getTerminator();
    if (!Term || Term->getOpcode() != Opcode::Br)
      continue;
    if (BB.get() == Loops[N - 1]->getHeader() ||
        BB.get() == Loops[N - 1]->getCond())
      continue;
    for (unsigned S = 0; S < Term->getNumSuccessors(); ++S)
      if (Term->getSuccessor(S) == OldInnerLatch)
        Term->setSuccessor(S, CLI->getLatch());
  }
  B.setInsertPoint(CLI->getAfter());
  B.createBr(OuterAfter);

  for (unsigned K = 0; K < N; ++K) {
    CanonicalLoopInfo *L = Loops[K];
    std::vector<BasicBlock *> Dead = {L->getHeader(), L->getCond(),
                                      L->getLatch(), L->getExit()};
    if (K > 0) {
      Dead.push_back(L->getPreheader());
      Dead.push_back(L->getAfter());
    }
    if (K < N - 1)
      Dead.push_back(L->getBody());
    for (BasicBlock *BB : Dead)
      F->eraseBlock(BB);
    L->invalidate();
  }

  CLI->assertOK();
  return CLI;
}

CanonicalLoopInfo *
OpenMPIRBuilder::fuseLoops(std::vector<CanonicalLoopInfo *> Loops) {
  assert(Loops.size() >= 2 && "fusing fewer than two loops is a no-op");
  const unsigned N = static_cast<unsigned>(Loops.size());
  Function *F = Loops[0]->getFunction();
  IRBuilder B(M);
  for (CanonicalLoopInfo *L : Loops)
    L->assertOK();

  // The members were emitted back-to-back: member k's trip count is
  // computed in straight-line code between member k-1's After block and
  // member k's preheader (the front-end hoists distance computations into
  // the chain block preceding each skeleton).
  auto FindPredTerm = [&](BasicBlock *Target) -> Instruction * {
    Instruction *Found = nullptr;
    for (const auto &BB : F->blocks()) {
      Instruction *Term = BB->getTerminator();
      if (!Term)
        continue;
      for (unsigned S = 0; S < Term->getNumSuccessors(); ++S)
        if (Term->getSuccessor(S) == Target) {
          assert(!Found && "preheader must have a unique predecessor");
          Found = Term;
        }
    }
    assert(Found && "member preheader is unreachable");
    return Found;
  };
  std::vector<Instruction *> PredTerms(N);
  for (unsigned K = 0; K < N; ++K)
    PredTerms[K] = FindPredTerm(Loops[K]->getPreheader());

  // 1. Re-chain the straight-line segments so every member's trip count
  //    is computed before the fused loop runs: the branch that entered
  //    member k's skeleton now continues into the next segment (member
  //    k's After block) instead.
  for (unsigned K = 0; K + 1 < N; ++K)
    for (unsigned S = 0; S < PredTerms[K]->getNumSuccessors(); ++S)
      if (PredTerms[K]->getSuccessor(S) == Loops[K]->getPreheader())
        PredTerms[K]->setSuccessor(S, Loops[K]->getAfter());

  // 2. Fused trip count: max over the members' trip counts, in the widest
  //    member IV type, computed at the end of the last segment.
  const IRType *WidestTy = Loops[0]->getIndVar()->getType();
  for (unsigned K = 1; K < N; ++K)
    if (Loops[K]->getIndVar()->getType()->getBitWidth() >
        WidestTy->getBitWidth())
      WidestTy = Loops[K]->getIndVar()->getType();
  BasicBlock *LastSeg = PredTerms[N - 1]->getParent();
  std::vector<Value *> ExtTrips(N);
  Value *FusedTrip = nullptr;
  reopenBlock(B, LastSeg, [&] {
    for (unsigned K = 0; K < N; ++K)
      ExtTrips[K] = B.createIntCast(Loops[K]->getTripCount(), WidestTy,
                                    /*Signed=*/false, "fuse.trip");
    FusedTrip = ExtTrips[0];
    for (unsigned K = 1; K < N; ++K) {
      Value *Gt =
          B.createICmp(CmpPred::UGT, ExtTrips[K], FusedTrip, "fuse.cmp");
      FusedTrip = B.createSelect(Gt, ExtTrips[K], FusedTrip, "fuse.maxtrip");
    }
  });

  CanonicalLoopInfo *Fused =
      createLoopSkeleton(B, FusedTrip, LastSeg, "fused");
  for (unsigned S = 0; S < PredTerms[N - 1]->getNumSuccessors(); ++S)
    if (PredTerms[N - 1]->getSuccessor(S) == Loops[N - 1]->getPreheader())
      PredTerms[N - 1]->setSuccessor(S, Fused->getPreheader());

  // 3. Fused body: bind every member's IV as a cast of the fused IV, then
  //    chain guards so each member body only runs while its own trip count
  //    is not yet exhausted.
  B.setInsertPoint(Fused->getBody());
  std::vector<Value *> MemberIVs(N);
  for (unsigned K = 0; K < N; ++K)
    MemberIVs[K] =
        B.createIntCast(Fused->getIndVar(), Loops[K]->getIndVar()->getType(),
                        /*Signed=*/false, "fuse.iv");
  std::vector<BasicBlock *> Guards(N);
  Guards[0] = Fused->getBody();
  for (unsigned K = 1; K < N; ++K)
    Guards[K] = F->createBlockAfter(Guards[K - 1], "fused.guard");
  for (unsigned K = 0; K < N; ++K) {
    BasicBlock *Next = K + 1 < N ? Guards[K + 1] : Fused->getLatch();
    // Member k's body subgraph falls through to the next guard instead of
    // its old latch.
    for (const auto &BB : F->blocks()) {
      if (BB.get() == Loops[K]->getHeader() ||
          BB.get() == Loops[K]->getCond())
        continue;
      Instruction *Term = BB->getTerminator();
      if (!Term)
        continue;
      for (unsigned S = 0; S < Term->getNumSuccessors(); ++S)
        if (Term->getSuccessor(S) == Loops[K]->getLatch())
          Term->setSuccessor(S, Next);
    }
    B.setInsertPoint(Guards[K]);
    Value *Active = B.createICmp(CmpPred::ULT, Fused->getIndVar(),
                                 ExtTrips[K], "fuse.active");
    B.createCondBr(Active, Loops[K]->getBody(), Next);
    replaceAllUsesIn(*F, Loops[K]->getIndVar(), MemberIVs[K]);
  }

  // 4. The fused loop exits into the last member's old After block, where
  //    the front-end continues emission.
  B.setInsertPoint(Fused->getAfter());
  B.createBr(Loops[N - 1]->getAfter());

  // 5. Erase the dead member skeletons. Body blocks live on as the guarded
  //    member bodies; After blocks live on as the re-chained segments.
  for (unsigned K = 0; K < N; ++K) {
    CanonicalLoopInfo *L = Loops[K];
    for (BasicBlock *BB : {L->getPreheader(), L->getHeader(), L->getCond(),
                           L->getLatch(), L->getExit()})
      F->eraseBlock(BB);
    L->invalidate();
  }

  Fused->assertOK();
  return Fused;
}

CanonicalLoopInfo *OpenMPIRBuilder::reverseLoop(CanonicalLoopInfo *Loop) {
  Loop->assertOK();
  Function *F = Loop->getFunction();
  Value *Trip = Loop->getTripCount();
  const IRType *Ty = Trip->getType();

  // rev = (trip - 1) - iv, computed at the top of the body. The two
  // instructions are created detached, the IV's uses are redirected, and
  // only then are they inserted — so the reversal expression itself keeps
  // reading the original induction variable.
  auto TMax = std::make_unique<Instruction>(
      Opcode::Sub, Ty, std::vector<Value *>{Trip, M.getInt(Ty, 1)},
      "reversed.tmax");
  auto Rev = std::make_unique<Instruction>(
      Opcode::Sub, Ty, std::vector<Value *>{TMax.get(), Loop->getIndVar()},
      "reversed.iv");

  // Redirect every IV use except in the skeleton blocks that implement the
  // counter itself (header phi, cond compare, latch increment). All user
  // uses live in the body subgraph, which the body block dominates.
  for (const auto &BB : F->blocks()) {
    if (BB.get() == Loop->getHeader() || BB.get() == Loop->getCond() ||
        BB.get() == Loop->getLatch())
      continue;
    for (const auto &I : BB->instructions())
      for (unsigned OpIdx = 0; OpIdx < I->getNumOperands(); ++OpIdx)
        if (I->getOperand(OpIdx) == Loop->getIndVar())
          I->setOperand(OpIdx, Rev.get());
  }

  Loop->getBody()->insertAt(0, std::move(TMax));
  Loop->getBody()->insertAt(1, std::move(Rev));
  Loop->assertOK();
  return Loop;
}

std::vector<CanonicalLoopInfo *>
OpenMPIRBuilder::interchangeLoops(std::vector<CanonicalLoopInfo *> Loops,
                                  std::vector<unsigned> Perm) {
  assert(!Loops.empty() && Loops.size() == Perm.size());
  const unsigned N = static_cast<unsigned>(Loops.size());
  bool Identity = true;
  for (unsigned P = 0; P < N; ++P)
    Identity &= Perm[P] == P;
  if (Identity)
    return Loops;

  Function *F = Loops[0]->getFunction();
  IRBuilder B(M);
  std::vector<Value *> OldTrip(N);
  std::vector<Instruction *> OldIV(N);
  for (unsigned P = 0; P < N; ++P) {
    Loops[P]->assertOK();
    OldTrip[P] = Loops[P]->getTripCount();
    OldIV[P] = Loops[P]->getIndVar();
  }

  // 1. The skeleton at position P now counts the logical space of original
  //    level Perm[P]: permute the trip counts. They are hoisted before the
  //    outermost skeleton (emitCanonicalLoopNest), so they dominate every
  //    cond block; width mismatches are adapted in the outermost preheader.
  std::vector<Value *> NewTrip(N);
  reopenBlock(B, Loops[0]->getPreheader(), [&] {
    for (unsigned P = 0; P < N; ++P)
      NewTrip[P] = B.createIntCast(OldTrip[Perm[P]], OldIV[P]->getType(),
                                   /*Signed=*/false, "interchange.trip");
  });
  for (unsigned P = 0; P < N; ++P) {
    Instruction *Cmp = nullptr;
    for (const auto &I : Loops[P]->getCond()->instructions())
      if (I->getOpcode() == Opcode::ICmp)
        Cmp = I.get();
    assert(Cmp && "canonical loop cond must contain the trip comparison");
    Cmp->setOperand(1, NewTrip[P]);
    Loops[P]->TripCount = NewTrip[P];
  }

  // 2. Remap the user code: the dimension formerly counted by the IV of
  //    level Perm[P] is now counted by position P's IV. In a perfect nest
  //    every user IV use sits in the innermost body subgraph (the
  //    loop-variable bindings are materialized there), which every header
  //    dominates. Width adaptations are created detached and inserted only
  //    after the single remapping pass, so a 2-cycle swap cannot ping-pong.
  std::vector<std::pair<Value *, Value *>> IVMap; // old IV -> replacement
  std::vector<std::unique_ptr<Instruction>> PendingCasts;
  for (unsigned P = 0; P < N; ++P) {
    if (Perm[P] == P)
      continue;
    Value *Repl = OldIV[P];
    const IRType *WantTy = OldIV[Perm[P]]->getType();
    if (Repl->getType()->getBitWidth() != WantTy->getBitWidth()) {
      auto Cast = std::make_unique<Instruction>(
          Repl->getType()->getBitWidth() > WantTy->getBitWidth()
              ? Opcode::Trunc
              : Opcode::ZExt,
          WantTy, std::vector<Value *>{Repl}, "interchange.iv");
      Repl = Cast.get();
      PendingCasts.push_back(std::move(Cast));
    }
    IVMap.emplace_back(OldIV[Perm[P]], Repl);
  }

  for (const auto &BB : F->blocks()) {
    bool Skeleton = false;
    for (unsigned P = 0; P < N; ++P)
      Skeleton |= BB.get() == Loops[P]->getHeader() ||
                  BB.get() == Loops[P]->getCond() ||
                  BB.get() == Loops[P]->getLatch();
    if (Skeleton)
      continue;
    for (const auto &I : BB->instructions())
      for (unsigned OpIdx = 0; OpIdx < I->getNumOperands(); ++OpIdx) {
        Value *Op = I->getOperand(OpIdx);
        for (const auto &[Old, New] : IVMap)
          if (Op == Old) {
            I->setOperand(OpIdx, New);
            break;
          }
      }
  }

  BasicBlock *InnerBody = Loops[N - 1]->getBody();
  for (unsigned K = 0; K < PendingCasts.size(); ++K)
    InnerBody->insertAt(K, std::move(PendingCasts[K]));

  for (unsigned P = 0; P < N; ++P)
    Loops[P]->assertOK();
  return Loops;
}

void OpenMPIRBuilder::unrollLoopFull(CanonicalLoopInfo *Loop) {
  Loop->assertOK();
  Instruction *LatchBr = Loop->getLatch()->getTerminator();
  LatchBr->LoopMD.UnrollFull = true;
}

void OpenMPIRBuilder::unrollLoopHeuristic(CanonicalLoopInfo *Loop) {
  Loop->assertOK();
  Instruction *LatchBr = Loop->getLatch()->getTerminator();
  LatchBr->LoopMD.UnrollEnable = true;
}

void OpenMPIRBuilder::unrollLoopPartial(CanonicalLoopInfo *Loop,
                                        unsigned Factor,
                                        CanonicalLoopInfo **UnrolledCLI) {
  Loop->assertOK();
  assert(Factor > 0);
  // Like the real implementation: tile by the unroll factor and let the
  // mid-end LoopUnroll pass duplicate the inner (tile) loop's body.
  Value *FactorVal =
      M.getInt(Loop->getTripCount()->getType(),
               static_cast<std::int64_t>(Factor));
  std::vector<CanonicalLoopInfo *> Tiled =
      tileLoops({Loop}, {FactorVal});
  assert(Tiled.size() == 2);
  Instruction *InnerLatchBr = Tiled[1]->getLatch()->getTerminator();
  InnerLatchBr->LoopMD.UnrollCount = Factor;
  if (UnrolledCLI)
    *UnrolledCLI = Tiled[0];
}

void OpenMPIRBuilder::applySimd(CanonicalLoopInfo *Loop) {
  Loop->assertOK();
  Loop->getLatch()->getTerminator()->LoopMD.Vectorize = true;
}

void OpenMPIRBuilder::createBarrier(IRBuilder &B) {
  Value *Gtid = B.createCall(
      getOrCreateRuntimeFunction("__kmpc_global_thread_num"), {}, "gtid");
  B.createCall(getOrCreateRuntimeFunction("__kmpc_barrier"),
               {Gtid});
}

void OpenMPIRBuilder::createCritical(IRBuilder &B,
                                     const std::function<void()> &Body) {
  Value *Gtid = B.createCall(
      getOrCreateRuntimeFunction("__kmpc_global_thread_num"), {}, "gtid");
  B.createCall(getOrCreateRuntimeFunction("__kmpc_critical"), {Gtid});
  Body();
  Value *Gtid2 = B.createCall(
      getOrCreateRuntimeFunction("__kmpc_global_thread_num"), {}, "gtid");
  B.createCall(getOrCreateRuntimeFunction("__kmpc_end_critical"), {Gtid2});
}

void OpenMPIRBuilder::applyWorkshareLoop(CanonicalLoopInfo *Loop,
                                         OMPScheduleType Schedule,
                                         Value *ChunkSize, bool NoWait) {
  Loop->assertOK();
  IRBuilder B(M);
  const IRType *IVTy = Loop->getIndVar()->getType();
  const IRType *I64 = IRType::getI64();
  Function *StaticInit =
      getOrCreateRuntimeFunction("__kmpc_for_static_init");
  Function *StaticFini =
      getOrCreateRuntimeFunction("__kmpc_for_static_fini");
  Function *GtidFn = getOrCreateRuntimeFunction("__kmpc_global_thread_num");
  Function *Barrier = getOrCreateRuntimeFunction("__kmpc_barrier");

  // The runtime works on the i64 logical iteration space [0, trip).
  // schedule(static) assigns one balanced contiguous chunk per thread via
  // __kmpc_for_static_init; chunked and dynamic schedules go through the
  // dispatcher (__kmpc_dispatch_*), where schedule(static, chunk) becomes a
  // deterministic round-robin chunk assignment.
  bool IsStatic = Schedule == OMPScheduleType::Static;

  // The cond block's comparison, to be retargeted at the per-thread (or
  // per-chunk) upper bound.
  Instruction *Cmp = nullptr;
  for (const auto &I : Loop->getCond()->instructions())
    if (I->getOpcode() == Opcode::ICmp)
      Cmp = I.get();
  assert(Cmp && "canonical loop cond must contain the trip comparison");

  if (IsStatic) {
    reopenBlock(B, Loop->getPreheader(), [&] {
      Value *Gtid = B.createCall(GtidFn, {}, "gtid");
      Instruction *PLast = B.createAllocaInEntry(IRType::getI32(), 1,
                                                 "p.lastiter");
      Instruction *PLower = B.createAllocaInEntry(I64, 1, "p.lowerbound");
      Instruction *PUpper = B.createAllocaInEntry(I64, 1, "p.upperbound");
      Instruction *PStride = B.createAllocaInEntry(I64, 1, "p.stride");
      Value *Trip64 = B.createIntCast(Loop->getTripCount(), I64, false,
                                      "trip64");
      B.createStore(B.getI32(0), PLast);
      B.createStore(B.getI64(0), PLower);
      B.createStore(B.createSub(Trip64, B.getI64(1), "lastiter"), PUpper);
      B.createStore(B.getI64(1), PStride);
      Value *Chunk = ChunkSize
                         ? B.createIntCast(ChunkSize, I64, true, "chunk64")
                         : B.getI64(0);
      B.createCall(StaticInit,
                   {Gtid, B.getI32(static_cast<std::int32_t>(Schedule)),
                    PLast, PLower, PUpper, PStride, B.getI64(1), Chunk});
      Value *LB64 = B.createLoad(I64, PLower, "omp.lb");
      Value *UB64 = B.createLoad(I64, PUpper, "omp.ub");
      Value *LB = B.createIntCast(LB64, IVTy, false, "omp.lb.t");
      Value *UB = B.createIntCast(UB64, IVTy, false, "omp.ub.t");
      // Retarget the skeleton: IV starts at lb, runs while iv <= ub.
      for (unsigned P = 0; P < Loop->getIndVar()->getNumIncoming(); ++P)
        if (Loop->getIndVar()->getIncomingBlock(P) == Loop->getPreheader())
          Loop->getIndVar()->setOperand(2 * P, LB);
      Cmp->Pred = CmpPred::ULE;
      Cmp->setOperand(1, UB);
    });
    // fini + implied barrier on the way out.
    reopenBlock(B, Loop->getExit(), [&] {
      Value *Gtid = B.createCall(GtidFn, {}, "gtid");
      B.createCall(StaticFini, {Gtid});
      if (!NoWait) {
        Value *Gtid2 = B.createCall(GtidFn, {}, "gtid");
        B.createCall(Barrier, {Gtid2});
      }
    });
    Loop->assertOK();
    return;
  }

  // Dynamic / guided: a dispatch loop around the canonical loop.
  Function *DispInit = getOrCreateRuntimeFunction("__kmpc_dispatch_init");
  Function *DispNext = getOrCreateRuntimeFunction("__kmpc_dispatch_next");
  Function *F = Loop->getFunction();

  BasicBlock *DispHeader =
      F->createBlockAfter(Loop->getPreheader(), "omp.dispatch.header");
  BasicBlock *DispBody =
      F->createBlockAfter(DispHeader, "omp.dispatch.body");

  Instruction *PLast = nullptr, *PLower = nullptr, *PUpper = nullptr;
  reopenBlock(B, Loop->getPreheader(), [&] {
    Value *Gtid = B.createCall(GtidFn, {}, "gtid");
    PLast = B.createAllocaInEntry(IRType::getI32(), 1, "p.lastiter");
    PLower = B.createAllocaInEntry(I64, 1, "p.lowerbound");
    PUpper = B.createAllocaInEntry(I64, 1, "p.upperbound");
    Value *Trip64 =
        B.createIntCast(Loop->getTripCount(), I64, false, "trip64");
    Value *Chunk =
        ChunkSize ? B.createIntCast(ChunkSize, I64, true, "chunk64")
                  : B.getI64(1);
    B.createCall(DispInit,
                 {Gtid, B.getI32(static_cast<std::int32_t>(Schedule)),
                  B.getI64(0), B.createSub(Trip64, B.getI64(1), "lastiter"),
                  Chunk});
  });
  // preheader now branches to the dispatch header instead of the loop.
  Loop->getPreheader()->getTerminator()->setSuccessor(0, DispHeader);

  B.setInsertPoint(DispHeader);
  Value *Gtid = B.createCall(GtidFn, {}, "gtid");
  Value *More = B.createCall(DispNext, {Gtid, PLast, PLower, PUpper},
                             "dispatch.more");
  Value *HasChunk =
      B.createICmp(CmpPred::NE, More, B.getI32(0), "dispatch.haschunk");
  B.createCondBr(HasChunk, DispBody, Loop->getAfter());

  B.setInsertPoint(DispBody);
  Value *LB64 = B.createLoad(I64, PLower, "omp.lb");
  Value *UB64 = B.createLoad(I64, PUpper, "omp.ub");
  Value *LB = B.createIntCast(LB64, IVTy, false, "omp.lb.t");
  Value *UB = B.createIntCast(UB64, IVTy, false, "omp.ub.t");
  B.createBr(Loop->getHeader());

  // The loop now iterates [lb, ub] per chunk and loops back to the
  // dispatcher.
  Instruction *IV = Loop->getIndVar();
  for (unsigned P = 0; P < IV->getNumIncoming(); ++P)
    if (IV->getIncomingBlock(P) == Loop->getPreheader()) {
      IV->setOperand(2 * P, LB);
      IV->replaceIncomingBlock(Loop->getPreheader(), DispBody);
    }
  Cmp->Pred = CmpPred::ULE;
  Cmp->setOperand(1, UB);
  Loop->getExit()->getTerminator()->setSuccessor(0, DispHeader);

  // Implied barrier after all chunks are done.
  if (!NoWait) {
    B.setInsertPoint(Loop->getAfter());
    // Insert at the top of After (it may already hold continuation code).
    auto GtidCall = std::make_unique<Instruction>(
        Opcode::Call, IRType::getI32(),
        std::vector<Value *>{GtidFn}, "gtid");
    auto BarrierCall = std::make_unique<Instruction>(
        Opcode::Call, IRType::getVoid(),
        std::vector<Value *>{Barrier, GtidCall.get()});
    Loop->getAfter()->insertAt(0, std::move(GtidCall));
    Loop->getAfter()->insertAt(1, std::move(BarrierCall));
  }
}

} // namespace mcc::ir
