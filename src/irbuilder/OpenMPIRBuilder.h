//===--- OpenMPIRBuilder.h - Base-language-independent OpenMP lowering -*- C++ -*-===//
//
// Reproduces the OpenMPIRBuilder of the paper's Section 3: the front-end
// independent portion of OpenMP lowering, designed to be shared between
// front-ends (Clang, Flang/MLIR). It provides:
//
//   * createCanonicalLoop — emits the loop skeleton of Fig. 9 (preheader /
//     header / cond / body / latch / exit / after) and returns a
//     CanonicalLoopInfo handle;
//   * tileLoops, collapseLoops — loop transformations that consume and
//     produce CanonicalLoopInfo handles;
//   * unrollLoopFull / unrollLoopPartial / unrollLoopHeuristic — unrolling,
//     deferring the actual body duplication to the mid-end LoopUnroll pass
//     via llvm.loop.unroll.* metadata (unrollLoopPartial tiles first and
//     annotates the inner loop, exactly like the real implementation);
//   * applyWorkshareLoop — the worksharing-loop construct on top of the
//     __kmpc_for_static_init / __kmpc_dispatch_* runtime entry points;
//   * applySimd — vectorization hint metadata.
//
// Returned loops always re-establish the loop-skeleton invariants the
// paper lists: explicit blocks for every role, an identifiable induction
// variable, and an identifiable trip count without needing ScalarEvolution
// (validated by CanonicalLoopInfo::assertOK).
//
//===----------------------------------------------------------------------===//
#ifndef MCC_IRBUILDER_OPENMPIRBUILDER_H
#define MCC_IRBUILDER_OPENMPIRBUILDER_H

#include "irbuilder/IRBuilder.h"

#include <functional>
#include <string>
#include <vector>

namespace mcc::ir {

/// Scheduling types passed to the runtime (values follow libomp's
/// sched_type flavor).
enum class OMPScheduleType : std::int32_t {
  StaticChunked = 33,
  Static = 34, // balanced chunks, one per thread
  DynamicChunked = 35,
  GuidedChunked = 36,
};

/// Represents a canonical loop in the IR and its current state; the handle
/// type that OpenMPIRBuilder transformations consume and produce.
class CanonicalLoopInfo {
public:
  [[nodiscard]] bool isValid() const { return Header != nullptr; }

  [[nodiscard]] Function *getFunction() const {
    return Header->getParent();
  }
  [[nodiscard]] BasicBlock *getPreheader() const { return Preheader; }
  [[nodiscard]] BasicBlock *getHeader() const { return Header; }
  [[nodiscard]] BasicBlock *getCond() const { return Cond; }
  [[nodiscard]] BasicBlock *getBody() const { return Body; }
  [[nodiscard]] BasicBlock *getLatch() const { return Latch; }
  [[nodiscard]] BasicBlock *getExit() const { return Exit; }
  [[nodiscard]] BasicBlock *getAfter() const { return After; }

  /// The induction variable: a phi in the header over the *logical
  /// iteration space* [0, TripCount).
  [[nodiscard]] Instruction *getIndVar() const { return IndVar; }
  /// The trip count — identifiable directly, "without requiring analysis
  /// by ScalarEvolution".
  [[nodiscard]] Value *getTripCount() const { return TripCount; }

  /// Validates the loop skeleton invariants; asserts on violation.
  void assertOK() const;
  /// Like assertOK but returns a diagnostic string (empty = valid), for
  /// tests.
  [[nodiscard]] std::string validate() const;

private:
  friend class OpenMPIRBuilder;
  void invalidate() { *this = CanonicalLoopInfo(); }

  BasicBlock *Preheader = nullptr;
  BasicBlock *Header = nullptr;
  BasicBlock *Cond = nullptr;
  BasicBlock *Body = nullptr;
  BasicBlock *Latch = nullptr;
  BasicBlock *Exit = nullptr;
  BasicBlock *After = nullptr;
  Instruction *IndVar = nullptr;
  Value *TripCount = nullptr;
};

class OpenMPIRBuilder {
public:
  explicit OpenMPIRBuilder(Module &M) : M(M) {}
  OpenMPIRBuilder(const OpenMPIRBuilder &) = delete;
  OpenMPIRBuilder &operator=(const OpenMPIRBuilder &) = delete;

  /// Callback emitting the loop body. Receives a builder positioned at the
  /// body insertion point and the induction variable (the logical
  /// iteration number). May create additional blocks; must leave the
  /// builder at the block that falls through to the latch.
  using BodyGenCallbackTy = std::function<void(IRBuilder &, Value *IndVar)>;

  /// Creates the loop skeleton of the paper's Fig. 9 at \p B's insertion
  /// point (the current block becomes the predecessor of the preheader).
  /// \p TripCount is the number of logical iterations (an integer Value).
  /// On return, \p B is positioned in the after-block.
  CanonicalLoopInfo *createCanonicalLoop(IRBuilder &B, Value *TripCount,
                                         const BodyGenCallbackTy &BodyGen,
                                         const std::string &Name = "omp_loop");

  /// Tiles a perfect nest of canonical loops with the given tile sizes.
  /// Returns the 2n generated loops: n floor loops followed by n tile
  /// loops. The input handles are invalidated.
  std::vector<CanonicalLoopInfo *>
  tileLoops(std::vector<CanonicalLoopInfo *> Loops,
            std::vector<Value *> TileSizes);

  /// Collapses a perfect nest into a single canonical loop over the
  /// product iteration space. Input handles are invalidated.
  CanonicalLoopInfo *collapseLoops(std::vector<CanonicalLoopInfo *> Loops);

  /// Fuses a sequence of canonical loops emitted back-to-back (each
  /// loop's After chain reaching the next loop's preheader through
  /// straight-line code only) into a single canonical loop over the
  /// maximum trip count. Member bodies run guarded by their own trip
  /// counts, preserving per-member iteration counts when they differ.
  /// The input handles are invalidated; returns the fused loop.
  CanonicalLoopInfo *fuseLoops(std::vector<CanonicalLoopInfo *> Loops);

  /// Reverses the iteration order of \p Loop in place: the body observes
  /// logical iteration trip-1-i where it previously observed i. The loop
  /// skeleton (and therefore the handle) stays valid and is returned.
  CanonicalLoopInfo *reverseLoop(CanonicalLoopInfo *Loop);

  /// Permutes a perfect nest: the loop at position P iterates the logical
  /// iteration space of the original loop Perm[P] (0-based, outermost
  /// first). Requires the trip counts to dominate the outermost preheader
  /// (the front-end hoists them). Handles stay valid and are returned in
  /// position order.
  std::vector<CanonicalLoopInfo *>
  interchangeLoops(std::vector<CanonicalLoopInfo *> Loops,
                   std::vector<unsigned> Perm);

  /// Fully unrolls the loop by attaching llvm.loop.unroll.full metadata
  /// for the mid-end LoopUnroll pass.
  void unrollLoopFull(CanonicalLoopInfo *Loop);

  /// Heuristic unrolling: llvm.loop.unroll.enable metadata; the mid-end
  /// chooses the factor (or not to unroll).
  void unrollLoopHeuristic(CanonicalLoopInfo *Loop);

  /// Partial unrolling with a known factor: tiles the loop by \p Factor
  /// and marks the inner (tile) loop with llvm.loop.unroll.count metadata.
  /// If \p UnrolledCLI is non-null it receives the outer (floor) loop —
  /// the "generated loop" that an enclosing directive may consume.
  void unrollLoopPartial(CanonicalLoopInfo *Loop, unsigned Factor,
                         CanonicalLoopInfo **UnrolledCLI);

  /// Lowers \p Loop into a worksharing-loop using the runtime: static
  /// schedules via __kmpc_for_static_init, dynamic/guided via
  /// __kmpc_dispatch_*. Adds the implied barrier unless \p NoWait.
  void applyWorkshareLoop(CanonicalLoopInfo *Loop, OMPScheduleType Schedule,
                          Value *ChunkSize, bool NoWait);

  /// Attaches llvm.loop.vectorize.enable metadata (simd construct).
  void applySimd(CanonicalLoopInfo *Loop);

  /// Emits a "#pragma omp barrier".
  void createBarrier(IRBuilder &B);
  /// Emits entry/exit of a critical region around code emitted by \p Body.
  void createCritical(IRBuilder &B, const std::function<void()> &Body);

  // --- Runtime function declarations (created on first use) ---
  Function *getOrCreateRuntimeFunction(const std::string &Name);

  /// Replaces every use of \p Old with \p New within \p F.
  static void replaceAllUsesIn(Function &F, Value *Old, Value *New);

private:
  /// Creates the 7-block skeleton after \p B's block, terminating that
  /// block into the preheader. Body and After are left unterminated for
  /// the caller to wire. Does not move \p B.
  CanonicalLoopInfo *createLoopSkeleton(IRBuilder &B, Value *TripCount,
                                        BasicBlock *InsertAfter,
                                        const std::string &Name);

  /// Runs \p Fn with \p B positioned at \p BB with its terminator
  /// temporarily removed, then restores the terminator.
  static void reopenBlock(IRBuilder &B, BasicBlock *BB,
                          const std::function<void()> &Fn);

  Module &M;
  std::vector<std::unique_ptr<CanonicalLoopInfo>> LoopInfos;
};

} // namespace mcc::ir

#endif // MCC_IRBUILDER_OPENMPIRBUILDER_H
