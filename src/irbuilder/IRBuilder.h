//===--- IRBuilder.h - Convenience IR construction --------------*- C++ -*-===//
//
// The IRBuilder of the paper's Fig. 1: creates instructions at an insertion
// point, and "simplifies expressions (e.g. algebraic simplifications)
// on-the-fly which avoids creating instructions that would later be
// optimized away anyway" (Section 1.3). Folding can be disabled to measure
// its effect (bench_compile_modes ablation).
//
//===----------------------------------------------------------------------===//
#ifndef MCC_IRBUILDER_IRBUILDER_H
#define MCC_IRBUILDER_IRBUILDER_H

#include "ir/IR.h"

#include <functional>

namespace mcc::ir {

class IRBuilder {
public:
  explicit IRBuilder(Module &M, bool FoldConstants = true)
      : M(M), Fold(FoldConstants) {}

  [[nodiscard]] Module &getModule() { return M; }

  // --- Insertion point ---
  void setInsertPoint(BasicBlock *BB) { InsertBB = BB; }
  [[nodiscard]] BasicBlock *getInsertBlock() const { return InsertBB; }
  [[nodiscard]] Function *getFunction() const {
    return InsertBB ? InsertBB->getParent() : nullptr;
  }
  /// True when the current block already has a terminator (no more
  /// instructions may be appended; used after return statements).
  [[nodiscard]] bool isBlockTerminated() const {
    return InsertBB && InsertBB->getTerminator() != nullptr;
  }

  // --- Constants ---
  ConstantInt *getInt(const IRType *Ty, std::int64_t V) {
    return M.getInt(Ty, V);
  }
  ConstantInt *getI1(bool V) { return M.getI1(V); }
  ConstantInt *getI32(std::int32_t V) { return M.getI32(V); }
  ConstantInt *getI64(std::int64_t V) { return M.getI64(V); }
  ConstantFP *getDouble(double V) { return M.getDouble(V); }

  // --- Arithmetic (with on-the-fly simplification) ---
  Value *createBinOp(Opcode Op, Value *L, Value *R, const std::string &Name);
  Value *createAdd(Value *L, Value *R, const std::string &Name = "add") {
    return createBinOp(Opcode::Add, L, R, Name);
  }
  Value *createSub(Value *L, Value *R, const std::string &Name = "sub") {
    return createBinOp(Opcode::Sub, L, R, Name);
  }
  Value *createMul(Value *L, Value *R, const std::string &Name = "mul") {
    return createBinOp(Opcode::Mul, L, R, Name);
  }
  Value *createSDiv(Value *L, Value *R, const std::string &Name = "sdiv") {
    return createBinOp(Opcode::SDiv, L, R, Name);
  }
  Value *createUDiv(Value *L, Value *R, const std::string &Name = "udiv") {
    return createBinOp(Opcode::UDiv, L, R, Name);
  }
  Value *createURem(Value *L, Value *R, const std::string &Name = "urem") {
    return createBinOp(Opcode::URem, L, R, Name);
  }

  /// Pointer difference in elements: (L - R) / ElemSize, typed i64.
  Value *createPtrDiff(Value *L, Value *R, unsigned ElemSize,
                       const std::string &Name = "ptrdiff");

  Value *createICmp(CmpPred Pred, Value *L, Value *R,
                    const std::string &Name = "cmp");
  Value *createFCmp(CmpPred Pred, Value *L, Value *R,
                    const std::string &Name = "fcmp");

  Value *createCast(Opcode Op, Value *V, const IRType *To,
                    const std::string &Name = "cast");
  /// Integer width/signedness adaptation helper.
  Value *createIntCast(Value *V, const IRType *To, bool Signed,
                       const std::string &Name = "conv");

  // --- Memory ---
  Instruction *createAlloca(const IRType *ElemTy, Value *NumElems = nullptr,
                            const std::string &Name = "alloca");
  /// Creates the alloca in the function's entry block (Clang's convention).
  Instruction *createAllocaInEntry(const IRType *ElemTy,
                                   std::uint64_t NumElems = 1,
                                   const std::string &Name = "alloca");
  Value *createLoad(const IRType *Ty, Value *Ptr,
                    const std::string &Name = "load");
  Instruction *createStore(Value *V, Value *Ptr);
  Value *createGEP(const IRType *ElemTy, Value *Ptr, Value *Index,
                   const std::string &Name = "gep");

  // --- Control flow ---
  Instruction *createBr(BasicBlock *Target);
  Instruction *createCondBr(Value *Cond, BasicBlock *True, BasicBlock *False);
  Instruction *createRet(Value *V);
  Instruction *createRetVoid();
  Value *createCall(Function *Callee, std::vector<Value *> Args,
                    const std::string &Name = "call");
  Value *createSelect(Value *Cond, Value *True, Value *False,
                      const std::string &Name = "sel");
  Instruction *createPhi(const IRType *Ty, const std::string &Name = "phi");
  Instruction *createUnreachable();

  /// Number of instructions materialized (excludes folded ones); used by
  /// the folding ablation bench.
  [[nodiscard]] std::size_t getNumInstructionsCreated() const {
    return NumCreated;
  }
  [[nodiscard]] std::size_t getNumFolds() const { return NumFolds; }

private:
  Instruction *insert(std::unique_ptr<Instruction> I) {
    assert(InsertBB && "no insertion point");
    ++NumCreated;
    return InsertBB->append(std::move(I));
  }

  Module &M;
  BasicBlock *InsertBB = nullptr;
  bool Fold;
  std::size_t NumCreated = 0;
  std::size_t NumFolds = 0;
};

} // namespace mcc::ir

#endif // MCC_IRBUILDER_IRBUILDER_H
