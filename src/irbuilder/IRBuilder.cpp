#include "irbuilder/IRBuilder.h"

namespace mcc::ir {

namespace {

std::int64_t truncToWidth(std::int64_t V, unsigned Bits, bool Signed) {
  if (Bits >= 64)
    return V;
  std::uint64_t Mask = (1ULL << Bits) - 1;
  std::uint64_t U = static_cast<std::uint64_t>(V) & Mask;
  if (Signed && (U & (1ULL << (Bits - 1))))
    U |= ~Mask;
  return static_cast<std::int64_t>(U);
}

} // namespace

Value *IRBuilder::createBinOp(Opcode Op, Value *L, Value *R,
                              const std::string &Name) {
  if (Fold) {
    auto *LC = ir_dyn_cast<ConstantInt>(L);
    auto *RC = ir_dyn_cast<ConstantInt>(R);
    auto *LF = ir_dyn_cast<ConstantFP>(L);
    auto *RF = ir_dyn_cast<ConstantFP>(R);
    unsigned Bits = L->getType()->getBitWidth();

    // Constant folding.
    if (LC && RC) {
      std::int64_t A = LC->getValue(), B = RC->getValue();
      std::uint64_t UA = LC->getZExtValue(), UB = RC->getZExtValue();
      bool Known = true;
      std::int64_t Result = 0;
      switch (Op) {
      case Opcode::Add:
        Result = A + B;
        break;
      case Opcode::Sub:
        Result = A - B;
        break;
      case Opcode::Mul:
        Result = A * B;
        break;
      case Opcode::SDiv:
        if (B == 0 || (A == INT64_MIN && B == -1))
          Known = false;
        else
          Result = A / B;
        break;
      case Opcode::UDiv:
        if (UB == 0)
          Known = false;
        else
          Result = static_cast<std::int64_t>(UA / UB);
        break;
      case Opcode::SRem:
        if (B == 0 || (A == INT64_MIN && B == -1))
          Known = false;
        else
          Result = A % B;
        break;
      case Opcode::URem:
        if (UB == 0)
          Known = false;
        else
          Result = static_cast<std::int64_t>(UA % UB);
        break;
      case Opcode::And:
        Result = A & B;
        break;
      case Opcode::Or:
        Result = A | B;
        break;
      case Opcode::Xor:
        Result = A ^ B;
        break;
      case Opcode::Shl:
        Result = A << (UB & 63);
        break;
      case Opcode::AShr:
        Result = A >> (UB & 63);
        break;
      case Opcode::LShr:
        Result = static_cast<std::int64_t>(UA >> (UB & 63));
        break;
      default:
        Known = false;
        break;
      }
      if (Known) {
        ++NumFolds;
        return getInt(L->getType(),
                      truncToWidth(Result, Bits, /*Signed=*/true));
      }
    }
    if (LF && RF) {
      double A = LF->getValue(), B = RF->getValue();
      switch (Op) {
      case Opcode::FAdd:
        ++NumFolds;
        return getDouble(A + B);
      case Opcode::FSub:
        ++NumFolds;
        return getDouble(A - B);
      case Opcode::FMul:
        ++NumFolds;
        return getDouble(A * B);
      case Opcode::FDiv:
        ++NumFolds;
        return getDouble(A / B);
      default:
        break;
      }
    }

    // Algebraic identities (Section 1.3's "simplifies expressions
    // on-the-fly").
    auto IsZero = [](Value *V) {
      auto *C = ir_dyn_cast<ConstantInt>(V);
      return C && C->getValue() == 0;
    };
    auto IsOne = [](Value *V) {
      auto *C = ir_dyn_cast<ConstantInt>(V);
      return C && C->getValue() == 1;
    };
    switch (Op) {
    case Opcode::Add:
      if (IsZero(R)) {
        ++NumFolds;
        return L;
      }
      if (IsZero(L)) {
        ++NumFolds;
        return R;
      }
      break;
    case Opcode::Sub:
      if (IsZero(R)) {
        ++NumFolds;
        return L;
      }
      break;
    case Opcode::Mul:
      if (IsOne(R)) {
        ++NumFolds;
        return L;
      }
      if (IsOne(L)) {
        ++NumFolds;
        return R;
      }
      if (IsZero(R) || IsZero(L)) {
        ++NumFolds;
        return getInt(L->getType(), 0);
      }
      break;
    case Opcode::SDiv:
    case Opcode::UDiv:
      if (IsOne(R)) {
        ++NumFolds;
        return L;
      }
      break;
    case Opcode::Shl:
    case Opcode::AShr:
    case Opcode::LShr:
      if (IsZero(R)) {
        ++NumFolds;
        return L;
      }
      break;
    default:
      break;
    }
  }

  return insert(std::make_unique<Instruction>(
      Op, L->getType(), std::vector<Value *>{L, R}, Name));
}

Value *IRBuilder::createPtrDiff(Value *L, Value *R, unsigned ElemSize,
                                const std::string &Name) {
  // Both operands are 64-bit pointers; the byte difference is computed as
  // an i64 subtraction, then scaled to elements.
  auto Diff = std::make_unique<Instruction>(
      Opcode::Sub, IRType::getI64(), std::vector<Value *>{L, R},
      Name + ".bytes");
  Value *Bytes = insert(std::move(Diff));
  return createSDiv(Bytes, getI64(ElemSize), Name);
}

Value *IRBuilder::createICmp(CmpPred Pred, Value *L, Value *R,
                             const std::string &Name) {
  if (Fold) {
    auto *LC = ir_dyn_cast<ConstantInt>(L);
    auto *RC = ir_dyn_cast<ConstantInt>(R);
    if (LC && RC) {
      std::int64_t A = LC->getValue(), B = RC->getValue();
      std::uint64_t UA = LC->getZExtValue(), UB = RC->getZExtValue();
      bool V = false;
      switch (Pred) {
      case CmpPred::EQ:
        V = A == B;
        break;
      case CmpPred::NE:
        V = A != B;
        break;
      case CmpPred::SLT:
        V = A < B;
        break;
      case CmpPred::SLE:
        V = A <= B;
        break;
      case CmpPred::SGT:
        V = A > B;
        break;
      case CmpPred::SGE:
        V = A >= B;
        break;
      case CmpPred::ULT:
        V = UA < UB;
        break;
      case CmpPred::ULE:
        V = UA <= UB;
        break;
      case CmpPred::UGT:
        V = UA > UB;
        break;
      case CmpPred::UGE:
        V = UA >= UB;
        break;
      default:
        break;
      }
      ++NumFolds;
      return getI1(V);
    }
  }
  auto I = std::make_unique<Instruction>(Opcode::ICmp, IRType::getI1(),
                                         std::vector<Value *>{L, R}, Name);
  I->Pred = Pred;
  return insert(std::move(I));
}

Value *IRBuilder::createFCmp(CmpPred Pred, Value *L, Value *R,
                             const std::string &Name) {
  auto I = std::make_unique<Instruction>(Opcode::FCmp, IRType::getI1(),
                                         std::vector<Value *>{L, R}, Name);
  I->Pred = Pred;
  return insert(std::move(I));
}

Value *IRBuilder::createCast(Opcode Op, Value *V, const IRType *To,
                             const std::string &Name) {
  if (V->getType() == To)
    return V;
  if (Fold) {
    if (auto *C = ir_dyn_cast<ConstantInt>(V)) {
      switch (Op) {
      case Opcode::ZExt:
        ++NumFolds;
        return getInt(To, static_cast<std::int64_t>(C->getZExtValue()));
      case Opcode::SExt:
        ++NumFolds;
        return getInt(To, truncToWidth(C->getValue(),
                                       V->getType()->getBitWidth(), true));
      case Opcode::Trunc:
        ++NumFolds;
        return getInt(To,
                      truncToWidth(C->getValue(), To->getBitWidth(), true));
      case Opcode::SIToFP:
        ++NumFolds;
        return getDouble(static_cast<double>(C->getValue()));
      case Opcode::UIToFP:
        ++NumFolds;
        return getDouble(static_cast<double>(C->getZExtValue()));
      default:
        break;
      }
    }
    if (auto *C = ir_dyn_cast<ConstantFP>(V)) {
      switch (Op) {
      case Opcode::FPToSI:
        ++NumFolds;
        return getInt(To, static_cast<std::int64_t>(C->getValue()));
      case Opcode::FPToUI:
        ++NumFolds;
        return getInt(To, static_cast<std::int64_t>(
                              static_cast<std::uint64_t>(C->getValue())));
      default:
        break;
      }
    }
  }
  return insert(std::make_unique<Instruction>(Op, To,
                                              std::vector<Value *>{V}, Name));
}

Value *IRBuilder::createIntCast(Value *V, const IRType *To, bool Signed,
                                const std::string &Name) {
  if (V->getType() == To)
    return V;
  unsigned From = V->getType()->getBitWidth();
  unsigned ToBits = To->getBitWidth();
  if (From == ToBits)
    return V; // same width (i64 vs ptr-sized) — no-op in this IR
  if (From > ToBits)
    return createCast(Opcode::Trunc, V, To, Name);
  return createCast(Signed ? Opcode::SExt : Opcode::ZExt, V, To, Name);
}

Instruction *IRBuilder::createAlloca(const IRType *ElemTy, Value *NumElems,
                                     const std::string &Name) {
  if (!NumElems)
    NumElems = getI64(1);
  auto I = std::make_unique<Instruction>(Opcode::Alloca, IRType::getPtr(),
                                         std::vector<Value *>{NumElems},
                                         Name);
  I->ElemTy = ElemTy;
  return insert(std::move(I));
}

Instruction *IRBuilder::createAllocaInEntry(const IRType *ElemTy,
                                            std::uint64_t NumElems,
                                            const std::string &Name) {
  Function *F = getFunction();
  assert(F && F->getEntryBlock());
  auto I = std::make_unique<Instruction>(
      Opcode::Alloca, IRType::getPtr(),
      std::vector<Value *>{getI64(static_cast<std::int64_t>(NumElems))},
      Name);
  I->ElemTy = ElemTy;
  ++NumCreated;
  // Insert after any existing leading allocas, before everything else.
  BasicBlock *Entry = F->getEntryBlock();
  std::size_t Pos = 0;
  while (Pos < Entry->size() &&
         Entry->instructions()[Pos]->getOpcode() == Opcode::Alloca)
    ++Pos;
  return Entry->insertAt(Pos, std::move(I));
}

Value *IRBuilder::createLoad(const IRType *Ty, Value *Ptr,
                             const std::string &Name) {
  auto I = std::make_unique<Instruction>(Opcode::Load, Ty,
                                         std::vector<Value *>{Ptr}, Name);
  I->ElemTy = Ty;
  return insert(std::move(I));
}

Instruction *IRBuilder::createStore(Value *V, Value *Ptr) {
  return insert(std::make_unique<Instruction>(
      Opcode::Store, IRType::getVoid(), std::vector<Value *>{V, Ptr}));
}

Value *IRBuilder::createGEP(const IRType *ElemTy, Value *Ptr, Value *Index,
                            const std::string &Name) {
  if (Fold)
    if (auto *C = ir_dyn_cast<ConstantInt>(Index); C && C->getValue() == 0) {
      ++NumFolds;
      return Ptr;
    }
  auto I = std::make_unique<Instruction>(Opcode::GEP, IRType::getPtr(),
                                         std::vector<Value *>{Ptr, Index},
                                         Name);
  I->ElemTy = ElemTy;
  return insert(std::move(I));
}

Instruction *IRBuilder::createBr(BasicBlock *Target) {
  return insert(std::make_unique<Instruction>(
      Opcode::Br, IRType::getVoid(), std::vector<Value *>{Target}));
}

Instruction *IRBuilder::createCondBr(Value *Cond, BasicBlock *True,
                                     BasicBlock *False) {
  return insert(std::make_unique<Instruction>(
      Opcode::Br, IRType::getVoid(),
      std::vector<Value *>{Cond, True, False}));
}

Instruction *IRBuilder::createRet(Value *V) {
  return insert(std::make_unique<Instruction>(Opcode::Ret, IRType::getVoid(),
                                              std::vector<Value *>{V}));
}

Instruction *IRBuilder::createRetVoid() {
  return insert(std::make_unique<Instruction>(Opcode::Ret, IRType::getVoid(),
                                              std::vector<Value *>{}));
}

Value *IRBuilder::createCall(Function *Callee, std::vector<Value *> Args,
                             const std::string &Name) {
  std::vector<Value *> Ops;
  Ops.push_back(Callee);
  for (Value *A : Args)
    Ops.push_back(A);
  return insert(std::make_unique<Instruction>(
      Opcode::Call, Callee->getReturnType(), std::move(Ops),
      Callee->getReturnType()->isVoid() ? "" : Name));
}

Value *IRBuilder::createSelect(Value *Cond, Value *True, Value *False,
                               const std::string &Name) {
  if (Fold)
    if (auto *C = ir_dyn_cast<ConstantInt>(Cond)) {
      ++NumFolds;
      return C->getValue() ? True : False;
    }
  return insert(std::make_unique<Instruction>(
      Opcode::Select, True->getType(),
      std::vector<Value *>{Cond, True, False}, Name));
}

Instruction *IRBuilder::createPhi(const IRType *Ty, const std::string &Name) {
  // Phis must precede all non-phi instructions in their block.
  assert(InsertBB && "no insertion point");
  auto I = std::make_unique<Instruction>(Opcode::Phi, Ty,
                                         std::vector<Value *>{}, Name);
  ++NumCreated;
  std::size_t Pos = 0;
  while (Pos < InsertBB->size() &&
         InsertBB->instructions()[Pos]->getOpcode() == Opcode::Phi)
    ++Pos;
  return InsertBB->insertAt(Pos, std::move(I));
}

Instruction *IRBuilder::createUnreachable() {
  return insert(std::make_unique<Instruction>(
      Opcode::Unreachable, IRType::getVoid(), std::vector<Value *>{}));
}

} // namespace mcc::ir
