//===--- CodeGenModule.h - Per-module AST -> IR state -----------*- C++ -*-===//
//
// The CodeGen layer of the paper's Fig. 1. Maps declarations to IR
// entities, drives per-function emission, and owns the OpenMPIRBuilder.
// OpenMP lowering runs in one of two modes matching the paper:
//
//   LegacyShadowAST (default): early outlining in the front-end; loop
//   directives are emitted from the pre-computed shadow helper expressions
//   of OMPLoopDirective; tile/unroll emit their transformed statement, or
//   only loop metadata (Section 2).
//
//   IRBuilder mode (-fopenmp-enable-irbuilder): OMPCanonicalLoop nodes are
//   lowered through OpenMPIRBuilder::createCanonicalLoop; directives are
//   applied as CanonicalLoopInfo transformations (Section 3).
//
//===----------------------------------------------------------------------===//
#ifndef MCC_CODEGEN_CODEGENMODULE_H
#define MCC_CODEGEN_CODEGENMODULE_H

#include "ast/ASTContext.h"
#include "ast/StmtOpenMP.h"
#include "irbuilder/OpenMPIRBuilder.h"
#include "sema/LangOptions.h"

#include <map>

namespace mcc {

class CodeGenModule {
public:
  /// CodeGen only *reads* the (post-Sema, immutable) AST — the context is
  /// taken const so one cached AST artifact can feed many concurrent
  /// code-generation requests in the compile service.
  CodeGenModule(const ASTContext &Ctx, const LangOptions &Opts, ir::Module &M)
      : Ctx(Ctx), Opts(Opts), M(M), OMPBuilder(M) {}

  /// Emits every function and global of the translation unit.
  void emitTranslationUnit(const TranslationUnitDecl *TU);

  [[nodiscard]] const ASTContext &getASTContext() const { return Ctx; }
  [[nodiscard]] const LangOptions &getLangOpts() const { return Opts; }
  [[nodiscard]] ir::Module &getModule() { return M; }
  [[nodiscard]] ir::OpenMPIRBuilder &getOMPBuilder() { return OMPBuilder; }

  /// AST type -> IR type. Arrays and functions lower to ptr in value
  /// position; use convertTypeForMem for storage layout.
  const ir::IRType *convertType(QualType T) const;
  /// Element type and count for a declaration's storage.
  std::pair<const ir::IRType *, std::uint64_t>
  convertTypeForMem(QualType T) const;

  ir::Function *getOrCreateFunction(const FunctionDecl *FD);
  ir::GlobalVariable *getOrCreateGlobal(const VarDecl *VD);

  /// Unique name for an outlined function.
  std::string makeOutlinedName(const std::string &Base) {
    return Base + ".omp_outlined." + std::to_string(OutlinedCounter++);
  }

private:
  const ASTContext &Ctx;
  LangOptions Opts;
  ir::Module &M;
  ir::OpenMPIRBuilder OMPBuilder;
  std::map<const FunctionDecl *, ir::Function *> FunctionMap;
  std::map<const VarDecl *, ir::GlobalVariable *> GlobalMap;
  unsigned OutlinedCounter = 0;
};

} // namespace mcc

#endif // MCC_CODEGEN_CODEGENMODULE_H
