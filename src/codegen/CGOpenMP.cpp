//===--- CGOpenMP.cpp - OpenMP directive code generation --------------------===//
//
// Implements both lowering pipelines of the paper:
//
//  * Legacy shadow-AST (Section 2): "early outlining" — parallel regions
//    are outlined here in the front-end; worksharing loops are emitted from
//    the pre-computed OMPLoopDirective shadow helpers; standalone tile
//    emits its transformed statement; standalone unroll defers to the
//    mid-end LoopUnroll pass via llvm.loop.unroll.* metadata.
//
//  * IRBuilder mode (Section 3): OMPCanonicalLoop nodes lower through
//    OpenMPIRBuilder::createCanonicalLoop; stacked directives apply
//    tileLoops / unrollLoopPartial / collapseLoops / applyWorkshareLoop on
//    CanonicalLoopInfo handles.
//
//===----------------------------------------------------------------------===//
#include "codegen/CodeGenFunction.h"

#include "ast/ExprConstant.h"

namespace mcc {

using namespace ir;

ir::Value *CodeGenFunction::emitGtid() {
  return B.createCall(
      OMPB.getOrCreateRuntimeFunction("__kmpc_global_thread_num"), {},
      "gtid");
}

void CodeGenFunction::emitOMPBarrier() {
  B.createCall(OMPB.getOrCreateRuntimeFunction("__kmpc_barrier"),
               {emitGtid()});
}

void CodeGenFunction::emitCapturedFunctionInline(
    const CapturedStmt *CS, std::span<ir::Value *const> ParamValues) {
  const CapturedDecl *CD = CS->getCapturedDecl();
  assert(ParamValues.size() == CD->getNumParams());
  // Bind each implicit parameter to a temporary slot holding the supplied
  // value, then emit the body inline.
  std::vector<std::pair<const ValueDecl *, ir::Value *>> Saved;
  for (unsigned I = 0; I < CD->getNumParams(); ++I) {
    const ImplicitParamDecl *P = CD->getParam(I);
    Instruction *Tmp = B.createAllocaInEntry(
        CGM.convertType(P->getType()), 1, std::string(P->getName()) + ".val");
    B.createStore(ParamValues[I], Tmp);
    auto It = LocalAddrs.find(P);
    Saved.emplace_back(P, It == LocalAddrs.end() ? nullptr : It->second);
    LocalAddrs[P] = Tmp;
  }
  emitStmt(CS->getCapturedStmt());
  for (auto &[D, Old] : Saved) {
    if (Old)
      LocalAddrs[D] = Old;
    else
      LocalAddrs.erase(D);
  }
}

// ===---------------------- Privatization clauses ---------------------=== //

std::vector<CodeGenFunction::ReductionInfo>
CodeGenFunction::emitPrivatizationClauses(
    std::span<OMPClause *const> Clauses) {
  std::vector<ReductionInfo> Reductions;
  for (const OMPClause *C : Clauses) {
    if (const auto *PC = clause_dyn_cast<OMPPrivateClause>(C)) {
      for (const DeclRefExpr *Ref : PC->getVarRefs()) {
        const auto *VD = decl_cast<VarDecl>(Ref->getDecl());
        auto [ElemTy, Count] = CGM.convertTypeForMem(VD->getType());
        Instruction *Priv = B.createAllocaInEntry(
            ElemTy, Count, std::string(VD->getName()) + ".private");
        LocalAddrs[VD] = Priv;
      }
    } else if (const auto *FC = clause_dyn_cast<OMPFirstPrivateClause>(C)) {
      for (const DeclRefExpr *Ref : FC->getVarRefs()) {
        const auto *VD = decl_cast<VarDecl>(Ref->getDecl());
        ir::Value *SharedAddr = addressOfDecl(VD);
        auto [ElemTy, Count] = CGM.convertTypeForMem(VD->getType());
        Instruction *Priv = B.createAllocaInEntry(
            ElemTy, Count, std::string(VD->getName()) + ".firstprivate");
        // Copy-initialize from the shared original (scalars).
        B.createStore(B.createLoad(ElemTy, SharedAddr), Priv);
        LocalAddrs[VD] = Priv;
      }
    } else if (const auto *RC = clause_dyn_cast<OMPReductionClause>(C)) {
      for (const DeclRefExpr *Ref : RC->getVarRefs()) {
        const auto *VD = decl_cast<VarDecl>(Ref->getDecl());
        ir::Value *SharedAddr = addressOfDecl(VD);
        const IRType *Ty = CGM.convertType(VD->getType());
        Instruction *Priv = B.createAllocaInEntry(
            Ty, 1, std::string(VD->getName()) + ".red");
        // Initialize to the operator's identity element.
        ir::Value *Identity;
        if (Ty->isDouble()) {
          double Id = 0;
          switch (RC->getOperator()) {
          case OpenMPReductionOp::Mul:
            Id = 1;
            break;
          case OpenMPReductionOp::Min:
            Id = 1e300;
            break;
          case OpenMPReductionOp::Max:
            Id = -1e300;
            break;
          default:
            Id = 0;
            break;
          }
          Identity = B.getDouble(Id);
        } else {
          std::int64_t Id = 0;
          bool Signed = VD->getType()->isSignedIntegerType();
          unsigned Bits = Ty->getBitWidth();
          std::int64_t MaxV = Signed ? ((1LL << (Bits - 1)) - 1) : -1;
          std::int64_t MinV = Signed ? -(1LL << (Bits - 1)) : 0;
          switch (RC->getOperator()) {
          case OpenMPReductionOp::Mul:
          case OpenMPReductionOp::LogAnd:
            Id = 1;
            break;
          case OpenMPReductionOp::Min:
            Id = MaxV;
            break;
          case OpenMPReductionOp::Max:
            Id = MinV;
            break;
          case OpenMPReductionOp::BitAnd:
            Id = -1;
            break;
          default:
            Id = 0;
            break;
          }
          Identity = B.getInt(Ty, Id);
        }
        B.createStore(Identity, Priv);
        LocalAddrs[VD] = Priv;
        Reductions.push_back({VD, RC->getOperator(), Priv, SharedAddr});
      }
    }
  }
  return Reductions;
}

void CodeGenFunction::emitReductionFinalization(
    const std::vector<ReductionInfo> &Rs) {
  if (Rs.empty())
    return;
  // Combine under the critical lock (the __kmpc_reduce shortcut of real
  // libomp is approximated by a critical section).
  B.createCall(OMPB.getOrCreateRuntimeFunction("__kmpc_critical"),
               {emitGtid()});
  for (const ReductionInfo &R : Rs) {
    const IRType *Ty = CGM.convertType(R.Var->getType());
    ir::Value *Mine = B.createLoad(Ty, R.PrivateAddr, "red.mine");
    ir::Value *Shared = B.createLoad(Ty, R.SharedAddr, "red.shared");
    ir::Value *Combined = Shared;
    bool Signed = R.Var->getType()->isSignedIntegerType();
    if (Ty->isDouble()) {
      switch (R.Op) {
      case OpenMPReductionOp::Add:
        Combined = B.createBinOp(Opcode::FAdd, Shared, Mine, "red");
        break;
      case OpenMPReductionOp::Mul:
        Combined = B.createBinOp(Opcode::FMul, Shared, Mine, "red");
        break;
      case OpenMPReductionOp::Min:
        Combined = B.createSelect(
            B.createFCmp(CmpPred::OLT, Mine, Shared, "c"), Mine, Shared,
            "red");
        break;
      case OpenMPReductionOp::Max:
        Combined = B.createSelect(
            B.createFCmp(CmpPred::OGT, Mine, Shared, "c"), Mine, Shared,
            "red");
        break;
      default:
        Combined = Shared;
        break;
      }
    } else {
      switch (R.Op) {
      case OpenMPReductionOp::Add:
        Combined = B.createAdd(Shared, Mine, "red");
        break;
      case OpenMPReductionOp::Mul:
        Combined = B.createMul(Shared, Mine, "red");
        break;
      case OpenMPReductionOp::Min:
        Combined = B.createSelect(
            B.createICmp(Signed ? CmpPred::SLT : CmpPred::ULT, Mine, Shared,
                         "c"),
            Mine, Shared, "red");
        break;
      case OpenMPReductionOp::Max:
        Combined = B.createSelect(
            B.createICmp(Signed ? CmpPred::SGT : CmpPred::UGT, Mine, Shared,
                         "c"),
            Mine, Shared, "red");
        break;
      case OpenMPReductionOp::BitAnd:
        Combined = B.createBinOp(Opcode::And, Shared, Mine, "red");
        break;
      case OpenMPReductionOp::BitOr:
        Combined = B.createBinOp(Opcode::Or, Shared, Mine, "red");
        break;
      case OpenMPReductionOp::BitXor:
        Combined = B.createBinOp(Opcode::Xor, Shared, Mine, "red");
        break;
      case OpenMPReductionOp::LogAnd: {
        ir::Value *Both = B.createBinOp(
            Opcode::And,
            B.createCast(Opcode::ZExt,
                         B.createICmp(CmpPred::NE, Shared,
                                      B.getInt(Ty, 0), "s"),
                         Ty, "sz"),
            B.createCast(Opcode::ZExt,
                         B.createICmp(CmpPred::NE, Mine, B.getInt(Ty, 0),
                                      "m"),
                         Ty, "mz"),
            "red");
        Combined = Both;
        break;
      }
      case OpenMPReductionOp::LogOr: {
        ir::Value *Either = B.createBinOp(Opcode::Or, Shared, Mine, "or");
        Combined = B.createCast(
            Opcode::ZExt,
            B.createICmp(CmpPred::NE, Either, B.getInt(Ty, 0), "nz"), Ty,
            "red");
        break;
      }
      }
    }
    B.createStore(Combined, R.SharedAddr);
  }
  B.createCall(OMPB.getOrCreateRuntimeFunction("__kmpc_end_critical"),
               {emitGtid()});
}

// ===--------------------------- Outlining ----------------------------=== //

ir::Function *CodeGenFunction::emitOutlinedFunction(
    const CapturedStmt *CS, const std::string &Name,
    std::vector<const VarDecl *> &Captures,
    std::span<OMPClause *const> Clauses) {
  for (const CapturedStmt::Capture &Cap : CS->captures())
    Captures.push_back(Cap.Var);

  ir::Function *F = CGM.getModule().createFunction(
      Name, IRType::getVoid(),
      {IRType::getPtr(), IRType::getPtr(), IRType::getPtr()},
      {".global_tid.", ".bound_tid.", "__context"});

  CodeGenFunction CGF(CGM);
  CGF.CurFn = F;
  CGF.CurFnDecl = CurFnDecl;
  CGF.B.setInsertPoint(F->createBlock("entry"));

  // Unpack the context array: slot i holds the address of capture i.
  Argument *Ctx = F->getArg(2);
  for (std::size_t I = 0; I < Captures.size(); ++I) {
    ir::Value *SlotPtr = CGF.B.createGEP(
        IRType::getPtr(), Ctx, CGF.B.getI64(static_cast<std::int64_t>(I)),
        std::string(Captures[I]->getName()) + ".slot");
    ir::Value *Addr =
        CGF.B.createLoad(IRType::getPtr(), SlotPtr,
                         std::string(Captures[I]->getName()) + ".addr");
    CGF.LocalAddrs[Captures[I]] = Addr;
  }

  std::vector<ReductionInfo> Reductions =
      CGF.emitPrivatizationClauses(Clauses);

  // The captured statement may be a loop for a combined directive; the
  // caller is responsible for having arranged the right statement (the
  // directive dispatcher calls this with the directive's body logic via
  // the directive node, so here we emit the statement directly for plain
  // "#pragma omp parallel").
  CGF.emitStmt(CS->getCapturedStmt());

  CGF.emitReductionFinalization(Reductions);
  if (!CGF.B.isBlockTerminated())
    CGF.B.createRetVoid();
  for (const auto &BB : F->blocks())
    if (!BB->getTerminator()) {
      CGF.B.setInsertPoint(BB.get());
      CGF.B.createUnreachable();
    }
  return F;
}

namespace {
/// Emits the fork-call site: builds the context array of capture
/// addresses and calls __kmpc_fork_call.
void emitForkCall(CodeGenFunction &CGF, ir::IRBuilder &B,
                  ir::OpenMPIRBuilder &OMPB, ir::Function *Outlined,
                  const std::vector<ir::Value *> &CaptureAddrs,
                  ir::Value *NumThreads) {
  (void)CGF;
  Instruction *Ctx = B.createAlloca(
      IRType::getPtr(),
      B.getI64(std::max<std::int64_t>(
          1, static_cast<std::int64_t>(CaptureAddrs.size()))),
      "omp.context");
  for (std::size_t I = 0; I < CaptureAddrs.size(); ++I) {
    ir::Value *Slot = B.createGEP(IRType::getPtr(), Ctx,
                                  B.getI64(static_cast<std::int64_t>(I)));
    B.createStore(CaptureAddrs[I], Slot);
  }
  B.createCall(
      OMPB.getOrCreateRuntimeFunction("__kmpc_fork_call"),
      {Outlined, B.getI32(static_cast<std::int32_t>(CaptureAddrs.size())),
       Ctx, NumThreads ? NumThreads : B.getI32(0)});
}
} // namespace

// ===--------------------------- Dispatcher ---------------------------=== //

void CodeGenFunction::emitOMPDirective(const OMPExecutableDirective *D) {
  switch (D->getDirectiveKind()) {
  case OpenMPDirectiveKind::Parallel:
    return emitOMPParallel(stmt_cast<OMPParallelDirective>(D));
  case OpenMPDirectiveKind::Barrier:
    return emitOMPBarrier();
  case OpenMPDirectiveKind::Critical: {
    B.createCall(OMPB.getOrCreateRuntimeFunction("__kmpc_critical"),
                 {emitGtid()});
    emitStmt(D->getAssociatedStmt());
    B.createCall(OMPB.getOrCreateRuntimeFunction("__kmpc_end_critical"),
                 {emitGtid()});
    return;
  }
  case OpenMPDirectiveKind::Master:
  case OpenMPDirectiveKind::Single: {
    // single is approximated by master + barrier (documented deviation).
    ir::Value *Tid = B.createCall(
        OMPB.getOrCreateRuntimeFunction("omp_get_thread_num"), {}, "tid");
    ir::Value *IsMaster =
        B.createICmp(CmpPred::EQ, Tid, B.getI32(0), "is.master");
    BasicBlock *ThenBB = CurFn->createBlock("omp.master.then");
    BasicBlock *EndBB = CurFn->createBlock("omp.master.end");
    B.createCondBr(IsMaster, ThenBB, EndBB);
    B.setInsertPoint(ThenBB);
    emitStmt(D->getAssociatedStmt());
    if (!B.isBlockTerminated())
      B.createBr(EndBB);
    B.setInsertPoint(EndBB);
    if (D->getDirectiveKind() == OpenMPDirectiveKind::Single &&
        !D->getSingleClause<OMPNoWaitClause>())
      emitOMPBarrier();
    return;
  }
  case OpenMPDirectiveKind::For:
  case OpenMPDirectiveKind::ParallelFor:
  case OpenMPDirectiveKind::Simd:
  case OpenMPDirectiveKind::ForSimd:
  case OpenMPDirectiveKind::Tile:
  case OpenMPDirectiveKind::Unroll:
  case OpenMPDirectiveKind::Reverse:
  case OpenMPDirectiveKind::Interchange:
  case OpenMPDirectiveKind::Fuse:
  case OpenMPDirectiveKind::DistributeLoop: {
    if (CGM.getLangOpts().OpenMPEnableIRBuilder)
      return emitOMPLoopBasedDirectiveIRBuilder(
          stmt_cast<OMPLoopBasedDirective>(D));
    // Legacy pipeline.
    switch (D->getDirectiveKind()) {
    case OpenMPDirectiveKind::Tile:
      return emitOMPTileLegacy(stmt_cast<OMPTileDirective>(D));
    case OpenMPDirectiveKind::Unroll:
      return emitOMPUnrollLegacy(stmt_cast<OMPUnrollDirective>(D));
    case OpenMPDirectiveKind::Reverse:
    case OpenMPDirectiveKind::Interchange:
    case OpenMPDirectiveKind::Fuse:
    case OpenMPDirectiveKind::DistributeLoop:
      return emitOMPTransformLegacy(
          stmt_cast<OMPLoopTransformationDirective>(D));
    default:
      return emitOMPLoopDirectiveLegacy(stmt_cast<OMPLoopDirective>(D));
    }
  }
  default:
    assert(false && "unhandled OpenMP directive in CodeGen");
  }
}

// ===---------------------- Legacy: parallel --------------------------=== //

void CodeGenFunction::emitOMPParallel(const OMPParallelDirective *D) {
  const auto *CS = stmt_cast<CapturedStmt>(D->getAssociatedStmt());
  std::vector<const VarDecl *> Captures;
  ir::Function *Outlined = emitOutlinedFunction(
      CS, CGM.makeOutlinedName(std::string(CurFnDecl->getName())), Captures,
      D->clauses());

  std::vector<ir::Value *> CaptureAddrs;
  for (const VarDecl *V : Captures)
    CaptureAddrs.push_back(addressOfDecl(V));

  ir::Value *NumThreads = nullptr;
  if (const auto *NT = D->getSingleClause<OMPNumThreadsClause>())
    NumThreads = B.createIntCast(emitExpr(NT->getNumThreads()),
                                 IRType::getI32(), true, "numthreads");
  emitForkCall(*this, B, OMPB, Outlined, CaptureAddrs, NumThreads);
}

// ===------------------ Legacy: worksharing loops ---------------------=== //

void CodeGenFunction::emitWorkshareFromHelpers(const OMPLoopDirective *D) {
  const OMPLoopHelperExprs &H = D->getLoopHelpers();
  bool IsSimdOnly =
      D->getDirectiveKind() == OpenMPDirectiveKind::Simd;

  std::vector<ReductionInfo> Reductions;
  if (!isOpenMPParallelDirective(D->getDirectiveKind()))
    Reductions = emitPrivatizationClauses(D->clauses());
  // (for combined parallel-for, privatization already ran in the outlined
  // function prologue; reductions were registered there.)

  // PreInits: '.capture_expr.' trip counts etc.
  if (H.PreInits)
    emitStmt(H.PreInits);

  // Control variables.
  emitVarDecl(H.IterationVar); // no init
  emitVarDecl(H.LowerBoundVar);
  emitVarDecl(H.UpperBoundVar);
  emitVarDecl(H.StrideVar);
  emitVarDecl(H.IsLastIterVar);

  // Privatized loop counters (the user-visible i, j, ...).
  for (const OMPLoopHelperExprs::LoopData &L : H.Loops) {
    if (LocalAddrs.count(L.CounterVar))
      continue; // already privatized via a clause
    auto [ElemTy, Count] = CGM.convertTypeForMem(L.CounterVar->getType());
    Instruction *Slot = B.createAllocaInEntry(
        ElemTy, Count, std::string(L.CounterVar->getName()));
    LocalAddrs[L.CounterVar] = Slot;
  }

  const auto *Sched = D->getSingleClause<OMPScheduleClause>();
  OpenMPScheduleKind SchedKind =
      Sched ? Sched->getScheduleKind() : OpenMPScheduleKind::Static;
  const Expr *ChunkExpr = Sched ? Sched->getChunkSize() : nullptr;
  bool UseStaticInit = !IsSimdOnly &&
                       SchedKind == OpenMPScheduleKind::Static && !ChunkExpr;
  bool NoWait = D->getSingleClause<OMPNoWaitClause>() != nullptr;

  auto EmitInnerLoop = [&](ir::LoopMetadata MD) {
    // iv = lb; while (iv <= ub) { counters; body; ++iv }
    emitExpr(H.Init);
    BasicBlock *CondBB = CurFn->createBlock("omp.inner.for.cond");
    BasicBlock *BodyBB = CurFn->createBlock("omp.inner.for.body");
    BasicBlock *IncBB = CurFn->createBlock("omp.inner.for.inc");
    BasicBlock *EndBB = CurFn->createBlock("omp.inner.for.end");
    B.createBr(CondBB);
    B.setInsertPoint(CondBB);
    B.createCondBr(emitCondition(H.Cond), BodyBB, EndBB);
    B.setInsertPoint(BodyBB);
    for (const OMPLoopHelperExprs::LoopData &L : H.Loops)
      emitExpr(L.CounterUpdate);
    emitStmt(H.Body);
    if (!B.isBlockTerminated())
      B.createBr(IncBB);
    B.setInsertPoint(IncBB);
    emitExpr(H.Inc);
    Instruction *Latch = B.createBr(CondBB);
    Latch->LoopMD = MD;
    B.setInsertPoint(EndBB);
  };

  ir::LoopMetadata SimdMD;
  if (IsSimdOnly || D->getDirectiveKind() == OpenMPDirectiveKind::ForSimd)
    SimdMD.Vectorize = true;

  if (IsSimdOnly) {
    // No worksharing: iterate the whole logical space with simd metadata.
    EmitInnerLoop(SimdMD);
    emitReductionFinalization(Reductions);
    return;
  }

  if (UseStaticInit) {
    ir::Value *Gtid = emitGtid();
    B.createCall(
        OMPB.getOrCreateRuntimeFunction("__kmpc_for_static_init"),
        {Gtid, B.getI32(static_cast<std::int32_t>(OMPScheduleType::Static)),
         addressOfDecl(H.IsLastIterVar), addressOfDecl(H.LowerBoundVar),
         addressOfDecl(H.UpperBoundVar), addressOfDecl(H.StrideVar),
         B.getI64(1), B.getI64(0)});
    emitExpr(H.EnsureUpperBound);
    EmitInnerLoop(SimdMD);
    B.createCall(OMPB.getOrCreateRuntimeFunction("__kmpc_for_static_fini"),
                 {emitGtid()});
  } else {
    // Chunked static / dynamic / guided: dispatch loop.
    std::int32_t SchedVal;
    switch (SchedKind) {
    case OpenMPScheduleKind::Static:
      SchedVal = static_cast<std::int32_t>(OMPScheduleType::StaticChunked);
      break;
    case OpenMPScheduleKind::Guided:
      SchedVal = static_cast<std::int32_t>(OMPScheduleType::GuidedChunked);
      break;
    default:
      SchedVal = static_cast<std::int32_t>(OMPScheduleType::DynamicChunked);
      break;
    }
    ir::Value *Chunk =
        ChunkExpr ? B.createIntCast(emitExpr(ChunkExpr), IRType::getI64(),
                                    true, "chunk")
                  : B.getI64(1);
    ir::Value *NumIter = emitExpr(H.NumIterations);
    NumIter = B.createIntCast(NumIter, IRType::getI64(), false, "trip64");
    B.createCall(OMPB.getOrCreateRuntimeFunction("__kmpc_dispatch_init"),
                 {emitGtid(), B.getI32(SchedVal), B.getI64(0),
                  B.createSub(NumIter, B.getI64(1), "lastiter"), Chunk});

    BasicBlock *DispCondBB = CurFn->createBlock("omp.dispatch.cond");
    BasicBlock *DispBodyBB = CurFn->createBlock("omp.dispatch.body");
    BasicBlock *DispEndBB = CurFn->createBlock("omp.dispatch.end");
    B.createBr(DispCondBB);
    B.setInsertPoint(DispCondBB);
    ir::Value *More = B.createCall(
        OMPB.getOrCreateRuntimeFunction("__kmpc_dispatch_next"),
        {emitGtid(), addressOfDecl(H.IsLastIterVar),
         addressOfDecl(H.LowerBoundVar), addressOfDecl(H.UpperBoundVar)},
        "more");
    B.createCondBr(B.createICmp(CmpPred::NE, More, B.getI32(0), "haschunk"),
                   DispBodyBB, DispEndBB);
    B.setInsertPoint(DispBodyBB);
    EmitInnerLoop(SimdMD);
    B.createBr(DispCondBB);
    B.setInsertPoint(DispEndBB);
  }

  emitReductionFinalization(Reductions);
  if (!NoWait)
    emitOMPBarrier();
}

void CodeGenFunction::emitOMPLoopDirectiveLegacy(const OMPLoopDirective *D) {
  if (isOpenMPParallelDirective(D->getDirectiveKind())) {
    // Combined parallel-for: outline, then emit the worksharing loop
    // inside the outlined function.
    const auto *CS = stmt_cast<CapturedStmt>(D->getAssociatedStmt());
    std::vector<const VarDecl *> Captures;
    for (const CapturedStmt::Capture &Cap : CS->captures())
      Captures.push_back(Cap.Var);

    ir::Function *Outlined = CGM.getModule().createFunction(
        CGM.makeOutlinedName(std::string(CurFnDecl->getName())),
        IRType::getVoid(),
        {IRType::getPtr(), IRType::getPtr(), IRType::getPtr()},
        {".global_tid.", ".bound_tid.", "__context"});

    CodeGenFunction CGF(CGM);
    CGF.CurFn = Outlined;
    CGF.CurFnDecl = CurFnDecl;
    CGF.B.setInsertPoint(Outlined->createBlock("entry"));
    Argument *Ctx = Outlined->getArg(2);
    for (std::size_t I = 0; I < Captures.size(); ++I) {
      ir::Value *SlotPtr = CGF.B.createGEP(
          IRType::getPtr(), Ctx, CGF.B.getI64(static_cast<std::int64_t>(I)));
      CGF.LocalAddrs[Captures[I]] =
          CGF.B.createLoad(IRType::getPtr(), SlotPtr,
                           std::string(Captures[I]->getName()) + ".addr");
    }
    std::vector<ReductionInfo> Reductions =
        CGF.emitPrivatizationClauses(D->clauses());
    CGF.emitWorkshareFromHelpers(D);
    CGF.emitReductionFinalization(Reductions);
    if (!CGF.B.isBlockTerminated())
      CGF.B.createRetVoid();

    std::vector<ir::Value *> CaptureAddrs;
    for (const VarDecl *V : Captures)
      CaptureAddrs.push_back(addressOfDecl(V));
    ir::Value *NumThreads = nullptr;
    if (const auto *NT = D->getSingleClause<OMPNumThreadsClause>())
      NumThreads = B.createIntCast(emitExpr(NT->getNumThreads()),
                                   IRType::getI32(), true, "numthreads");
    emitForkCall(*this, B, OMPB, Outlined, CaptureAddrs, NumThreads);
    return;
  }
  // Inline worksharing (within the current team) / simd.
  emitWorkshareFromHelpers(D);
}

// ===------------------ Legacy: loop transformations ------------------=== //

void CodeGenFunction::emitOMPTileLegacy(const OMPTileDirective *D) {
  // "If encountering a non-associated tile construct, CodeGen will simply
  // emit the transformed AST in its place." (Section 2.2)
  if (D->getPreInits())
    emitStmt(D->getPreInits());
  emitStmt(D->getTransformedStmt());
}

void CodeGenFunction::emitOMPTransformLegacy(
    const OMPLoopTransformationDirective *D) {
  // reverse / interchange: Sema already built the de-sugared shadow loop
  // nest over the permuted/mirrored logical spaces; emit it in place.
  if (D->getPreInits())
    emitStmt(D->getPreInits());
  emitStmt(D->getTransformedStmt());
}

void CodeGenFunction::emitOMPUnrollLegacy(const OMPUnrollDirective *D) {
  if (D->getPreInits())
    emitStmt(D->getPreInits());
  if (D->hasPartialClause()) {
    // The transformed AST's inner loop carries the LoopHintAttr that
    // becomes llvm.loop.unroll.count metadata.
    emitStmt(D->getTransformedStmt());
    return;
  }
  // Full/heuristic: "it is more efficient to defer unrolling to the
  // LoopUnroll pass by attaching llvm.loop.unroll.* metadata to the loop
  // without even tiling the loop beforehand." (Section 2.2)
  ir::LoopMetadata MD;
  if (D->hasFullClause())
    MD.UnrollFull = true;
  else
    MD.UnrollEnable = true;
  // The associated statement may itself be a loop transformation whose
  // generated loop this unroll applies to: descend through transformed
  // statements (the consumption mechanism of Section 2).
  Stmt *S = D->getAssociatedStmt();
  while (true) {
    if (auto *CL = stmt_dyn_cast<OMPCanonicalLoop>(S)) {
      S = CL->getLoopStmt();
      continue;
    }
    if (auto *CS = stmt_dyn_cast<CompoundStmt>(S); CS && CS->size() == 1) {
      S = CS->body()[0];
      continue;
    }
    if (auto *TD = stmt_dyn_cast<OMPLoopTransformationDirective>(S)) {
      if (TD->getPreInits())
        emitStmt(TD->getPreInits());
      S = TD->getTransformedStmt();
      continue;
    }
    break;
  }
  emitForStmt(stmt_cast<ForStmt>(S), MD);
}

// ===----------------- IRBuilder pipeline (Section 3) -----------------=== //

ir::Value *
CodeGenFunction::emitCanonicalDistance(const OMPCanonicalLoop *CL) {
  const CapturedStmt *Dist = CL->getDistanceFunc();
  const ImplicitParamDecl *ResultParam = Dist->getCapturedDecl()->getParam(0);
  const auto *PT =
      type_cast<PointerType>(ResultParam->getType().getTypePtr());
  const IRType *LT = CGM.convertType(PT->getPointeeType());
  // Constant distance functions ("*Result = <literal>") fold directly so
  // the trip count stays identifiable as a constant (enabling full
  // unrolling in the mid-end without store/load forwarding).
  if (const auto *Assign =
          stmt_dyn_cast<BinaryOperator>(Dist->getCapturedStmt()))
    if (auto V = evaluateInteger(Assign->getRHS()))
      return B.getInt(LT, *V);
  Instruction *Tmp = B.createAllocaInEntry(LT, 1, "omp.distance");
  std::vector<ir::Value *> Params = {Tmp};
  emitCapturedFunctionInline(Dist, Params);
  return B.createLoad(LT, Tmp, "omp.tripcount");
}

void CodeGenFunction::emitCanonicalLoopVarBinding(const OMPCanonicalLoop *CL,
                                                  ir::Value *IV) {
  const ValueDecl *UserVar = CL->getLoopVarRef()->getDecl();
  auto It = LocalAddrs.find(UserVar);
  ir::Value *VarAddr;
  if (It != LocalAddrs.end()) {
    VarAddr = It->second;
  } else {
    VarAddr = B.createAllocaInEntry(CGM.convertType(UserVar->getType()), 1,
                                    std::string(UserVar->getName()));
    LocalAddrs[UserVar] = VarAddr;
  }
  const CapturedStmt *LVF = CL->getLoopVarFunc();
  const ImplicitParamDecl *LogicalParam =
      LVF->getCapturedDecl()->getParam(1);
  ir::Value *Logical = B.createIntCast(
      IV, CGM.convertType(LogicalParam->getType()), false, "omp.logical");
  std::vector<ir::Value *> Params = {VarAddr, Logical};
  emitCapturedFunctionInline(LVF, Params);
}

std::vector<ir::CanonicalLoopInfo *>
CodeGenFunction::emitCanonicalLoopNest(const OMPCanonicalLoop *Outer) {
  // Collect the perfect nest of OMPCanonicalLoop wrappers.
  std::vector<const OMPCanonicalLoop *> Nest;
  const OMPCanonicalLoop *Cur = Outer;
  while (Cur) {
    Nest.push_back(Cur);
    const auto *For = stmt_cast<ForStmt>(Cur->getLoopStmt());
    const Stmt *Body = For->getBody();
    while (const auto *CS = stmt_dyn_cast<CompoundStmt>(Body)) {
      if (CS->size() != 1)
        break;
      Body = CS->body()[0];
    }
    Cur = stmt_dyn_cast<OMPCanonicalLoop>(Body);
  }
  const unsigned N = static_cast<unsigned>(Nest.size());

  // Hoist the distance computations: evaluate every loop's trip count
  // before the outermost skeleton (required for tileLoops/collapseLoops to
  // compute floor counts in the outermost preheader).
  std::vector<ir::Value *> TripCounts(N);
  for (unsigned K = 0; K < N; ++K)
    TripCounts[K] = emitCanonicalDistance(Nest[K]);

  // Create the skeletons, nesting via the BodyGen callbacks. The
  // innermost body materializes every loop's user variable via its
  // loop-variable function, then emits the original body.
  std::vector<ir::CanonicalLoopInfo *> CLIs(N);
  std::vector<ir::Value *> IVs(N);

  std::function<void(unsigned)> EmitLevel = [&](unsigned K) {
    CLIs[K] = OMPB.createCanonicalLoop(
        B, TripCounts[K],
        [&, K](IRBuilder &, ir::Value *IV) {
          IVs[K] = IV;
          if (K + 1 < N) {
            EmitLevel(K + 1);
            return;
          }
          // Innermost: bind user variables, then the body.
          for (unsigned J = 0; J < N; ++J)
            emitCanonicalLoopVarBinding(Nest[J], IVs[J]);
          emitStmt(stmt_cast<ForStmt>(Nest[N - 1]->getLoopStmt())->getBody());
        },
        "omp_loop");
  };
  EmitLevel(0);
  return CLIs;
}

std::vector<ir::CanonicalLoopInfo *>
CodeGenFunction::emitLoopConstruct(const Stmt *S) {
  while (const auto *CS = stmt_dyn_cast<CompoundStmt>(S)) {
    assert(CS->size() == 1);
    S = CS->body()[0];
  }
  if (const auto *CL = stmt_dyn_cast<OMPCanonicalLoop>(S))
    return emitCanonicalLoopNest(CL);

  if (const auto *UD = stmt_dyn_cast<OMPUnrollDirective>(S)) {
    std::vector<CanonicalLoopInfo *> Inner =
        emitLoopConstruct(UD->getAssociatedStmt());
    unsigned Factor = CGM.getLangOpts().HeuristicUnrollFactor;
    if (const auto *PC = UD->getSingleClause<OMPPartialClause>())
      if (PC->getFactor())
        Factor = static_cast<unsigned>(PC->getFactor()->getResult());
    CanonicalLoopInfo *Unrolled = nullptr;
    OMPB.unrollLoopPartial(Inner[0], Factor, &Unrolled);
    return {Unrolled};
  }
  if (const auto *TD = stmt_dyn_cast<OMPTileDirective>(S)) {
    std::vector<CanonicalLoopInfo *> Inner =
        emitLoopConstruct(TD->getAssociatedStmt());
    const auto *Sizes = TD->getSingleClause<OMPSizesClause>();
    std::vector<ir::Value *> SizeVals;
    for (unsigned K = 0; K < Sizes->getNumSizes(); ++K)
      SizeVals.push_back(B.getInt(Inner[K]->getTripCount()->getType(),
                                  Sizes->getSize(K)));
    std::vector<CanonicalLoopInfo *> Consumed(
        Inner.begin(),
        Inner.begin() + static_cast<std::ptrdiff_t>(Sizes->getNumSizes()));
    return OMPB.tileLoops(Consumed, SizeVals);
  }
  if (const auto *RD = stmt_dyn_cast<OMPReverseDirective>(S)) {
    std::vector<CanonicalLoopInfo *> Inner =
        emitLoopConstruct(RD->getAssociatedStmt());
    OMPB.reverseLoop(Inner[0]);
    return Inner;
  }
  if (const auto *ID = stmt_dyn_cast<OMPInterchangeDirective>(S)) {
    std::vector<CanonicalLoopInfo *> Inner =
        emitLoopConstruct(ID->getAssociatedStmt());
    std::vector<unsigned> Perm = ID->getPermutation();
    std::vector<CanonicalLoopInfo *> Consumed(
        Inner.begin(),
        Inner.begin() + static_cast<std::ptrdiff_t>(Perm.size()));
    return OMPB.interchangeLoops(Consumed, Perm);
  }
  if (const auto *FD = stmt_dyn_cast<OMPFuseDirective>(S))
    return {emitOMPFuseIRBuilder(FD)};
  assert(false && "unexpected statement in IRBuilder loop construct");
  return {};
}

ir::CanonicalLoopInfo *
CodeGenFunction::emitOMPFuseIRBuilder(const OMPFuseDirective *D) {
  // The associated statement is the original sibling sequence; the members
  // selected by looprange lower to canonical-loop chains whose outermost
  // handles OpenMPIRBuilder::fuseLoops merges. Siblings outside the range
  // are emitted unchanged around the fused loop.
  const auto *CS = stmt_cast<CompoundStmt>(D->getAssociatedStmt());
  std::span<Stmt *const> Sibs = CS->body();
  const unsigned First = D->getFirstLoopIndex();
  const unsigned Count = D->getLoopsNumber();
  for (unsigned K = 0; K < First; ++K)
    emitStmt(Sibs[K]);
  std::vector<CanonicalLoopInfo *> Members;
  for (unsigned K = 0; K < Count; ++K)
    Members.push_back(emitLoopConstruct(Sibs[First + K]).front());
  CanonicalLoopInfo *Fused = OMPB.fuseLoops(Members);
  for (unsigned K = First + Count; K < Sibs.size(); ++K)
    emitStmt(Sibs[K]);
  return Fused;
}

void CodeGenFunction::emitOMPDistributeLoopIRBuilder(
    const OMPDistributeLoopDirective *D) {
  const Stmt *S = D->getAssociatedStmt();
  while (const auto *Wrap = stmt_dyn_cast<CompoundStmt>(S)) {
    assert(Wrap->size() == 1);
    S = Wrap->body()[0];
  }
  const auto *CL = stmt_cast<OMPCanonicalLoop>(S);
  const auto *For = stmt_cast<ForStmt>(CL->getLoopStmt());
  // Sema guarantees the body is a compound of >= 2 statement groups with
  // no locals referenced across groups: one canonical loop per group, all
  // sharing the hoisted trip count, runs the groups in source order.
  const auto *Groups = stmt_cast<CompoundStmt>(For->getBody());
  ir::Value *Trip = emitCanonicalDistance(CL);
  for (const Stmt *Group : Groups->body())
    OMPB.createCanonicalLoop(
        B, Trip,
        [&](IRBuilder &, ir::Value *IV) {
          emitCanonicalLoopVarBinding(CL, IV);
          emitStmt(Group);
        },
        "omp_dist");
}

void CodeGenFunction::emitOMPLoopBasedDirectiveIRBuilder(
    const OMPLoopBasedDirective *D) {
  OpenMPDirectiveKind Kind = D->getDirectiveKind();

  // Combined parallel: outline first, then emit the loop machinery inside
  // the outlined function.
  if (isOpenMPParallelDirective(Kind)) {
    const auto *CS = stmt_cast<CapturedStmt>(D->getAssociatedStmt());
    std::vector<const VarDecl *> Captures;
    for (const CapturedStmt::Capture &Cap : CS->captures())
      Captures.push_back(Cap.Var);

    ir::Function *Outlined = CGM.getModule().createFunction(
        CGM.makeOutlinedName(std::string(CurFnDecl->getName())),
        IRType::getVoid(),
        {IRType::getPtr(), IRType::getPtr(), IRType::getPtr()},
        {".global_tid.", ".bound_tid.", "__context"});
    CodeGenFunction CGF(CGM);
    CGF.CurFn = Outlined;
    CGF.CurFnDecl = CurFnDecl;
    CGF.B.setInsertPoint(Outlined->createBlock("entry"));
    Argument *Ctx = Outlined->getArg(2);
    for (std::size_t I = 0; I < Captures.size(); ++I) {
      ir::Value *SlotPtr = CGF.B.createGEP(
          IRType::getPtr(), Ctx, CGF.B.getI64(static_cast<std::int64_t>(I)));
      CGF.LocalAddrs[Captures[I]] =
          CGF.B.createLoad(IRType::getPtr(), SlotPtr,
                           std::string(Captures[I]->getName()) + ".addr");
    }
    std::vector<ReductionInfo> Reductions =
        CGF.emitPrivatizationClauses(D->clauses());

    // The chunk size (if any) must be emitted before the loop skeletons so
    // that it dominates the preheader applyWorkshareLoop modifies.
    const auto *Sched = D->getSingleClause<OMPScheduleClause>();
    OMPScheduleType SchedTy = OMPScheduleType::Static;
    ir::Value *Chunk = nullptr;
    if (Sched) {
      if (Sched->getChunkSize())
        Chunk = CGF.B.createIntCast(CGF.emitExpr(Sched->getChunkSize()),
                                    IRType::getI64(), true, "chunk");
      switch (Sched->getScheduleKind()) {
      case OpenMPScheduleKind::Dynamic:
      case OpenMPScheduleKind::Auto:
      case OpenMPScheduleKind::Runtime:
        SchedTy = OMPScheduleType::DynamicChunked;
        break;
      case OpenMPScheduleKind::Guided:
        SchedTy = OMPScheduleType::GuidedChunked;
        break;
      default:
        SchedTy = Chunk ? OMPScheduleType::StaticChunked
                        : OMPScheduleType::Static;
        break;
      }
    }

    // Inside the outlined function: emit the loop chain and apply the
    // worksharing operation.
    std::vector<CanonicalLoopInfo *> CLIs =
        CGF.emitLoopConstruct(CS->getCapturedStmt());
    CanonicalLoopInfo *Target = CLIs[0];
    unsigned NumLoops = D->getLoopsNumber();
    if (NumLoops > 1 && CLIs.size() >= NumLoops)
      Target = CGF.OMPB.collapseLoops(
          {CLIs.begin(), CLIs.begin() + NumLoops});
    CGF.OMPB.applyWorkshareLoop(Target, SchedTy, Chunk, /*NoWait=*/false);
    if (Kind == OpenMPDirectiveKind::ForSimd)
      CGF.OMPB.applySimd(Target);
    CGF.emitReductionFinalization(Reductions);
    if (!CGF.B.isBlockTerminated())
      CGF.B.createRetVoid();

    std::vector<ir::Value *> CaptureAddrs;
    for (const VarDecl *V : Captures)
      CaptureAddrs.push_back(addressOfDecl(V));
    ir::Value *NumThreads = nullptr;
    if (const auto *NT = D->getSingleClause<OMPNumThreadsClause>())
      NumThreads = B.createIntCast(emitExpr(NT->getNumThreads()),
                                   IRType::getI32(), true, "numthreads");
    emitForkCall(*this, B, OMPB, Outlined, CaptureAddrs, NumThreads);
    return;
  }

  std::vector<ReductionInfo> Reductions =
      emitPrivatizationClauses(D->clauses());

  // fuse/distribute_loop associate with statement sequences (or a loop
  // whose body is split), not a single canonical-loop chain; they bypass
  // the common emitLoopConstruct entry.
  if (Kind == OpenMPDirectiveKind::Fuse) {
    emitOMPFuseIRBuilder(stmt_cast<OMPFuseDirective>(D));
    emitReductionFinalization(Reductions);
    return;
  }
  if (Kind == OpenMPDirectiveKind::DistributeLoop) {
    emitOMPDistributeLoopIRBuilder(stmt_cast<OMPDistributeLoopDirective>(D));
    emitReductionFinalization(Reductions);
    return;
  }

  // Chunk size must be emitted before the loop skeletons so it dominates
  // the preheader applyWorkshareLoop modifies.
  const auto *Sched = D->getSingleClause<OMPScheduleClause>();
  ir::Value *Chunk = nullptr;
  if (Sched && Sched->getChunkSize())
    Chunk = B.createIntCast(emitExpr(Sched->getChunkSize()),
                            IRType::getI64(), true, "chunk");

  std::vector<CanonicalLoopInfo *> CLIs =
      emitLoopConstruct(D->getAssociatedStmt());

  switch (Kind) {
  case OpenMPDirectiveKind::For:
  case OpenMPDirectiveKind::ForSimd: {
    CanonicalLoopInfo *Target = CLIs[0];
    unsigned NumLoops = D->getLoopsNumber();
    if (NumLoops > 1 && CLIs.size() >= NumLoops)
      Target = OMPB.collapseLoops({CLIs.begin(), CLIs.begin() + NumLoops});
    OMPScheduleType SchedTy = OMPScheduleType::Static;
    if (Sched) {
      switch (Sched->getScheduleKind()) {
      case OpenMPScheduleKind::Dynamic:
      case OpenMPScheduleKind::Auto:
      case OpenMPScheduleKind::Runtime:
        SchedTy = OMPScheduleType::DynamicChunked;
        break;
      case OpenMPScheduleKind::Guided:
        SchedTy = OMPScheduleType::GuidedChunked;
        break;
      default:
        SchedTy = Chunk ? OMPScheduleType::StaticChunked
                        : OMPScheduleType::Static;
        break;
      }
    }
    bool NoWait = D->getSingleClause<OMPNoWaitClause>() != nullptr;
    OMPB.applyWorkshareLoop(Target, SchedTy, Chunk, NoWait);
    if (Kind == OpenMPDirectiveKind::ForSimd)
      OMPB.applySimd(Target);
    break;
  }
  case OpenMPDirectiveKind::Simd: {
    CanonicalLoopInfo *Target = CLIs[0];
    unsigned NumLoops = D->getLoopsNumber();
    if (NumLoops > 1 && CLIs.size() >= NumLoops)
      Target = OMPB.collapseLoops({CLIs.begin(), CLIs.begin() + NumLoops});
    OMPB.applySimd(Target);
    break;
  }
  case OpenMPDirectiveKind::Tile: {
    // Standalone tile: the associated statement is the canonical-loop
    // nest; transformation applied here.
    const auto *Sizes = D->getSingleClause<OMPSizesClause>();
    std::vector<ir::Value *> SizeVals;
    for (unsigned K = 0; K < Sizes->getNumSizes(); ++K)
      SizeVals.push_back(B.getInt(CLIs[K]->getTripCount()->getType(),
                                  Sizes->getSize(K)));
    std::vector<CanonicalLoopInfo *> Consumed(
        CLIs.begin(),
        CLIs.begin() + static_cast<std::ptrdiff_t>(Sizes->getNumSizes()));
    OMPB.tileLoops(Consumed, SizeVals);
    break;
  }
  case OpenMPDirectiveKind::Unroll: {
    const auto *UD = stmt_cast<OMPUnrollDirective>(D);
    if (UD->hasFullClause())
      OMPB.unrollLoopFull(CLIs[0]);
    else if (const auto *PC = UD->getSingleClause<OMPPartialClause>()) {
      unsigned Factor =
          PC->getFactor()
              ? static_cast<unsigned>(PC->getFactor()->getResult())
              : CGM.getLangOpts().HeuristicUnrollFactor;
      OMPB.unrollLoopPartial(CLIs[0], Factor, nullptr);
    } else {
      OMPB.unrollLoopHeuristic(CLIs[0]);
    }
    break;
  }
  case OpenMPDirectiveKind::Reverse: {
    // Standalone reverse: apply the transformation to the canonical loop.
    OMPB.reverseLoop(CLIs[0]);
    break;
  }
  case OpenMPDirectiveKind::Interchange: {
    const auto *ID = stmt_cast<OMPInterchangeDirective>(D);
    std::vector<unsigned> Perm = ID->getPermutation();
    std::vector<CanonicalLoopInfo *> Consumed(
        CLIs.begin(),
        CLIs.begin() + static_cast<std::ptrdiff_t>(Perm.size()));
    OMPB.interchangeLoops(Consumed, Perm);
    break;
  }
  default:
    assert(false);
  }
  emitReductionFinalization(Reductions);
}

} // namespace mcc
