#include "codegen/CodeGenModule.h"

#include "codegen/CodeGenFunction.h"

#include "ast/ExprConstant.h"

namespace mcc {

using namespace ir;

const IRType *CodeGenModule::convertType(QualType T) const {
  const Type *Ty = T.getTypePtr();
  switch (Ty->getTypeClass()) {
  case Type::TypeClass::Builtin:
    switch (type_cast<BuiltinType>(Ty)->getKind()) {
    case BuiltinType::Kind::Void:
      return IRType::getVoid();
    case BuiltinType::Kind::Bool:
    case BuiltinType::Kind::Char:
      return IRType::getI8();
    case BuiltinType::Kind::Int:
    case BuiltinType::Kind::UInt:
      return IRType::getI32();
    case BuiltinType::Kind::Long:
    case BuiltinType::Kind::ULong:
      return IRType::getI64();
    case BuiltinType::Kind::Float:
    case BuiltinType::Kind::Double:
      // The IR has a single floating-point type; 'float' is computed in
      // double precision (documented substitution).
      return IRType::getDouble();
    }
    return IRType::getVoid();
  case Type::TypeClass::Pointer:
  case Type::TypeClass::Array: // decays in value position
  case Type::TypeClass::Function:
    return IRType::getPtr();
  }
  return IRType::getVoid();
}

std::pair<const IRType *, std::uint64_t>
CodeGenModule::convertTypeForMem(QualType T) const {
  std::uint64_t Count = 1;
  const Type *Ty = T.getTypePtr();
  while (const auto *AT = type_dyn_cast<ArrayType>(Ty)) {
    Count *= AT->getNumElements();
    Ty = AT->getElementType().getTypePtr();
  }
  return {convertType(QualType(Ty)), Count};
}

ir::Function *CodeGenModule::getOrCreateFunction(const FunctionDecl *FD) {
  auto It = FunctionMap.find(FD);
  if (It != FunctionMap.end())
    return It->second;
  std::vector<const IRType *> ParamTys;
  std::vector<std::string> ParamNames;
  for (const ParmVarDecl *P : FD->parameters()) {
    ParamTys.push_back(convertType(P->getType()));
    ParamNames.emplace_back(P->getName());
  }
  ir::Function *F =
      M.createFunction(std::string(FD->getName()),
                       convertType(FD->getReturnType()), std::move(ParamTys),
                       std::move(ParamNames));
  FunctionMap[FD] = F;
  return F;
}

ir::GlobalVariable *CodeGenModule::getOrCreateGlobal(const VarDecl *VD) {
  auto It = GlobalMap.find(VD);
  if (It != GlobalMap.end())
    return It->second;
  auto [ElemTy, Count] = convertTypeForMem(VD->getType());
  ir::GlobalVariable *G =
      M.createGlobal(std::string(VD->getName()), ElemTy, Count);
  if (VD->hasInit()) {
    if (auto V = evaluateIntegerWithConstVars(VD->getInit())) {
      if (ElemTy->isDouble())
        G->FPInit.push_back(static_cast<double>(*V));
      else
        G->IntInit.push_back(*V);
    } else if (const auto *FL = stmt_dyn_cast<FloatingLiteral>(
                   VD->getInit()->ignoreParenImpCasts())) {
      G->FPInit.push_back(FL->getValue());
    }
  }
  GlobalMap[VD] = G;
  return G;
}

void CodeGenModule::emitTranslationUnit(const TranslationUnitDecl *TU) {
  // Create globals and function declarations first so forward references
  // resolve.
  for (const Decl *D : TU->decls()) {
    if (const auto *VD = decl_dyn_cast<VarDecl>(D))
      getOrCreateGlobal(VD);
    else if (const auto *FD = decl_dyn_cast<FunctionDecl>(D))
      getOrCreateFunction(FD);
  }
  for (const Decl *D : TU->decls())
    if (const auto *FD = decl_dyn_cast<FunctionDecl>(D))
      if (FD->hasBody()) {
        CodeGenFunction CGF(*this);
        CGF.emitFunction(FD);
      }
}

} // namespace mcc
