//===--- CodeGenFunction.cpp - Statement and expression emission -----------===//
#include "codegen/CodeGenFunction.h"

#include "ast/ExprConstant.h"

namespace mcc {

using namespace ir;

namespace {
bool isSignedAST(QualType T) {
  return T->isSignedIntegerType();
}
} // namespace

void CodeGenFunction::emitFunction(const FunctionDecl *FD) {
  CurFnDecl = FD;
  CurFn = CGM.getOrCreateFunction(FD);
  BasicBlock *Entry = CurFn->createBlock("entry");
  B.setInsertPoint(Entry);

  // Spill parameters to allocas so they are addressable (Clang's scheme).
  for (unsigned I = 0; I < FD->getNumParams(); ++I) {
    const ParmVarDecl *P = FD->parameters()[I];
    Instruction *Slot = B.createAlloca(CGM.convertType(P->getType()),
                                       nullptr, std::string(P->getName()) +
                                                    ".addr");
    B.createStore(CurFn->getArg(I), Slot);
    LocalAddrs[P] = Slot;
  }

  emitStmt(FD->getBody());

  // Implicit return.
  if (!B.isBlockTerminated()) {
    if (CurFn->getReturnType()->isVoid())
      B.createRetVoid();
    else if (CurFn->getReturnType()->isDouble())
      B.createRet(B.getDouble(0));
    else
      B.createRet(B.getInt(CurFn->getReturnType(), 0));
  }
  // Unreachable-code blocks created after break/continue/return may be
  // left open; close them.
  for (const auto &BB : CurFn->blocks())
    if (!BB->getTerminator()) {
      B.setInsertPoint(BB.get());
      B.createUnreachable();
    }
}

ir::Value *CodeGenFunction::addressOfDecl(const ValueDecl *D) {
  auto It = LocalAddrs.find(D);
  if (It != LocalAddrs.end())
    return It->second;
  if (const auto *VD = decl_dyn_cast<VarDecl>(D))
    if (VD->isFileScope())
      return CGM.getOrCreateGlobal(VD);
#ifndef NDEBUG
  fprintf(stderr, "codegen: no storage for declaration '%s'\n",
          std::string(D->getName()).c_str());
#endif
  assert(false && "no storage for declaration");
  return nullptr;
}

// ===------------------------- Statements -----------------------------=== //

void CodeGenFunction::emitStmt(const Stmt *S) {
  if (!S)
    return;
  // Code after a terminator (break/continue/return) is unreachable; give
  // it its own block so emission can proceed structurally.
  if (B.isBlockTerminated())
    B.setInsertPoint(CurFn->createBlock("unreachable"));

  switch (S->getStmtClass()) {
  case Stmt::StmtClass::NullStmt:
    return;
  case Stmt::StmtClass::CompoundStmt:
    return emitCompoundStmt(stmt_cast<CompoundStmt>(S));
  case Stmt::StmtClass::DeclStmt:
    return emitDeclStmt(stmt_cast<DeclStmt>(S));
  case Stmt::StmtClass::IfStmt:
    return emitIfStmt(stmt_cast<IfStmt>(S));
  case Stmt::StmtClass::WhileStmt:
    return emitWhileStmt(stmt_cast<WhileStmt>(S));
  case Stmt::StmtClass::DoStmt:
    return emitDoStmt(stmt_cast<DoStmt>(S));
  case Stmt::StmtClass::ForStmt:
    return emitForStmt(stmt_cast<ForStmt>(S));
  case Stmt::StmtClass::ReturnStmt:
    return emitReturnStmt(stmt_cast<ReturnStmt>(S));
  case Stmt::StmtClass::BreakStmt:
    assert(!LoopStack.empty());
    B.createBr(LoopStack.back().BreakTarget);
    return;
  case Stmt::StmtClass::ContinueStmt:
    assert(!LoopStack.empty());
    B.createBr(LoopStack.back().ContinueTarget);
    return;
  case Stmt::StmtClass::AttributedStmt:
    return emitAttributedStmt(stmt_cast<AttributedStmt>(S));
  case Stmt::StmtClass::CapturedStmt:
    // A bare CapturedStmt executes its captured statement inline.
    return emitStmt(stmt_cast<CapturedStmt>(S)->getCapturedStmt());
  case Stmt::StmtClass::OMPCanonicalLoop:
    // Outside an OpenMP directive the wrapper is transparent.
    return emitStmt(stmt_cast<OMPCanonicalLoop>(S)->getLoopStmt());
  default:
    if (const auto *D = stmt_dyn_cast<OMPExecutableDirective>(S))
      return emitOMPDirective(D);
    if (const auto *E = stmt_dyn_cast<Expr>(S)) {
      emitExpr(E);
      return;
    }
    assert(false && "unhandled statement class in CodeGen");
  }
}

void CodeGenFunction::emitCompoundStmt(const CompoundStmt *S) {
  for (const Stmt *Child : S->body())
    emitStmt(Child);
}

void CodeGenFunction::emitDeclStmt(const DeclStmt *S) {
  for (const VarDecl *VD : S->decls())
    emitVarDecl(VD);
}

void CodeGenFunction::emitVarDecl(const VarDecl *VD) {
  // All allocas go to the entry block (Clang's convention); this also
  // guarantees one allocation per activation even for declarations inside
  // loops.
  auto [ElemTy, Count] = CGM.convertTypeForMem(VD->getType());
  Instruction *Slot =
      B.createAllocaInEntry(ElemTy, Count, std::string(VD->getName()));
  LocalAddrs[VD] = Slot;
  if (VD->hasInit() && !VD->getType()->isArrayType())
    B.createStore(emitExpr(VD->getInit()), Slot);
}

void CodeGenFunction::emitIfStmt(const IfStmt *S) {
  Value *Cond = emitCondition(S->getCond());
  BasicBlock *ThenBB = CurFn->createBlock("if.then");
  BasicBlock *EndBB = CurFn->createBlock("if.end");
  BasicBlock *ElseBB = S->hasElse() ? CurFn->createBlock("if.else") : EndBB;
  B.createCondBr(Cond, ThenBB, ElseBB);

  B.setInsertPoint(ThenBB);
  emitStmt(S->getThen());
  if (!B.isBlockTerminated())
    B.createBr(EndBB);

  if (S->hasElse()) {
    B.setInsertPoint(ElseBB);
    emitStmt(S->getElse());
    if (!B.isBlockTerminated())
      B.createBr(EndBB);
  }
  B.setInsertPoint(EndBB);
}

void CodeGenFunction::emitWhileStmt(const WhileStmt *S) {
  BasicBlock *CondBB = CurFn->createBlock("while.cond");
  BasicBlock *BodyBB = CurFn->createBlock("while.body");
  BasicBlock *EndBB = CurFn->createBlock("while.end");
  B.createBr(CondBB);
  B.setInsertPoint(CondBB);
  B.createCondBr(emitCondition(S->getCond()), BodyBB, EndBB);
  B.setInsertPoint(BodyBB);
  LoopStack.push_back({EndBB, CondBB});
  emitStmt(S->getBody());
  LoopStack.pop_back();
  if (!B.isBlockTerminated())
    B.createBr(CondBB);
  B.setInsertPoint(EndBB);
}

void CodeGenFunction::emitDoStmt(const DoStmt *S) {
  BasicBlock *BodyBB = CurFn->createBlock("do.body");
  BasicBlock *CondBB = CurFn->createBlock("do.cond");
  BasicBlock *EndBB = CurFn->createBlock("do.end");
  B.createBr(BodyBB);
  B.setInsertPoint(BodyBB);
  LoopStack.push_back({EndBB, CondBB});
  emitStmt(S->getBody());
  LoopStack.pop_back();
  if (!B.isBlockTerminated())
    B.createBr(CondBB);
  B.setInsertPoint(CondBB);
  B.createCondBr(emitCondition(S->getCond()), BodyBB, EndBB);
  B.setInsertPoint(EndBB);
}

void CodeGenFunction::emitForStmt(const ForStmt *S, ir::LoopMetadata MD) {
  if (S->getInit())
    emitStmt(S->getInit());
  BasicBlock *CondBB = CurFn->createBlock("for.cond");
  BasicBlock *BodyBB = CurFn->createBlock("for.body");
  BasicBlock *IncBB = CurFn->createBlock("for.inc");
  BasicBlock *EndBB = CurFn->createBlock("for.end");
  B.createBr(CondBB);
  B.setInsertPoint(CondBB);
  if (S->getCond())
    B.createCondBr(emitCondition(S->getCond()), BodyBB, EndBB);
  else
    B.createBr(BodyBB);
  B.setInsertPoint(BodyBB);
  LoopStack.push_back({EndBB, IncBB});
  emitStmt(S->getBody());
  LoopStack.pop_back();
  if (!B.isBlockTerminated())
    B.createBr(IncBB);
  B.setInsertPoint(IncBB);
  if (S->getInc())
    emitExpr(S->getInc());
  Instruction *LatchBr = B.createBr(CondBB);
  LatchBr->LoopMD = MD; // llvm.loop.* metadata lives on the latch branch
  B.setInsertPoint(EndBB);
}

void CodeGenFunction::emitReturnStmt(const ReturnStmt *S) {
  if (S->getValue())
    B.createRet(emitExpr(S->getValue()));
  else
    B.createRetVoid();
}

void CodeGenFunction::emitAttributedStmt(const AttributedStmt *S) {
  // LoopHintAttr on a loop becomes llvm.loop.unroll.* metadata, consumed
  // by the mid-end LoopUnroll pass (paper Section 2.2: "No duplication
  // takes place until that point").
  LoopMetadata MD;
  for (const Attr *A : S->getAttrs()) {
    const auto *LH = static_cast<const LoopHintAttr *>(A);
    switch (LH->getOption()) {
    case LoopHintAttr::OptionKind::UnrollCount:
      MD.UnrollCount = static_cast<unsigned>(
          evaluateInteger(LH->getValue()).value_or(0));
      break;
    case LoopHintAttr::OptionKind::UnrollEnable:
      MD.UnrollEnable = true;
      break;
    case LoopHintAttr::OptionKind::UnrollFull:
      MD.UnrollFull = true;
      break;
    case LoopHintAttr::OptionKind::Vectorize:
      MD.Vectorize = true;
      break;
    }
  }
  if (const auto *For = stmt_dyn_cast<ForStmt>(S->getSubStmt()))
    emitForStmt(For, MD);
  else
    emitStmt(S->getSubStmt());
}

// ===------------------------ Expressions -----------------------------=== //

ir::Value *CodeGenFunction::emitLValue(const Expr *E) {
  switch (E->getStmtClass()) {
  case Stmt::StmtClass::DeclRefExpr:
    return addressOfDecl(stmt_cast<DeclRefExpr>(E)->getDecl());
  case Stmt::StmtClass::ParenExpr:
    return emitLValue(stmt_cast<ParenExpr>(E)->getSubExpr());
  case Stmt::StmtClass::UnaryOperator: {
    const auto *UO = stmt_cast<UnaryOperator>(E);
    assert(UO->getOpcode() == UnaryOperatorKind::Deref);
    return emitExpr(UO->getSubExpr());
  }
  case Stmt::StmtClass::ArraySubscriptExpr: {
    const auto *AS = stmt_cast<ArraySubscriptExpr>(E);
    Value *Base = emitExpr(AS->getBase());
    Value *Index = emitExpr(AS->getIndex());
    Index = B.createIntCast(Index, IRType::getI64(),
                            isSignedAST(AS->getIndex()->getType()), "idx");
    return B.createGEP(CGM.convertType(E->getType()), Base, Index,
                       "arrayidx");
  }
  case Stmt::StmtClass::ImplicitCastExpr: {
    const auto *ICE = stmt_cast<ImplicitCastExpr>(E);
    if (ICE->getCastKind() == CastKind::NoOp)
      return emitLValue(ICE->getSubExpr());
    break;
  }
  default:
    break;
  }
  assert(false && "not an emittable lvalue");
  return nullptr;
}

ir::Value *CodeGenFunction::emitCondition(const Expr *E) {
  Value *V = emitExpr(E);
  if (V->getType() == IRType::getI1())
    return V;
  if (V->getType()->isDouble())
    return B.createFCmp(CmpPred::ONE, V, B.getDouble(0), "tobool");
  return B.createICmp(CmpPred::NE, V, B.getInt(V->getType(), 0), "tobool");
}

ir::Value *CodeGenFunction::emitExpr(const Expr *E) {
  switch (E->getStmtClass()) {
  case Stmt::StmtClass::IntegerLiteral:
    return B.getInt(CGM.convertType(E->getType()),
                    static_cast<std::int64_t>(
                        stmt_cast<IntegerLiteral>(E)->getValue()));
  case Stmt::StmtClass::FloatingLiteral:
    return B.getDouble(stmt_cast<FloatingLiteral>(E)->getValue());
  case Stmt::StmtClass::BoolLiteral:
    return B.getInt(IRType::getI8(),
                    stmt_cast<BoolLiteral>(E)->getValue() ? 1 : 0);
  case Stmt::StmtClass::ConstantExpr:
    return B.getInt(CGM.convertType(E->getType()),
                    stmt_cast<ConstantExpr>(E)->getResult());
  case Stmt::StmtClass::ParenExpr:
    return emitExpr(stmt_cast<ParenExpr>(E)->getSubExpr());
  case Stmt::StmtClass::DeclRefExpr: {
    const ValueDecl *D = stmt_cast<DeclRefExpr>(E)->getDecl();
    if (const auto *FD = decl_dyn_cast<FunctionDecl>(D))
      return CGM.getOrCreateFunction(FD);
    // Raw DeclRefExpr in rvalue position (synthesized code): load.
    return B.createLoad(CGM.convertType(E->getType()), addressOfDecl(D),
                        std::string(D->getName()));
  }
  case Stmt::StmtClass::ImplicitCastExpr: {
    const auto *ICE = stmt_cast<ImplicitCastExpr>(E);
    const Expr *Sub = ICE->getSubExpr();
    switch (ICE->getCastKind()) {
    case CastKind::LValueToRValue:
      return B.createLoad(CGM.convertType(E->getType()), emitLValue(Sub));
    case CastKind::IntegralCast:
      return B.createIntCast(emitExpr(Sub), CGM.convertType(E->getType()),
                             isSignedAST(Sub->getType()), "conv");
    case CastKind::IntegralToBoolean: {
      Value *V = emitExpr(Sub);
      Value *Cmp =
          B.createICmp(CmpPred::NE, V, B.getInt(V->getType(), 0), "tobool");
      return B.createCast(Opcode::ZExt, Cmp, IRType::getI8(), "frombool");
    }
    case CastKind::IntegralToFloating:
      return B.createCast(isSignedAST(Sub->getType()) ? Opcode::SIToFP
                                                      : Opcode::UIToFP,
                          emitExpr(Sub), IRType::getDouble(), "conv");
    case CastKind::FloatingToIntegral:
      return B.createCast(isSignedAST(E->getType()) ? Opcode::FPToSI
                                                    : Opcode::FPToUI,
                          emitExpr(Sub), CGM.convertType(E->getType()),
                          "conv");
    case CastKind::FloatingCast:
      return emitExpr(Sub); // single fp type
    case CastKind::FloatingToBoolean: {
      Value *Cmp = B.createFCmp(CmpPred::ONE, emitExpr(Sub), B.getDouble(0),
                                "tobool");
      return B.createCast(Opcode::ZExt, Cmp, IRType::getI8(), "frombool");
    }
    case CastKind::PointerToBoolean: {
      Value *Cmp = B.createICmp(CmpPred::NE, emitExpr(Sub),
                                CGM.getModule().getNullPtr(), "tobool");
      return B.createCast(Opcode::ZExt, Cmp, IRType::getI8(), "frombool");
    }
    case CastKind::ArrayToPointerDecay:
      return emitLValue(Sub);
    case CastKind::FunctionToPointerDecay:
    case CastKind::NoOp:
      return emitExpr(Sub);
    }
    return nullptr;
  }
  case Stmt::StmtClass::UnaryOperator: {
    const auto *UO = stmt_cast<UnaryOperator>(E);
    switch (UO->getOpcode()) {
    case UnaryOperatorKind::Plus:
      return emitExpr(UO->getSubExpr());
    case UnaryOperatorKind::Minus: {
      Value *V = emitExpr(UO->getSubExpr());
      if (V->getType()->isDouble())
        return B.createBinOp(Opcode::FSub, B.getDouble(0), V, "neg");
      return B.createSub(B.getInt(V->getType(), 0), V, "neg");
    }
    case UnaryOperatorKind::LNot: {
      Value *Cond = emitCondition(UO->getSubExpr());
      Value *Inverted =
          B.createBinOp(Opcode::Xor, Cond, B.getI1(true), "lnot");
      return B.createCast(Opcode::ZExt, Inverted, IRType::getI8(),
                          "frombool");
    }
    case UnaryOperatorKind::Not: {
      Value *V = emitExpr(UO->getSubExpr());
      return B.createBinOp(Opcode::Xor, V, B.getInt(V->getType(), -1),
                           "not");
    }
    case UnaryOperatorKind::Deref:
      // Rvalue use of *p without an LValueToRValue wrapper only occurs
      // for void-typed expression statements.
      return B.createLoad(CGM.convertType(E->getType()), emitLValue(E));
    case UnaryOperatorKind::AddrOf:
      return emitLValue(UO->getSubExpr());
    case UnaryOperatorKind::PreInc:
    case UnaryOperatorKind::PreDec:
    case UnaryOperatorKind::PostInc:
    case UnaryOperatorKind::PostDec: {
      bool IsInc = UO->isIncrementOp();
      Value *Addr = emitLValue(UO->getSubExpr());
      QualType Ty = UO->getSubExpr()->getType();
      Value *Old = B.createLoad(CGM.convertType(Ty), Addr);
      Value *New;
      if (Ty->isPointerType()) {
        const auto *PT = type_cast<PointerType>(Ty.getTypePtr());
        New = B.createGEP(CGM.convertType(PT->getPointeeType()), Old,
                          B.getI64(IsInc ? 1 : -1), "incdec.ptr");
      } else if (Ty->isFloatingType()) {
        New = B.createBinOp(IsInc ? Opcode::FAdd : Opcode::FSub, Old,
                            B.getDouble(1), "incdec");
      } else {
        New = B.createBinOp(IsInc ? Opcode::Add : Opcode::Sub, Old,
                            B.getInt(Old->getType(), 1), "incdec");
      }
      B.createStore(New, Addr);
      return UO->isPrefix() ? New : Old;
    }
    }
    return nullptr;
  }
  case Stmt::StmtClass::BinaryOperator: {
    const auto *BO = stmt_cast<BinaryOperator>(E);
    BinaryOperatorKind Opc = BO->getOpcode();

    if (Opc == BinaryOperatorKind::Assign) {
      Value *Addr = emitLValue(BO->getLHS());
      Value *V = emitExpr(BO->getRHS());
      B.createStore(V, Addr);
      return V;
    }
    if (BO->isCompoundAssignmentOp()) {
      Value *Addr = emitLValue(BO->getLHS());
      QualType Ty = BO->getLHS()->getType();
      Value *Old = B.createLoad(CGM.convertType(Ty), Addr);
      Value *RHS = emitExpr(BO->getRHS());
      Value *New;
      BinaryOperatorKind Sub = BO->getCompoundOpcode();
      if (Ty->isPointerType()) {
        const auto *PT = type_cast<PointerType>(Ty.getTypePtr());
        Value *Index = B.createIntCast(RHS, IRType::getI64(),
                                       isSignedAST(BO->getRHS()->getType()),
                                       "idx");
        if (Sub == BinaryOperatorKind::Sub)
          Index = B.createSub(B.getI64(0), Index, "negidx");
        New = B.createGEP(CGM.convertType(PT->getPointeeType()), Old, Index,
                          "add.ptr");
      } else if (Ty->isFloatingType()) {
        Opcode FOp = Sub == BinaryOperatorKind::Add   ? Opcode::FAdd
                     : Sub == BinaryOperatorKind::Sub ? Opcode::FSub
                     : Sub == BinaryOperatorKind::Mul ? Opcode::FMul
                                                      : Opcode::FDiv;
        New = B.createBinOp(FOp, Old, RHS, "compound");
      } else {
        bool Signed = isSignedAST(Ty);
        Opcode IOp;
        switch (Sub) {
        case BinaryOperatorKind::Add:
          IOp = Opcode::Add;
          break;
        case BinaryOperatorKind::Sub:
          IOp = Opcode::Sub;
          break;
        case BinaryOperatorKind::Mul:
          IOp = Opcode::Mul;
          break;
        case BinaryOperatorKind::Div:
          IOp = Signed ? Opcode::SDiv : Opcode::UDiv;
          break;
        case BinaryOperatorKind::Rem:
          IOp = Signed ? Opcode::SRem : Opcode::URem;
          break;
        case BinaryOperatorKind::And:
          IOp = Opcode::And;
          break;
        case BinaryOperatorKind::Or:
          IOp = Opcode::Or;
          break;
        case BinaryOperatorKind::Xor:
          IOp = Opcode::Xor;
          break;
        default:
          IOp = Opcode::Add;
          break;
        }
        // RHS was converted to the LHS type by Sema.
        New = B.createBinOp(IOp, Old, RHS, "compound");
      }
      B.createStore(New, Addr);
      return New;
    }

    if (BO->isLogicalOp()) {
      // Short-circuit evaluation with a phi join; operands are already
      // boolean-converted by Sema.
      bool IsAnd = Opc == BinaryOperatorKind::LAnd;
      Value *L = emitCondition(BO->getLHS());
      BasicBlock *RhsBB =
          CurFn->createBlock(IsAnd ? "land.rhs" : "lor.rhs");
      BasicBlock *EndBB =
          CurFn->createBlock(IsAnd ? "land.end" : "lor.end");
      BasicBlock *LhsBB = B.getInsertBlock();
      if (IsAnd)
        B.createCondBr(L, RhsBB, EndBB);
      else
        B.createCondBr(L, EndBB, RhsBB);
      B.setInsertPoint(RhsBB);
      Value *R = emitCondition(BO->getRHS());
      BasicBlock *RhsEndBB = B.getInsertBlock();
      B.createBr(EndBB);
      B.setInsertPoint(EndBB);
      Instruction *Phi = B.createPhi(IRType::getI1(), "logical");
      Phi->addIncoming(B.getI1(!IsAnd), LhsBB);
      Phi->addIncoming(R, RhsEndBB);
      return B.createCast(Opcode::ZExt, Phi, IRType::getI8(), "frombool");
    }

    if (Opc == BinaryOperatorKind::Comma) {
      emitExpr(BO->getLHS());
      return emitExpr(BO->getRHS());
    }

    // Pointer arithmetic.
    QualType LTy = BO->getLHS()->getType();
    QualType RTy = BO->getRHS()->getType();
    if (BO->isAdditiveOp() && (LTy->isPointerType() || RTy->isPointerType())) {
      if (LTy->isPointerType() && RTy->isPointerType()) {
        // ptr - ptr -> element distance (long).
        const auto *PT = type_cast<PointerType>(LTy.getTypePtr());
        Value *L = emitExpr(BO->getLHS());
        Value *R = emitExpr(BO->getRHS());
        unsigned ElemSize =
            CGM.convertType(PT->getPointeeType())->getSizeInBytes();
        return B.createPtrDiff(L, R, ElemSize, "ptrdiff");
      }
      const Expr *PtrE = LTy->isPointerType() ? BO->getLHS() : BO->getRHS();
      const Expr *IntE = LTy->isPointerType() ? BO->getRHS() : BO->getLHS();
      Value *Ptr = emitExpr(PtrE);
      Value *Index =
          B.createIntCast(emitExpr(IntE), IRType::getI64(),
                          isSignedAST(IntE->getType()), "idx");
      if (Opc == BinaryOperatorKind::Sub)
        Index = B.createSub(B.getI64(0), Index, "negidx");
      const auto *PT = type_cast<PointerType>(PtrE->getType().getTypePtr());
      return B.createGEP(CGM.convertType(PT->getPointeeType()), Ptr, Index,
                         "add.ptr");
    }

    Value *L = emitExpr(BO->getLHS());
    Value *R = emitExpr(BO->getRHS());

    if (BO->isComparisonOp()) {
      Value *Cmp;
      if (L->getType()->isDouble()) {
        CmpPred P;
        switch (Opc) {
        case BinaryOperatorKind::LT:
          P = CmpPred::OLT;
          break;
        case BinaryOperatorKind::GT:
          P = CmpPred::OGT;
          break;
        case BinaryOperatorKind::LE:
          P = CmpPred::OLE;
          break;
        case BinaryOperatorKind::GE:
          P = CmpPred::OGE;
          break;
        case BinaryOperatorKind::EQ:
          P = CmpPred::OEQ;
          break;
        default:
          P = CmpPred::ONE;
          break;
        }
        Cmp = B.createFCmp(P, L, R, "cmp");
      } else {
        bool Signed = LTy->isPointerType() ? false : isSignedAST(LTy);
        CmpPred P;
        switch (Opc) {
        case BinaryOperatorKind::LT:
          P = Signed ? CmpPred::SLT : CmpPred::ULT;
          break;
        case BinaryOperatorKind::GT:
          P = Signed ? CmpPred::SGT : CmpPred::UGT;
          break;
        case BinaryOperatorKind::LE:
          P = Signed ? CmpPred::SLE : CmpPred::ULE;
          break;
        case BinaryOperatorKind::GE:
          P = Signed ? CmpPred::SGE : CmpPred::UGE;
          break;
        case BinaryOperatorKind::EQ:
          P = CmpPred::EQ;
          break;
        default:
          P = CmpPred::NE;
          break;
        }
        Cmp = B.createICmp(P, L, R, "cmp");
      }
      return B.createCast(Opcode::ZExt, Cmp, IRType::getI8(), "frombool");
    }

    if (L->getType()->isDouble()) {
      Opcode FOp;
      switch (Opc) {
      case BinaryOperatorKind::Add:
        FOp = Opcode::FAdd;
        break;
      case BinaryOperatorKind::Sub:
        FOp = Opcode::FSub;
        break;
      case BinaryOperatorKind::Mul:
        FOp = Opcode::FMul;
        break;
      default:
        FOp = Opcode::FDiv;
        break;
      }
      return B.createBinOp(FOp, L, R, "fbin");
    }

    bool Signed = isSignedAST(BO->getType());
    Opcode IOp;
    switch (Opc) {
    case BinaryOperatorKind::Add:
      IOp = Opcode::Add;
      break;
    case BinaryOperatorKind::Sub:
      IOp = Opcode::Sub;
      break;
    case BinaryOperatorKind::Mul:
      IOp = Opcode::Mul;
      break;
    case BinaryOperatorKind::Div:
      IOp = Signed ? Opcode::SDiv : Opcode::UDiv;
      break;
    case BinaryOperatorKind::Rem:
      IOp = Signed ? Opcode::SRem : Opcode::URem;
      break;
    case BinaryOperatorKind::And:
      IOp = Opcode::And;
      break;
    case BinaryOperatorKind::Or:
      IOp = Opcode::Or;
      break;
    case BinaryOperatorKind::Xor:
      IOp = Opcode::Xor;
      break;
    case BinaryOperatorKind::Shl:
      IOp = Opcode::Shl;
      break;
    case BinaryOperatorKind::Shr:
      IOp = Signed ? Opcode::AShr : Opcode::LShr;
      break;
    default:
      IOp = Opcode::Add;
      break;
    }
    // Shift RHS may have a different width; adapt it.
    if ((IOp == Opcode::Shl || IOp == Opcode::AShr || IOp == Opcode::LShr) &&
        R->getType() != L->getType())
      R = B.createIntCast(R, L->getType(), isSignedAST(RTy), "shamt");
    return B.createBinOp(IOp, L, R, "bin");
  }
  case Stmt::StmtClass::ConditionalOperator: {
    const auto *CO = stmt_cast<ConditionalOperator>(E);
    Value *Cond = emitCondition(CO->getCond());
    BasicBlock *TrueBB = CurFn->createBlock("cond.true");
    BasicBlock *FalseBB = CurFn->createBlock("cond.false");
    BasicBlock *EndBB = CurFn->createBlock("cond.end");
    B.createCondBr(Cond, TrueBB, FalseBB);
    B.setInsertPoint(TrueBB);
    Value *TV = emitExpr(CO->getTrueExpr());
    BasicBlock *TrueEnd = B.getInsertBlock();
    B.createBr(EndBB);
    B.setInsertPoint(FalseBB);
    Value *FV = emitExpr(CO->getFalseExpr());
    BasicBlock *FalseEnd = B.getInsertBlock();
    B.createBr(EndBB);
    B.setInsertPoint(EndBB);
    Instruction *Phi = B.createPhi(TV->getType(), "cond");
    Phi->addIncoming(TV, TrueEnd);
    Phi->addIncoming(FV, FalseEnd);
    return Phi;
  }
  case Stmt::StmtClass::CallExpr: {
    const auto *CE = stmt_cast<CallExpr>(E);
    FunctionDecl *FD = CE->getDirectCallee();
    assert(FD && "indirect calls not supported by this front-end");
    ir::Function *Callee = CGM.getOrCreateFunction(FD);
    std::vector<Value *> Args;
    for (const Expr *A : CE->arguments())
      Args.push_back(emitExpr(A));
    return B.createCall(Callee, std::move(Args));
  }
  case Stmt::StmtClass::ArraySubscriptExpr:
    // Rvalue use without LValueToRValue only for void contexts.
    return B.createLoad(CGM.convertType(E->getType()), emitLValue(E));
  default:
    assert(false && "unhandled expression class in CodeGen");
    return nullptr;
  }
}

} // namespace mcc
