//===--- CodeGenFunction.h - Per-function AST -> IR emission ----*- C++ -*-===//
#ifndef MCC_CODEGEN_CODEGENFUNCTION_H
#define MCC_CODEGEN_CODEGENFUNCTION_H

#include "codegen/CodeGenModule.h"

#include <map>
#include <vector>

namespace mcc {

class CodeGenFunction {
public:
  CodeGenFunction(CodeGenModule &CGM)
      : CGM(CGM), B(CGM.getModule()), OMPB(CGM.getOMPBuilder()) {}

  /// Emits the body of \p FD into its IR function.
  void emitFunction(const FunctionDecl *FD);

  /// Emits the outlined function for a CapturedStmt (early outlining).
  /// Returns the IR function; \p Captures receives the capture order used
  /// for the context array at the call site.
  ir::Function *
  emitOutlinedFunction(const CapturedStmt *CS, const std::string &Name,
                       std::vector<const VarDecl *> &Captures,
                       std::span<OMPClause *const> Clauses);

  // --- Statement emission ---
  void emitStmt(const Stmt *S);
  void emitCompoundStmt(const CompoundStmt *S);
  void emitDeclStmt(const DeclStmt *S);
  void emitVarDecl(const VarDecl *VD);
  void emitIfStmt(const IfStmt *S);
  void emitWhileStmt(const WhileStmt *S);
  void emitDoStmt(const DoStmt *S);
  void emitForStmt(const ForStmt *S, ir::LoopMetadata MD = {});
  void emitReturnStmt(const ReturnStmt *S);
  void emitAttributedStmt(const AttributedStmt *S);

  // --- Expression emission ---
  /// Emits \p E as an rvalue of its IR type.
  ir::Value *emitExpr(const Expr *E);
  /// Emits \p E as an address (lvalue).
  ir::Value *emitLValue(const Expr *E);
  /// Emits \p E and coerces to i1.
  ir::Value *emitCondition(const Expr *E);

  // --- OpenMP (CGOpenMP.cpp) ---
  void emitOMPDirective(const OMPExecutableDirective *D);

private:
  // Legacy (shadow AST) pipeline.
  void emitOMPParallel(const OMPParallelDirective *D);
  void emitOMPLoopDirectiveLegacy(const OMPLoopDirective *D);
  /// Emits the worksharing/simd loop body from the shadow helpers inside
  /// the current function (used both inline and in outlined functions).
  void emitWorkshareFromHelpers(const OMPLoopDirective *D);
  void emitOMPTileLegacy(const OMPTileDirective *D);
  void emitOMPUnrollLegacy(const OMPUnrollDirective *D);
  /// reverse / interchange: emits PreInits + the shadow transformed nest.
  void emitOMPTransformLegacy(const OMPLoopTransformationDirective *D);

  // IRBuilder pipeline.
  void emitOMPLoopBasedDirectiveIRBuilder(const OMPLoopBasedDirective *D);
  /// Recursively emits the loop-construct chain below a directive:
  /// canonical loop nests become CanonicalLoopInfos; nested transformation
  /// directives are applied on the handles. Returns the generated loops
  /// available for consumption.
  std::vector<ir::CanonicalLoopInfo *> emitLoopConstruct(const Stmt *S);
  /// Emits a perfect nest of OMPCanonicalLoops (distance functions
  /// hoisted), returning one CLI per nest level.
  std::vector<ir::CanonicalLoopInfo *>
  emitCanonicalLoopNest(const OMPCanonicalLoop *Outer);
  /// Evaluates \p CL's distance function at the current insertion point,
  /// returning the trip count (folded to a constant where possible).
  ir::Value *emitCanonicalDistance(const OMPCanonicalLoop *CL);
  /// Materializes \p CL's user loop variable for logical iteration \p IV
  /// via the loop-variable function.
  void emitCanonicalLoopVarBinding(const OMPCanonicalLoop *CL,
                                   ir::Value *IV);
  /// Emits a fuse construct: surrounding siblings plus the fused loop
  /// built by OpenMPIRBuilder::fuseLoops. Returns the fused loop handle.
  ir::CanonicalLoopInfo *emitOMPFuseIRBuilder(const OMPFuseDirective *D);
  /// Emits distribute_loop as one canonical loop per statement group.
  void emitOMPDistributeLoopIRBuilder(const OMPDistributeLoopDirective *D);

  // Common.
  void emitOMPBarrier();
  ir::Value *emitGtid();
  /// Evaluates a captured 'distance' or 'loop-variable' function by
  /// emitting its body inline with parameters bound to \p ParamValues
  /// (addresses or values).
  void emitCapturedFunctionInline(const CapturedStmt *CS,
                                  std::span<ir::Value *const> ParamValues);

  struct ReductionInfo {
    const VarDecl *Var;
    OpenMPReductionOp Op;
    ir::Value *PrivateAddr;
    ir::Value *SharedAddr;
  };
  /// Sets up private/firstprivate/reduction clause variables in the
  /// current function, remapping LocalAddrs. Returns reduction bookkeeping
  /// to be finalized with emitReductionFinalization.
  std::vector<ReductionInfo>
  emitPrivatizationClauses(std::span<OMPClause *const> Clauses);
  void emitReductionFinalization(const std::vector<ReductionInfo> &Rs);

  ir::Value *addressOfDecl(const ValueDecl *D);

  // Break/continue targets.
  struct LoopTargets {
    ir::BasicBlock *BreakTarget;
    ir::BasicBlock *ContinueTarget;
  };

  CodeGenModule &CGM;
  ir::IRBuilder B;
  ir::OpenMPIRBuilder &OMPB;
  ir::Function *CurFn = nullptr;
  const FunctionDecl *CurFnDecl = nullptr;
  std::map<const ValueDecl *, ir::Value *> LocalAddrs;
  std::vector<LoopTargets> LoopStack;
};

} // namespace mcc

#endif // MCC_CODEGEN_CODEGENFUNCTION_H
