//===--- Fuzz.h - Differential loop-nest fuzzing ----------------*- C++ -*-===//
//
// Randomized whole-pipeline semantic testing (DESIGN.md "Differential
// testing layer"). A seeded generator produces MiniC loop-nest programs —
// canonical loops of varying bounds/steps/comparison forms, nested 1–3
// deep, decorated with tile/unroll/parallel-for pragma stacks and
// checksummable side effects — together with a host-evaluated reference
// checksum. The DifferentialRunner compiles each program down every
// pipeline configuration (legacy shadow-AST and OMPCanonicalLoop/
// OpenMPIRBuilder, each with and without the mid-end) and executes it at
// 1..2×HW threads, asserting that every backend reproduces the reference
// bit-for-bit. Mismatches carry the reproducing seed and can be shrunk to
// a minimal failing program.
//
// Everything here is deterministic in the seed: same seed, same program,
// same verdict — a failure printed by CI is replayable locally with
// `minicc-fuzz --seed=N --count=1`.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_FUZZ_FUZZ_H
#define MCC_FUZZ_FUZZ_H

#include "interp/Interpreter.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mcc::svc {
class CompileService;
} // namespace mcc::svc

namespace mcc::fuzz {

/// Comparison operator of a canonical loop condition.
enum class RelOp { LT, LE, GT, GE, NE };

const char *relOpSpelling(RelOp R);

/// One canonical for-loop: `for (int iK = Lb; iK REL Ub; iK += Step)`.
/// Bounds and step are integer literals so that trip counts are
/// compile-time constants (required for `unroll full`).
struct LoopSpec {
  std::int64_t Lb = 0;
  std::int64_t Ub = 0;
  std::int64_t Step = 1;
  RelOp Rel = RelOp::LT;

  /// Number of iterations this loop executes (host-simulated; capped so a
  /// malformed spec cannot hang the oracle).
  [[nodiscard]] std::int64_t tripCount() const;
};

/// One statement of the innermost loop body. Coefficients C[k] multiply
/// induction variable k (unused entries beyond the nest depth are
/// ignored), so a BodyOp stays meaningful when the shrinker drops loops.
struct BodyOp {
  enum class Kind {
    SumLinear,    ///< sum += C0*i0 + C1*i1 + C2*i2 + Bias
    SumQuadratic, ///< sum += C0*i0*i0 + C1*i1 + Bias
    SumCond,      ///< if ((i0 + Bias) % Mod == 0) sum += C0*i0 + C1*i1
    ArrayUpdate,  ///< a[logical-iteration] += C0*i0 + C1*i1 + C2*i2 + Bias
    ArrayCarried, ///< a[idx + Dist] += a[idx] + ... — a loop-carried flow
                  ///< dependence of distance Dist, so reverse/interchange
                  ///< must be refused by the legality oracle (serial
                  ///< programs only; order-dependent result)
  };
  Kind K = Kind::SumLinear;
  std::int64_t C[3] = {1, 0, 0};
  std::int64_t Bias = 0;
  std::int64_t Mod = 3;  // SumCond only; >= 2
  std::int64_t Dist = 1; // ArrayCarried only; >= 1
};

/// The directive stack above (and inside) the loop nest. Only
/// combinations that are valid OpenMP — and implemented by both
/// pipelines — are generated; see ProgramGenerator.cpp for the
/// whitelist.
struct PragmaSpec {
  bool ParallelFor = false;
  /// Orphaned `#pragma omp for` outside any parallel region — executes on
  /// the serial team of one and exercises the runtime's serial-dispatch
  /// context save/restore. Mutually exclusive with ParallelFor.
  bool OrphanFor = false;
  unsigned Collapse = 0;     ///< >= 2 emits collapse(n); requires depth >= n
  std::string Schedule;      ///< e.g. "static", "dynamic, 3"; "" = none
  unsigned NumThreadsClause = 0; ///< > 0 emits num_threads(n)
  std::vector<std::int64_t> TileSizes; ///< outermost-first; empty = no tile
  unsigned UnrollFactor = 0; ///< partial unroll factor; 0 = none
  bool UnrollFull = false;   ///< full unroll (top of stack, serial only)
  bool UnrollInnermost = false; ///< place the unroll on the innermost loop
  /// `#pragma omp reverse` on the outermost loop. Subject to the
  /// dependence legality oracle: Sema may refuse it, which the runner
  /// counts as a conservative rejection and re-verifies untransformed.
  bool Reverse = false;
  /// `#pragma omp interchange permutation(...)`, 1-based as in source;
  /// empty = no interchange. Requires nest depth >= Permutation.size().
  std::vector<unsigned> Permutation;
  /// `#pragma omp fuse` over the sibling-loop sequence (requires a
  /// ProgramSpec with at least two Siblings). Like reverse/interchange it
  /// is dependence-gated: Sema refuses it when iteration t of a later
  /// member would touch what iteration t+d of an earlier member accesses.
  bool Fuse = false;
  /// Non-zero FuseCount renders `looprange(FuseFirst, FuseCount)` on the
  /// fuse directive (FuseFirst is 1-based as in source); members outside
  /// the range stay unfused siblings.
  unsigned FuseFirst = 0;
  unsigned FuseCount = 0;
  /// `#pragma omp distribute_loop` on a single loop whose body has >= 2
  /// top-level statement groups. Refused when a loop-carried dependence
  /// flows from a later group back to an earlier one.
  bool DistributeLoop = false;

  [[nodiscard]] bool any() const {
    return ParallelFor || OrphanFor || !TileSizes.empty() || UnrollFactor ||
           UnrollFull || hasLoopTransform();
  }

  /// True when a dependence-gated loop transformation is present.
  [[nodiscard]] bool hasLoopTransform() const {
    return Reverse || !Permutation.empty() || Fuse || DistributeLoop;
  }
};

/// One member of a sibling-loop sequence (the fuse program modes): its
/// own loop plus body statements over the shared `sum` / `a`. Sibling
/// loops are always canonical-simple (lb 0, step 1, '<') so the body can
/// index `a` directly by the IV and the dependence oracle can reason
/// about cross-member accesses.
struct SiblingSpec {
  LoopSpec Loop;
  std::vector<BodyOp> Body;
};

/// A complete generated program: a perfect loop nest with a checksummed
/// reduction variable and a side-effect array indexed by the logical
/// iteration number (injective, hence race-free under worksharing — and a
/// detector for iterations executed zero or two times).
struct ProgramSpec {
  std::uint64_t Seed = 0;
  std::string Variant;         ///< "" for the original; factor-sweep tag
  std::vector<LoopSpec> Loops; ///< outermost first; 1..3 entries
  std::vector<BodyOp> Body;    ///< at least one
  /// When non-empty the program is a flat sequence of depth-1 sibling
  /// loops (the fuse program modes) and Loops/Body are unused. Siblings
  /// share `sum` and the array `a`, each indexing `a` by its own IV.
  std::vector<SiblingSpec> Siblings;
  PragmaSpec Pragmas;
  /// Render array subscripts as direct affine expressions of the IVs
  /// (i0*S0 + i1*S1 + ...) instead of the accumulated `idx` local, so the
  /// dependence analysis can admit them. Only valid when every loop is
  /// canonical-simple (lb 0, step 1, '<'); the generator guarantees this
  /// for programs carrying reverse/interchange.
  bool DirectIndex = false;

  /// Total logical iterations of the nest (product of trip counts).
  [[nodiscard]] std::int64_t totalIterations() const;

  /// Size of the side-effect array `a`: max(1, totalIterations()) plus
  /// the largest ArrayCarried distance (margin cells keep the shifted
  /// writes in bounds).
  [[nodiscard]] std::int64_t arraySize() const;

  /// Copy with reverse/interchange/fuse/distribute_loop pragmas removed
  /// (the re-verification program after a conservative rejection).
  /// Rendering shape (DirectIndex, sibling structure) is preserved so only
  /// the pragma lines differ; a worksharing directive riding on a fused
  /// sibling sequence is dropped with it (it cannot associate with the
  /// unfused loop sequence).
  [[nodiscard]] ProgramSpec withoutLoopTransforms() const;

  /// Renders the MiniC source text.
  [[nodiscard]] std::string render() const;

  /// Host-evaluated reference checksum — the oracle every backend must
  /// reproduce exactly. Mirrors render() statement for statement using
  /// the same int64 arithmetic.
  [[nodiscard]] std::int64_t reference() const;

  /// One-line structural summary (for reports).
  [[nodiscard]] std::string describe() const;
};

/// Restricts what generateProgram draws: All = the full whitelist,
/// Fuse = only sibling-sequence fuse programs (serial and workshared),
/// Distribute = only distribute_loop programs. Targeted modes let CI
/// sweep a reduced corpus that still covers every fuse/distribute path.
enum class GenMode { All, Fuse, Distribute };

/// Deterministically generates the program for \p Seed.
ProgramSpec generateProgram(std::uint64_t Seed, GenMode Mode = GenMode::All);

/// One compile+execute of a program under a specific configuration.
struct RunRecord {
  std::string Config; ///< e.g. "irbuilder+O1 threads=8"
  std::int64_t Checksum = 0;
  bool CompileFailed = false;
  std::string Diagnostics; ///< populated when CompileFailed
  /// Runtime invariants checked after the run: generated programs have at
  /// most one level of parallelism, so a transient (nested-fallback) fork
  /// or a leaked serial-dispatch team context is a runtime bug even when
  /// the checksum happens to agree.
  std::string RuntimeInvariantViolation;
};

/// Verdict for one program across the whole backend matrix.
struct ProgramResult {
  ProgramSpec Spec;
  std::int64_t Expected = 0;
  unsigned RunsExecuted = 0;
  /// Backends whose reverse/interchange/fuse/distribute_loop was refused
  /// by the dependence legality oracle. Not a failure: the runner
  /// re-verifies the untransformed program instead (and a legality
  /// miscompile would show up as a checksum mismatch on an *accepted*
  /// transform).
  unsigned ConservativeRejections = 0;
  std::vector<RunRecord> Failures; ///< mismatching or failed runs

  [[nodiscard]] bool ok() const { return Failures.empty(); }
};

struct DifferentialOptions {
  /// Sweep 1, 2, HW and 2×HW default thread counts for parallel
  /// programs (serial programs run once at the default).
  bool SweepThreads = true;
  /// 0 = derive from std::thread::hardware_concurrency().
  unsigned MaxThreads = 0;
  /// Also run tile-size / unroll-factor variants of each program.
  bool SweepFactors = true;
  /// Route compilations through a CompileService (content-addressed
  /// cache) instead of a fresh CompilerInstance per run. The 4-backend x
  /// N-thread matrix then compiles each (program, backend) pair once and
  /// serves every thread width from cache — verdicts must not change.
  bool UseService = false;
  /// Execution engines to sweep. Each (program, backend) pair compiles
  /// once; every engine executes the same module at every thread width,
  /// so every engine must reproduce the reference — and each other —
  /// bit for bit. On hosts without JIT support, native and tiered fall
  /// back to bytecode per function and still participate.
  std::vector<interp::ExecEngineKind> Engines = {
      interp::ExecEngineKind::Walker, interp::ExecEngineKind::Bytecode,
      interp::ExecEngineKind::Native, interp::ExecEngineKind::Tiered};
};

/// Compiles a ProgramSpec down every pipeline configuration and compares
/// every execution against the host reference.
class DifferentialRunner {
public:
  explicit DifferentialRunner(DifferentialOptions Opts = {});

  /// Runs \p Spec through the full backend × thread matrix.
  [[nodiscard]] ProgramResult run(const ProgramSpec &Spec) const;

  /// Runs \p Spec plus its factor variants; returns the first failing
  /// result, or the original (passing) result if everything agrees.
  [[nodiscard]] ProgramResult runWithVariants(const ProgramSpec &Spec) const;

  /// Factor-sweep variants: the same program re-rendered with different
  /// tile sizes / unroll factors (empty when the program has neither).
  [[nodiscard]] std::vector<ProgramSpec>
  factorVariants(const ProgramSpec &Spec) const;

  /// Greedy structural minimization of a failing program: drops pragma
  /// components, loops and body statements, and shrinks bounds and
  /// factors while the mismatch persists.
  [[nodiscard]] ProgramSpec shrink(const ProgramSpec &Spec) const;

  /// Human-readable mismatch report: reproducing seed, per-config
  /// checksums, and the full (minimized, if shrunk) source dump.
  static std::string report(const ProgramResult &R);

private:
  DifferentialOptions Opts;
  /// Present when Opts.UseService; shared so runners stay copyable.
  std::shared_ptr<svc::CompileService> Service;
  std::vector<unsigned> threadCounts(const ProgramSpec &Spec) const;
};

} // namespace mcc::fuzz

#endif // MCC_FUZZ_FUZZ_H
