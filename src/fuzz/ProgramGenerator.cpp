//===--- ProgramGenerator.cpp - Seeded loop-nest program generation --------===//
//
// Generation and the two sides of the oracle: render() produces MiniC
// source, reference() evaluates the same program on the host. Both walk
// the identical structure with identical int64 arithmetic, so any
// divergence between a backend and reference() is a bug in the pipeline
// under test, not in the oracle.
//
// The pragma whitelist only emits stacks whose composition semantics both
// pipelines implement: [parallel for] over [tile] over [unroll partial]
// (transformations apply in reverse order of appearance), collapse
// without loop transformations, unroll full only at the top of a serial
// stack, and an optional unroll placed directly on the innermost loop of
// a nest whose outer directives need just one canonical loop. The
// dependence-gated transformations (reverse, interchange, fuse,
// distribute_loop) get their own cases: canonical-simple loops with
// direct affine subscripts so the legality oracle can admit them, plus
// ArrayCarried bodies whose loop-carried dependence the oracle must
// refuse. Fuse programs are sibling-loop sequences (serial, with an
// optional looprange sub-range, or workshared under parallel for);
// distribute_loop programs split a multi-statement body into
// per-statement-group loops.
//
//===----------------------------------------------------------------------===//
#include "fuzz/Fuzz.h"

#include <algorithm>
#include <random>

namespace mcc::fuzz {

namespace {

/// Iteration-space ceiling: keeps a single fuzz program cheap enough that
/// a 200-program corpus runs inside a unit-test budget.
constexpr std::int64_t MaxTotalIterations = 600;
constexpr std::int64_t SimulationCap = 1 << 20;

bool holds(std::int64_t I, RelOp Rel, std::int64_t Ub) {
  switch (Rel) {
  case RelOp::LT:
    return I < Ub;
  case RelOp::LE:
    return I <= Ub;
  case RelOp::GT:
    return I > Ub;
  case RelOp::GE:
    return I >= Ub;
  case RelOp::NE:
    return I != Ub;
  }
  return false;
}

std::string literal(std::int64_t V) {
  if (V < 0)
    return "(" + std::to_string(V) + ")";
  return std::to_string(V);
}

std::string ivName(unsigned Depth) { return "i" + std::to_string(Depth); }

/// Renders C0*i0 + C1*i1 + ... + Bias over the first \p Depth IVs,
/// skipping zero terms (but never rendering an empty expression).
std::string linearExpr(const BodyOp &Op, unsigned Depth) {
  std::string E;
  for (unsigned K = 0; K < Depth && K < 3; ++K) {
    if (Op.C[K] == 0)
      continue;
    if (!E.empty())
      E += " + ";
    E += literal(Op.C[K]) + " * " + ivName(K);
  }
  if (Op.Bias != 0 || E.empty()) {
    if (!E.empty())
      E += " + ";
    E += literal(Op.Bias);
  }
  return E;
}

std::int64_t linearEval(const BodyOp &Op, const std::int64_t *IV,
                        unsigned Depth) {
  std::int64_t V = Op.Bias;
  for (unsigned K = 0; K < Depth && K < 3; ++K)
    V += Op.C[K] * IV[K];
  return V;
}

} // namespace

const char *relOpSpelling(RelOp R) {
  switch (R) {
  case RelOp::LT:
    return "<";
  case RelOp::LE:
    return "<=";
  case RelOp::GT:
    return ">";
  case RelOp::GE:
    return ">=";
  case RelOp::NE:
    return "!=";
  }
  return "<";
}

std::int64_t LoopSpec::tripCount() const {
  if (Step == 0)
    return 0;
  std::int64_t N = 0;
  for (std::int64_t I = Lb; holds(I, Rel, Ub) && N < SimulationCap; I += Step)
    ++N;
  return N;
}

std::int64_t ProgramSpec::totalIterations() const {
  if (!Siblings.empty()) {
    std::int64_t Total = 0;
    for (const SiblingSpec &S : Siblings)
      Total += S.Loop.tripCount();
    return Total;
  }
  std::int64_t Total = 1;
  for (const LoopSpec &L : Loops)
    Total *= L.tripCount();
  return Total;
}

std::int64_t ProgramSpec::arraySize() const {
  if (!Siblings.empty()) {
    // Siblings index `a` by their own IV: the array must cover the
    // largest member trip count plus that member's carried-write margin.
    std::int64_t Size = 1;
    for (const SiblingSpec &S : Siblings) {
      std::int64_t Margin = 0;
      for (const BodyOp &Op : S.Body)
        if (Op.K == BodyOp::Kind::ArrayCarried)
          Margin = std::max(Margin, Op.Dist);
      Size = std::max(Size, S.Loop.tripCount() + Margin);
    }
    return Size;
  }
  std::int64_t Margin = 0;
  for (const BodyOp &Op : Body)
    if (Op.K == BodyOp::Kind::ArrayCarried)
      Margin = std::max(Margin, Op.Dist);
  return std::max<std::int64_t>(1, totalIterations()) + Margin;
}

ProgramSpec ProgramSpec::withoutLoopTransforms() const {
  ProgramSpec P = *this;
  P.Pragmas.Reverse = false;
  P.Pragmas.Permutation.clear();
  P.Pragmas.Fuse = false;
  P.Pragmas.FuseFirst = 0;
  P.Pragmas.FuseCount = 0;
  P.Pragmas.DistributeLoop = false;
  if (P.Siblings.size() > 1) {
    // A worksharing directive over the unfused loop sequence is invalid
    // (it needs a single associated loop) — it rode on the fuse.
    P.Pragmas.ParallelFor = false;
    P.Pragmas.OrphanFor = false;
    P.Pragmas.Schedule.clear();
    P.Pragmas.NumThreadsClause = 0;
  }
  return P;
}

// ===------------------------- Source rendering ----------------------=== //

namespace {

/// Renders one sibling-loop body statement (depth 1, the IV itself is the
/// array index — sibling loops are canonical-simple by construction).
std::string renderSiblingOp(const BodyOp &Op) {
  switch (Op.K) {
  case BodyOp::Kind::SumLinear:
    return "sum += " + linearExpr(Op, 1) + ";\n";
  case BodyOp::Kind::SumQuadratic:
    return "sum += " + literal(Op.C[0]) + " * i0 * i0 + " +
           literal(Op.Bias) + ";\n";
  case BodyOp::Kind::SumCond:
    return "if ((i0 + " + literal(Op.Bias) + ") % " +
           std::to_string(Op.Mod) + " == 0) sum += " + linearExpr(Op, 1) +
           ";\n";
  case BodyOp::Kind::ArrayUpdate:
    return "a[i0] += " + linearExpr(Op, 1) + ";\n";
  case BodyOp::Kind::ArrayCarried:
    return "a[i0 + " + std::to_string(Op.Dist) + "] += a[i0] + " +
           linearExpr(Op, 1) + ";\n";
  }
  return ";\n";
}

} // namespace

std::string ProgramSpec::render() const {
  if (!Siblings.empty()) {
    // Sibling-sequence program: a brace block of adjacent depth-1 loops,
    // optionally under '#pragma omp fuse' (and a worksharing directive on
    // top of the fuse — the fused loop is a single canonical loop).
    std::string S;
    S += "long sum = 0;\n";
    S += "long a[" + std::to_string(arraySize()) + "];\n";
    S += "int main() {\n";
    if (Pragmas.ParallelFor) {
      S += "  #pragma omp parallel for";
      bool WantsReduction = false;
      for (const SiblingSpec &Sib : Siblings)
        for (const BodyOp &Op : Sib.Body)
          if (Op.K != BodyOp::Kind::ArrayUpdate &&
              Op.K != BodyOp::Kind::ArrayCarried)
            WantsReduction = true;
      if (WantsReduction)
        S += " reduction(+: sum)";
      if (!Pragmas.Schedule.empty())
        S += " schedule(" + Pragmas.Schedule + ")";
      if (Pragmas.NumThreadsClause > 0)
        S += " num_threads(" + std::to_string(Pragmas.NumThreadsClause) + ")";
      S += "\n";
    }
    if (Pragmas.Fuse) {
      S += "  #pragma omp fuse";
      if (Pragmas.FuseCount > 0)
        S += " looprange(" + std::to_string(Pragmas.FuseFirst) + ", " +
             std::to_string(Pragmas.FuseCount) + ")";
      S += "\n";
    }
    S += "  {\n";
    for (const SiblingSpec &Sib : Siblings) {
      const LoopSpec &L = Sib.Loop;
      S += "    for (int i0 = " + literal(L.Lb) + "; i0 " +
           relOpSpelling(L.Rel) + " " + literal(L.Ub) + "; i0 += " +
           literal(L.Step) + ")\n";
      S += "    {\n";
      for (const BodyOp &Op : Sib.Body)
        S += "      " + renderSiblingOp(Op);
      S += "    }\n";
    }
    S += "  }\n";
    S += "  long chk = sum % 1000000007;\n";
    S += "  for (int q = 0; q < " + std::to_string(arraySize()) +
         "; q += 1)\n";
    S += "    chk = (chk * 31 + a[q]) % 1000000007;\n";
    S += "  int out = chk;\n";
    S += "  return out;\n";
    S += "}\n";
    return S;
  }

  const unsigned Depth = static_cast<unsigned>(Loops.size());
  std::string S;
  S += "long sum = 0;\n";
  S += "long a[" + std::to_string(arraySize()) + "];\n";
  S += "int main() {\n";

  // Directive stack above the outermost loop. Source order is outermost
  // transformation first; they apply in reverse order of appearance.
  std::string Indent = "  ";
  if (Pragmas.ParallelFor) {
    S += Indent + "#pragma omp parallel for";
    bool WantsReduction = false;
    for (const BodyOp &Op : Body)
      if (Op.K != BodyOp::Kind::ArrayUpdate)
        WantsReduction = true;
    if (WantsReduction)
      S += " reduction(+: sum)";
    if (!Pragmas.Schedule.empty())
      S += " schedule(" + Pragmas.Schedule + ")";
    if (Pragmas.NumThreadsClause > 0)
      S += " num_threads(" + std::to_string(Pragmas.NumThreadsClause) + ")";
    if (Pragmas.Collapse >= 2)
      S += " collapse(" + std::to_string(Pragmas.Collapse) + ")";
    S += "\n";
  }
  if (Pragmas.OrphanFor) {
    S += Indent + "#pragma omp for";
    if (!Pragmas.Schedule.empty())
      S += " schedule(" + Pragmas.Schedule + ")";
    if (Pragmas.Collapse >= 2)
      S += " collapse(" + std::to_string(Pragmas.Collapse) + ")";
    S += "\n";
  }
  if (Pragmas.UnrollFull)
    S += Indent + "#pragma omp unroll full\n";
  if (!Pragmas.TileSizes.empty()) {
    S += Indent + "#pragma omp tile sizes(";
    for (std::size_t K = 0; K < Pragmas.TileSizes.size(); ++K) {
      if (K)
        S += ", ";
      S += std::to_string(Pragmas.TileSizes[K]);
    }
    S += ")\n";
  }
  if (Pragmas.UnrollFactor > 0 && !Pragmas.UnrollInnermost)
    S += Indent + "#pragma omp unroll partial(" +
         std::to_string(Pragmas.UnrollFactor) + ")\n";
  // Dependence-gated transformations sit directly above the nest (the
  // whitelist never stacks them with tile/unroll: Sema's oracle refuses
  // transform-of-transform compositions conservatively).
  if (Pragmas.Reverse)
    S += Indent + "#pragma omp reverse\n";
  if (!Pragmas.Permutation.empty()) {
    S += Indent + "#pragma omp interchange permutation(";
    for (std::size_t K = 0; K < Pragmas.Permutation.size(); ++K) {
      if (K)
        S += ", ";
      S += std::to_string(Pragmas.Permutation[K]);
    }
    S += ")\n";
  }
  if (Pragmas.DistributeLoop)
    S += Indent + "#pragma omp distribute_loop\n";

  for (unsigned D = 0; D < Depth; ++D) {
    const LoopSpec &L = Loops[D];
    if (Pragmas.UnrollFactor > 0 && Pragmas.UnrollInnermost &&
        D == Depth - 1 && D > 0)
      S += Indent + "#pragma omp unroll partial(" +
           std::to_string(Pragmas.UnrollFactor) + ")\n";
    S += Indent + "for (int " + ivName(D) + " = " + literal(L.Lb) + "; " +
         ivName(D) + " " + relOpSpelling(L.Rel) + " " + literal(L.Ub) +
         "; " + ivName(D) + " += " + literal(L.Step) + ")\n";
    Indent += "  ";
  }

  // Innermost body: recover the logical iteration number from the IVs
  // (exact division — every IV value is Lb + k*Step) so array updates are
  // injective per iteration: racy duplicate execution, lost iterations
  // and wrong iteration sets all perturb the checksum.
  S += Indent + "{\n";
  std::string B = Indent + "  ";
  std::vector<std::int64_t> Spans(Depth, 1);
  {
    std::int64_t Span = 1;
    for (unsigned D = 0; D < Depth; ++D)
      Span *= std::max<std::int64_t>(1, Loops[D].tripCount());
    for (unsigned D = 0; D < Depth; ++D) {
      Span /= std::max<std::int64_t>(1, Loops[D].tripCount());
      Spans[D] = Span;
    }
  }
  // The logical iteration number, used as the injective array subscript.
  // DirectIndex renders it as an affine expression of the IVs themselves
  // (loops are canonical-simple, so (iv - lb)/step == iv) — the form the
  // dependence analysis can reason about. Otherwise it is accumulated
  // into a local, which the analysis conservatively skips.
  std::string Idx;
  if (DirectIndex) {
    for (unsigned D = 0; D < Depth; ++D) {
      if (!Idx.empty())
        Idx += " + ";
      Idx += ivName(D);
      if (Spans[D] != 1)
        Idx += " * " + std::to_string(Spans[D]);
    }
    if (Idx.empty())
      Idx = "0";
  } else {
    S += B + "long idx = 0;\n";
    for (unsigned D = 0; D < Depth; ++D) {
      const LoopSpec &L = Loops[D];
      S += B + "idx += (" + ivName(D) + " - " + literal(L.Lb) + ") / " +
           literal(L.Step) + " * " + std::to_string(Spans[D]) + ";\n";
    }
    Idx = "idx";
  }
  for (const BodyOp &Op : Body) {
    switch (Op.K) {
    case BodyOp::Kind::SumLinear:
      S += B + "sum += " + linearExpr(Op, Depth) + ";\n";
      break;
    case BodyOp::Kind::SumQuadratic:
      S += B + "sum += " + literal(Op.C[0]) + " * " + ivName(0) + " * " +
           ivName(0);
      if (Depth > 1 && Op.C[1] != 0)
        S += " + " + literal(Op.C[1]) + " * " + ivName(1);
      S += " + " + literal(Op.Bias) + ";\n";
      break;
    case BodyOp::Kind::SumCond:
      S += B + "if ((" + ivName(0) + " + " + literal(Op.Bias) + ") % " +
           std::to_string(Op.Mod) + " == 0) sum += " +
           linearExpr(Op, Depth) + ";\n";
      break;
    case BodyOp::Kind::ArrayUpdate:
      S += B + "a[" + Idx + "] += " + linearExpr(Op, Depth) + ";\n";
      break;
    case BodyOp::Kind::ArrayCarried:
      S += B + "a[" + Idx + " + " + std::to_string(Op.Dist) + "] += a[" +
           Idx + "] + " + linearExpr(Op, Depth) + ";\n";
      break;
    }
  }
  S += Indent + "}\n";

  // Checksum: fold sum and the entire array through a modular hash. All
  // arithmetic is int64 with values far below overflow.
  S += "  long chk = sum % 1000000007;\n";
  S += "  for (int q = 0; q < " + std::to_string(arraySize()) +
       "; q += 1)\n";
  S += "    chk = (chk * 31 + a[q]) % 1000000007;\n";
  S += "  int out = chk;\n";
  S += "  return out;\n";
  S += "}\n";
  return S;
}

// ===------------------------ Reference oracle -----------------------=== //

std::int64_t ProgramSpec::reference() const {
  if (!Siblings.empty()) {
    // Sibling loops execute sequentially in original program order; the
    // fused execution must reproduce exactly this.
    const std::int64_t ASize = arraySize();
    std::vector<std::int64_t> A(static_cast<std::size_t>(ASize), 0);
    std::int64_t Sum = 0;
    for (const SiblingSpec &Sib : Siblings) {
      const LoopSpec &L = Sib.Loop;
      std::int64_t Guard = 0;
      for (std::int64_t I = L.Lb; holds(I, L.Rel, L.Ub) && Guard < SimulationCap;
           I += L.Step, ++Guard) {
        const std::int64_t IV[3] = {I, 0, 0};
        for (const BodyOp &Op : Sib.Body) {
          switch (Op.K) {
          case BodyOp::Kind::SumLinear:
            Sum += linearEval(Op, IV, 1);
            break;
          case BodyOp::Kind::SumQuadratic:
            Sum += Op.C[0] * I * I + Op.Bias;
            break;
          case BodyOp::Kind::SumCond:
            if ((I + Op.Bias) % Op.Mod == 0)
              Sum += linearEval(Op, IV, 1);
            break;
          case BodyOp::Kind::ArrayUpdate:
            A[static_cast<std::size_t>(I)] += linearEval(Op, IV, 1);
            break;
          case BodyOp::Kind::ArrayCarried:
            A[static_cast<std::size_t>(I + Op.Dist)] +=
                A[static_cast<std::size_t>(I)] + linearEval(Op, IV, 1);
            break;
          }
        }
      }
    }
    std::int64_t Chk = Sum % 1000000007;
    for (std::int64_t Q = 0; Q < ASize; ++Q)
      Chk = (Chk * 31 + A[static_cast<std::size_t>(Q)]) % 1000000007;
    return Chk;
  }

  const unsigned Depth = static_cast<unsigned>(Loops.size());
  const std::int64_t ASize = arraySize();
  std::vector<std::int64_t> A(static_cast<std::size_t>(ASize), 0);
  std::int64_t Sum = 0;

  std::int64_t Spans[3] = {1, 1, 1};
  {
    std::int64_t Span = 1;
    for (unsigned D = 0; D < Depth; ++D)
      Span *= std::max<std::int64_t>(1, Loops[D].tripCount());
    for (unsigned D = 0; D < Depth; ++D) {
      Span /= std::max<std::int64_t>(1, Loops[D].tripCount());
      Spans[D] = Span;
    }
  }

  std::int64_t IV[3] = {0, 0, 0};
  // Recursive nest walk without recursion: depth <= 3.
  auto RunBody = [&] {
    std::int64_t Idx = 0;
    for (unsigned D = 0; D < Depth; ++D)
      Idx += (IV[D] - Loops[D].Lb) / Loops[D].Step * Spans[D];
    for (const BodyOp &Op : Body) {
      switch (Op.K) {
      case BodyOp::Kind::SumLinear:
        Sum += linearEval(Op, IV, Depth);
        break;
      case BodyOp::Kind::SumQuadratic:
        Sum += Op.C[0] * IV[0] * IV[0] +
               (Depth > 1 ? Op.C[1] * IV[1] : 0) + Op.Bias;
        break;
      case BodyOp::Kind::SumCond:
        if ((IV[0] + Op.Bias) % Op.Mod == 0)
          Sum += linearEval(Op, IV, Depth);
        break;
      case BodyOp::Kind::ArrayUpdate:
        A[static_cast<std::size_t>(Idx)] += linearEval(Op, IV, Depth);
        break;
      case BodyOp::Kind::ArrayCarried:
        A[static_cast<std::size_t>(Idx + Op.Dist)] +=
            A[static_cast<std::size_t>(Idx)] + linearEval(Op, IV, Depth);
        break;
      }
    }
  };

  auto Loop = [&](unsigned D, auto &&Self) -> void {
    if (D == Depth) {
      RunBody();
      return;
    }
    const LoopSpec &L = Loops[D];
    std::int64_t Guard = 0;
    for (IV[D] = L.Lb; holds(IV[D], L.Rel, L.Ub) && Guard < SimulationCap;
         IV[D] += L.Step, ++Guard)
      Self(D + 1, Self);
  };
  Loop(0, Loop);

  std::int64_t Chk = Sum % 1000000007;
  for (std::int64_t Q = 0; Q < ASize; ++Q)
    Chk = (Chk * 31 + A[static_cast<std::size_t>(Q)]) % 1000000007;
  // The program narrows through `int out = chk;` — Chk is already within
  // int range (|Chk| < 1000000007), so the conversion is value-preserving.
  return Chk;
}

std::string ProgramSpec::describe() const {
  std::string D = "seed=" + std::to_string(Seed);
  if (!Variant.empty())
    D += " variant=" + Variant;
  if (!Siblings.empty()) {
    D += " siblings=" + std::to_string(Siblings.size());
    D += " trips=";
    for (std::size_t K = 0; K < Siblings.size(); ++K) {
      if (K)
        D += "+";
      D += std::to_string(Siblings[K].Loop.tripCount());
    }
    if (Pragmas.ParallelFor)
      D += " parallel-for";
    if (Pragmas.Fuse) {
      D += " fuse";
      if (Pragmas.FuseCount > 0)
        D += "(looprange " + std::to_string(Pragmas.FuseFirst) + "," +
             std::to_string(Pragmas.FuseCount) + ")";
    }
    for (const SiblingSpec &Sib : Siblings)
      for (const BodyOp &Op : Sib.Body)
        if (Op.K == BodyOp::Kind::ArrayCarried) {
          D += " carried-dep(" + std::to_string(Op.Dist) + ")";
          break;
        }
    return D;
  }
  D += " depth=" + std::to_string(Loops.size());
  D += " trips=";
  for (std::size_t K = 0; K < Loops.size(); ++K) {
    if (K)
      D += "x";
    D += std::to_string(Loops[K].tripCount());
  }
  if (Pragmas.ParallelFor || Pragmas.OrphanFor) {
    D += Pragmas.ParallelFor ? " parallel-for" : " orphan-for";
    if (!Pragmas.Schedule.empty())
      D += "(schedule " + Pragmas.Schedule + ")";
    if (Pragmas.Collapse >= 2)
      D += " collapse(" + std::to_string(Pragmas.Collapse) + ")";
  }
  if (!Pragmas.TileSizes.empty()) {
    D += " tile(";
    for (std::size_t K = 0; K < Pragmas.TileSizes.size(); ++K) {
      if (K)
        D += ",";
      D += std::to_string(Pragmas.TileSizes[K]);
    }
    D += ")";
  }
  if (Pragmas.UnrollFull)
    D += " unroll-full";
  if (Pragmas.UnrollFactor)
    D += (Pragmas.UnrollInnermost ? " inner-unroll(" : " unroll(") +
         std::to_string(Pragmas.UnrollFactor) + ")";
  if (Pragmas.Reverse)
    D += " reverse";
  if (Pragmas.DistributeLoop)
    D += " distribute_loop(" + std::to_string(Body.size()) + " groups)";
  if (!Pragmas.Permutation.empty()) {
    D += " interchange(";
    for (std::size_t K = 0; K < Pragmas.Permutation.size(); ++K) {
      if (K)
        D += ",";
      D += std::to_string(Pragmas.Permutation[K]);
    }
    D += ")";
  }
  for (const BodyOp &Op : Body)
    if (Op.K == BodyOp::Kind::ArrayCarried) {
      D += " carried-dep(" + std::to_string(Op.Dist) + ")";
      break;
    }
  return D;
}

// ===-------------------------- Generation ---------------------------=== //

namespace {

/// Picks bounds for one loop with roughly \p TargetTrip iterations,
/// randomizing direction, comparison and step.
LoopSpec makeLoop(std::mt19937_64 &R, std::int64_t TargetTrip) {
  auto Rand = [&](std::int64_t Lo, std::int64_t Hi) {
    return std::uniform_int_distribution<std::int64_t>(Lo, Hi)(R);
  };
  LoopSpec L;
  const bool Up = Rand(0, 1) != 0;
  const unsigned RelPick = static_cast<unsigned>(Rand(0, 9));
  // NE needs |step| == 1 to terminate (and to be canonical).
  const bool UseNE = RelPick >= 8;
  std::int64_t Mag = UseNE ? 1 : Rand(1, 9);
  L.Step = Up ? Mag : -Mag;
  L.Lb = Rand(-25, 25);
  if (TargetTrip <= 0) {
    // Zero-trip: condition false on entry.
    L.Rel = UseNE ? RelOp::NE : (Up ? RelOp::LT : RelOp::GT);
    L.Ub = L.Lb - (L.Rel == RelOp::NE ? 0 : L.Step);
    if (L.Rel == RelOp::NE)
      L.Ub = L.Lb; // i != i is false immediately
    return L;
  }
  if (UseNE) {
    L.Rel = RelOp::NE;
    L.Ub = L.Lb + L.Step * TargetTrip;
    return L;
  }
  const std::int64_t Last = L.Lb + L.Step * (TargetTrip - 1);
  if (Rand(0, 1) != 0) {
    // Strict comparison: Ub anywhere in (Last, Last + Step].
    L.Rel = Up ? RelOp::LT : RelOp::GT;
    L.Ub = Last + (Up ? Rand(1, Mag) : -Rand(1, Mag));
  } else {
    // Inclusive comparison: Ub anywhere in [Last, Last + Step).
    L.Rel = Up ? RelOp::LE : RelOp::GE;
    L.Ub = Last + (Up ? Rand(0, Mag - 1) : -Rand(0, Mag - 1));
  }
  return L;
}

BodyOp makeBodyOp(std::mt19937_64 &R, bool AllowArray) {
  auto Rand = [&](std::int64_t Lo, std::int64_t Hi) {
    return std::uniform_int_distribution<std::int64_t>(Lo, Hi)(R);
  };
  BodyOp Op;
  switch (Rand(0, AllowArray ? 4 : 2)) {
  case 0:
    Op.K = BodyOp::Kind::SumLinear;
    break;
  case 1:
    Op.K = BodyOp::Kind::SumQuadratic;
    break;
  case 2:
    Op.K = BodyOp::Kind::SumCond;
    Op.Mod = Rand(2, 5);
    break;
  default:
    Op.K = BodyOp::Kind::ArrayUpdate;
    break;
  }
  for (std::int64_t &C : Op.C)
    C = Rand(-9, 9);
  if (Op.C[0] == 0)
    Op.C[0] = 1 + Rand(0, 8); // keep the leading IV live
  Op.Bias = Rand(-20, 20);
  return Op;
}

} // namespace

ProgramSpec generateProgram(std::uint64_t Seed, GenMode Mode) {
  std::mt19937_64 R(Seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  auto Rand = [&](std::int64_t Lo, std::int64_t Hi) {
    return std::uniform_int_distribution<std::int64_t>(Lo, Hi)(R);
  };

  ProgramSpec P;
  P.Seed = Seed;

  const unsigned Depth = static_cast<unsigned>(Rand(1, 3));
  std::int64_t Budget = MaxTotalIterations;
  for (unsigned D = 0; D < Depth; ++D) {
    // ~4% of loops are zero-trip; the rest draw a trip count that keeps
    // the whole nest under the iteration ceiling.
    std::int64_t MaxTrip = std::max<std::int64_t>(
        1, std::min<std::int64_t>(24, Budget));
    std::int64_t Target = Rand(0, 24) == 0 ? 0 : Rand(1, MaxTrip);
    LoopSpec L = makeLoop(R, Target);
    Budget /= std::max<std::int64_t>(1, L.tripCount());
    P.Loops.push_back(L);
  }

  const unsigned NumOps = static_cast<unsigned>(Rand(1, 3));
  for (unsigned K = 0; K < NumOps; ++K)
    P.Body.push_back(makeBodyOp(R, /*AllowArray=*/true));

  // Directive stack, drawn from the whitelist of compositions both
  // pipelines implement.
  PragmaSpec &G = P.Pragmas;

  // Programs carrying a dependence-gated transformation (reverse /
  // interchange) need loops and bodies the affine dependence analysis can
  // admit: canonical-simple loops (lb 0, step 1, '<') and direct affine
  // subscripts. Bodies draw from sum reductions and injective array
  // updates; serial programs may add an ArrayCarried op, whose
  // loop-carried flow dependence forces the legality oracle to refuse the
  // transformation (exercising the reject + re-verify path).
  auto MakeTransformProgram = [&](bool AllowCarried) {
    std::int64_t Budget2 = MaxTotalIterations;
    for (LoopSpec &L : P.Loops) {
      std::int64_t MaxTrip = std::max<std::int64_t>(
          1, std::min<std::int64_t>(24, Budget2));
      L = LoopSpec{0, Rand(2, MaxTrip < 2 ? 2 : MaxTrip), 1, RelOp::LT};
      Budget2 /= std::max<std::int64_t>(1, L.tripCount());
    }
    P.DirectIndex = true;
    P.Body.clear();
    const unsigned NOps = static_cast<unsigned>(Rand(1, 2));
    for (unsigned K = 0; K < NOps; ++K) {
      BodyOp Op;
      Op.K = Rand(0, 1) ? BodyOp::Kind::ArrayUpdate
                        : BodyOp::Kind::SumLinear;
      for (std::int64_t &C : Op.C)
        C = Rand(-9, 9);
      if (Op.C[0] == 0)
        Op.C[0] = 1 + Rand(0, 8);
      Op.Bias = Rand(-20, 20);
      P.Body.push_back(Op);
    }
    if (AllowCarried && Rand(0, 2) == 0) {
      BodyOp Op;
      Op.K = BodyOp::Kind::ArrayCarried;
      Op.Dist = Rand(1, 3);
      for (std::int64_t &C : Op.C)
        C = Rand(-5, 5);
      Op.Bias = Rand(-10, 10);
      P.Body.push_back(Op);
    }
  };

  // Sibling-sequence builder for the fuse modes: adjacent canonical-simple
  // depth-1 loops over the shared array. With \p AllowCarried, one member
  // may receive an ArrayCarried op whose cross-member dependence direction
  // decides whether the legality oracle admits or refuses the fusion —
  // both outcomes are wanted (accepted fusions check the codegen, refusals
  // check the reject + re-verify path).
  auto MakeSiblings = [&](unsigned NumSibs, bool AllowCarried) {
    P.Loops.clear();
    P.Body.clear();
    P.DirectIndex = true;
    P.Siblings.clear();
    for (unsigned S = 0; S < NumSibs; ++S) {
      SiblingSpec Sib;
      // Unequal trips are the interesting fusion shape (the fused loop
      // iterates the max and guards each member by its own trip count);
      // the occasional zero-trip member degenerates one guard to false.
      std::int64_t Trip = Rand(0, 15) == 0 ? 0 : Rand(1, 20);
      Sib.Loop = LoopSpec{0, Trip, 1, RelOp::LT};
      const unsigned NOps = static_cast<unsigned>(Rand(1, 2));
      for (unsigned K = 0; K < NOps; ++K) {
        BodyOp Op;
        switch (Rand(0, AllowCarried ? 5 : 3)) {
        case 0:
          Op.K = BodyOp::Kind::SumLinear;
          break;
        case 1:
          Op.K = BodyOp::Kind::SumQuadratic;
          break;
        case 2:
        case 3:
          Op.K = BodyOp::Kind::ArrayUpdate;
          break;
        default:
          Op.K = BodyOp::Kind::ArrayCarried;
          Op.Dist = Rand(1, 3);
          break;
        }
        for (std::int64_t &C : Op.C)
          C = Rand(-9, 9);
        if (Op.C[0] == 0)
          Op.C[0] = 1 + Rand(0, 8);
        Op.Bias = Rand(-20, 20);
        Sib.Body.push_back(Op);
      }
      P.Siblings.push_back(std::move(Sib));
    }
  };

  const std::int64_t OuterTrip = P.Loops[0].tripCount();
  std::int64_t Pick;
  switch (Mode) {
  case GenMode::Fuse:
    Pick = 14 + Rand(0, 1);
    break;
  case GenMode::Distribute:
    Pick = 16;
    break;
  case GenMode::All:
  default:
    Pick = Rand(0, 16);
    break;
  }
  switch (Pick) {
  case 0: // no pragmas at all
    break;
  case 1: // unroll partial on the outermost loop
    G.UnrollFactor = static_cast<unsigned>(Rand(2, 8));
    break;
  case 2: // unroll full (serial, constant trip)
    if (OuterTrip <= 64) {
      G.UnrollFull = true;
      if (Rand(0, 1))
        G.UnrollFactor = static_cast<unsigned>(Rand(2, 4)); // full-over-partial
    } else {
      G.UnrollFactor = static_cast<unsigned>(Rand(2, 8));
    }
    break;
  case 3: // tile (1..depth dimensions)
    for (std::int64_t K = 0, N = Rand(1, static_cast<std::int64_t>(Depth));
         K < N; ++K)
      G.TileSizes.push_back(Rand(1, 16));
    break;
  case 4: // tile over unroll
    G.TileSizes.push_back(Rand(1, 8));
    G.UnrollFactor = static_cast<unsigned>(Rand(2, 4));
    break;
  case 5: // plain parallel for
  case 6: {
    G.ParallelFor = true;
    static const char *Schedules[] = {"",       "static", "static, 2",
                                      "static, 5", "dynamic, 3", "guided"};
    G.Schedule = Schedules[Rand(0, 5)];
    if (Depth >= 2 && Rand(0, 2) == 0)
      G.Collapse = static_cast<unsigned>(Rand(2, Depth));
    else if (Rand(0, 3) == 0)
      G.NumThreadsClause = static_cast<unsigned>(Rand(1, 5));
    break;
  }
  case 7: // parallel for over unroll partial
    G.ParallelFor = true;
    G.UnrollFactor = static_cast<unsigned>(Rand(2, 8));
    break;
  case 8: // parallel for over tile (optionally over unroll)
    G.ParallelFor = true;
    G.TileSizes.push_back(Rand(1, 8));
    if (Rand(0, 1))
      G.UnrollFactor = static_cast<unsigned>(Rand(2, 4));
    break;
  case 9: // unroll directly on the innermost loop of a deeper nest
    if (Depth >= 2) {
      G.UnrollFactor = static_cast<unsigned>(Rand(2, 6));
      G.UnrollInnermost = true;
      if (Rand(0, 1))
        G.ParallelFor = true; // outer workshare needs only one loop
    } else {
      G.UnrollFactor = static_cast<unsigned>(Rand(2, 6));
    }
    break;
  case 10: { // orphaned worksharing loop (serial team of one)
    G.OrphanFor = true;
    static const char *Schedules[] = {"", "static", "static, 3",
                                      "dynamic, 2", "guided"};
    G.Schedule = Schedules[Rand(0, 4)];
    if (Depth >= 2 && Rand(0, 2) == 0)
      G.Collapse = static_cast<unsigned>(Rand(2, Depth));
    else if (Rand(0, 1))
      G.UnrollFactor = static_cast<unsigned>(Rand(2, 4)); // for-over-unroll
    break;
  }
  case 11: // standalone reverse (serial; may carry a blocking dependence)
    MakeTransformProgram(/*AllowCarried=*/true);
    G.Reverse = true;
    break;
  case 12: // standalone interchange on a deeper nest
    if (Depth >= 2) {
      MakeTransformProgram(/*AllowCarried=*/true);
      // Random non-identity permutation of 1..Depth.
      G.Permutation.resize(Depth);
      for (unsigned K = 0; K < Depth; ++K)
        G.Permutation[K] = K + 1;
      do {
        for (unsigned K = Depth; K > 1; --K)
          std::swap(G.Permutation[K - 1],
                    G.Permutation[static_cast<unsigned>(Rand(0, K - 1))]);
      } while (std::is_sorted(G.Permutation.begin(), G.Permutation.end()));
    } else {
      MakeTransformProgram(/*AllowCarried=*/true);
      G.Reverse = true;
    }
    break;
  case 13: { // parallel for over reverse / interchange (race-free bodies)
    MakeTransformProgram(/*AllowCarried=*/false);
    G.ParallelFor = true;
    if (Depth >= 2 && Rand(0, 1)) {
      G.Permutation = {2, 1};
      if (Depth >= 3 && Rand(0, 1))
        G.Permutation = {3, 1, 2};
    } else {
      G.Reverse = true;
    }
    static const char *Schedules[] = {"", "static", "static, 2", "guided"};
    G.Schedule = Schedules[Rand(0, 3)];
    break;
  }
  case 14: { // serial fuse of a sibling-loop sequence
    const unsigned NumSibs = static_cast<unsigned>(Rand(2, 3));
    MakeSiblings(NumSibs, /*AllowCarried=*/true);
    G.Fuse = true;
    // Sometimes fuse only a sub-range; the members outside looprange stay
    // ordinary siblings re-emitted around the fused loop.
    if (NumSibs == 3 && Rand(0, 1)) {
      G.FuseFirst = static_cast<unsigned>(Rand(1, 2));
      G.FuseCount = 2;
    }
    break;
  }
  case 15: { // workshared fuse: parallel for over the fused loop
    MakeSiblings(2, /*AllowCarried=*/false);
    G.Fuse = true;
    G.ParallelFor = true;
    static const char *Schedules[] = {"", "static", "static, 2",
                                      "dynamic, 3", "guided"};
    G.Schedule = Schedules[Rand(0, 4)];
    if (Rand(0, 3) == 0)
      G.NumThreadsClause = static_cast<unsigned>(Rand(1, 5));
    break;
  }
  case 16: { // distribute_loop: one loop, >= 2 statement groups
    P.Loops.resize(1);
    MakeTransformProgram(/*AllowCarried=*/true);
    P.Loops[0] = LoopSpec{0, Rand(3, 20), 1, RelOp::LT};
    while (P.Body.size() < 2) {
      BodyOp Op;
      Op.K = Rand(0, 1) ? BodyOp::Kind::ArrayUpdate
                        : BodyOp::Kind::SumLinear;
      for (std::int64_t &C : Op.C)
        C = Rand(-9, 9);
      if (Op.C[0] == 0)
        Op.C[0] = 1 + Rand(0, 8);
      Op.Bias = Rand(-20, 20);
      P.Body.push_back(Op);
    }
    G.DistributeLoop = true;
    break;
  }
  }
  return P;
}

} // namespace mcc::fuzz
