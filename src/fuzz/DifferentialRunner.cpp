//===--- DifferentialRunner.cpp - Multi-backend execution oracle -----------===//
//
// Takes a generated program down every execution path the project has —
// the legacy shadow-AST pipeline and the OMPCanonicalLoop/OpenMPIRBuilder
// pipeline, each at -O0 and -O1 (mid-end LoopUnroll/SimplifyCFG/DCE),
// executed by both the tree-walking and the bytecode engine, and for
// parallel programs the KMP hot-team runtime at 1, 2, HW and 2×HW
// default threads — and compares every checksum against the host
// reference. On mismatch, report() prints the reproducing seed and the
// full source; shrink() minimizes the program while the failure persists.
//
//===----------------------------------------------------------------------===//
#include "fuzz/Fuzz.h"

#include "driver/CompilerInstance.h"
#include "interp/Interpreter.h"
#include "runtime/KMPRuntime.h"
#include "service/CompileService.h"

#include <algorithm>
#include <thread>

namespace mcc::fuzz {

namespace {

struct BackendConfig {
  const char *Name;
  bool IRBuilder;
  bool Midend;
};

constexpr BackendConfig Backends[] = {
    {"legacy", false, false},
    {"legacy+O1", false, true},
    {"irbuilder", true, false},
    {"irbuilder+O1", true, true},
};

/// One backend's compilation products, alive for the whole engine x
/// thread sweep below (the thread width is runtime-only and the engine
/// choice execution-only, so neither forces a recompile).
struct CompiledProgram {
  std::unique_ptr<CompilerInstance> CI;
  std::shared_ptr<const svc::ModuleArtifact> Cached;
  const ir::Module *Mod = nullptr;
  std::shared_ptr<const interp::bc::BytecodeModule> Bytecode;
  bool Failed = false;
  std::string Diagnostics;
};

/// Compiles one program under one backend. With a \p Service, compilation
/// goes through the content-addressed cache (the engine x thread sweep
/// then hits L3, since neither axis is in any cache key) and the cached
/// bytecode translation rides along.
CompiledProgram compileProgram(const std::string &Source,
                               const BackendConfig &BC,
                               svc::CompileService *Service) {
  CompiledProgram P;
  CompilerOptions Options;
  Options.LangOpts.OpenMPEnableIRBuilder = BC.IRBuilder;
  Options.RunMidend = BC.Midend;

  if (Service) {
    svc::CompileJob Job;
    Job.Source = Source;
    Job.Options = Options;
    svc::CompileResult Res = Service->compile(Job);
    if (!Res.Succeeded) {
      P.Failed = true;
      P.Diagnostics = Res.Diagnostics;
      return P;
    }
    P.Cached = Res.Module;
    P.Mod = &P.Cached->module();
    P.Bytecode = P.Cached->Bytecode;
  } else {
    P.CI = std::make_unique<CompilerInstance>(Options);
    if (!P.CI->compileSource(Source)) {
      P.Failed = true;
      P.Diagnostics = P.CI->renderDiagnostics();
      return P;
    }
    P.Mod = P.CI->getIRModule();
  }
  return P;
}

/// Executes one compiled program on one engine at one thread width.
RunRecord executeCompiled(const CompiledProgram &P, const std::string &Config,
                          interp::ExecEngineKind Engine, unsigned Threads) {
  RunRecord Rec;
  Rec.Config = Config;
  if (P.Failed) {
    Rec.CompileFailed = true;
    Rec.Diagnostics = P.Diagnostics;
    return Rec;
  }
  rt::OpenMPRuntime &RT = rt::OpenMPRuntime::get();
  RT.setDefaultNumThreads(Threads);
  RT.resetStats();
  interp::ExecutionEngine EE(*P.Mod, Engine, P.Bytecode);
  Rec.Checksum = EE.runFunction("main", {}).I;

  // Post-run runtime invariants. Generated programs never nest parallel
  // regions and always drain their worksharing loops, so any transient
  // (nested-fallback) fork means a previous region leaked team context,
  // and a non-null current team on this thread means a serial-dispatch
  // loop failed to restore the outside-parallel context.
  if (RT.getCurrentTeam() != nullptr) {
    Rec.RuntimeInvariantViolation =
        "serial-dispatch team context leaked past the loop";
    // Cleanse the leaked context so subsequent runs are judged on their
    // own behaviour (keeps shrinking meaningful: only programs that leak
    // themselves keep failing).
    RT.dispatchFini();
  } else if (RT.statsSnapshot().NumTransientForks != 0)
    Rec.RuntimeInvariantViolation =
        "single-level parallel region took the nested/transient fork path";
  return Rec;
}

} // namespace

DifferentialRunner::DifferentialRunner(DifferentialOptions O) : Opts(O) {
  if (Opts.UseService) {
    svc::ServiceOptions SO;
    // The runner calls compile() synchronously; the pool only exists to
    // satisfy the service's lifecycle, so keep it minimal.
    SO.NumWorkers = 1;
    Service = std::make_shared<svc::CompileService>(SO);
  }
}

std::vector<unsigned>
DifferentialRunner::threadCounts(const ProgramSpec &Spec) const {
  if (!Spec.Pragmas.ParallelFor || !Opts.SweepThreads)
    return {4};
  unsigned HW = Opts.MaxThreads
                    ? Opts.MaxThreads / 2
                    : std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> Counts = {1, 2, HW, 2 * HW};
  std::sort(Counts.begin(), Counts.end());
  Counts.erase(std::unique(Counts.begin(), Counts.end()), Counts.end());
  return Counts;
}

ProgramResult DifferentialRunner::run(const ProgramSpec &Spec) const {
  ProgramResult Result;
  Result.Spec = Spec;
  Result.Expected = Spec.reference();
  const std::string Source = Spec.render();
  // Conservative-rejection fallback: when the dependence legality oracle
  // refuses a generated reverse/interchange/fuse/distribute_loop, the
  // program is still a valid differential testcase — untransformed. (The
  // reference checksum is evaluated in original program order, so it
  // covers both shapes.)
  const bool HasTransform = Spec.Pragmas.hasLoopTransform();
  const std::string StrippedSource =
      HasTransform ? Spec.withoutLoopTransforms().render() : std::string();

  for (const BackendConfig &BC : Backends) {
    // One compile per backend; every engine and thread width below
    // executes the same module (and shares one bytecode translation).
    CompiledProgram P = compileProgram(Source, BC, Service.get());
    if (P.Failed && HasTransform &&
        (P.Diagnostics.find("is refused") != std::string::npos ||
         P.Diagnostics.find("cannot prove") != std::string::npos)) {
      ++Result.ConservativeRejections;
      P = compileProgram(StrippedSource, BC, Service.get());
    }
    for (interp::ExecEngineKind Engine : Opts.Engines) {
      for (unsigned Threads : threadCounts(Spec)) {
        std::string Config = std::string(BC.Name) +
                             " threads=" + std::to_string(Threads) +
                             " engine=" +
                             interp::execEngineKindName(
                                 interp::resolveExecEngineKind(Engine));
        RunRecord Rec = executeCompiled(P, Config, Engine, Threads);
        ++Result.RunsExecuted;
        if (Rec.CompileFailed || Rec.Checksum != Result.Expected ||
            !Rec.RuntimeInvariantViolation.empty())
          Result.Failures.push_back(std::move(Rec));
      }
    }
  }
  return Result;
}

std::vector<ProgramSpec>
DifferentialRunner::factorVariants(const ProgramSpec &Spec) const {
  std::vector<ProgramSpec> Variants;
  if (!Spec.Pragmas.TileSizes.empty()) {
    for (std::int64_t Size : {std::int64_t(1), std::int64_t(3),
                              std::int64_t(16)}) {
      if (Size == Spec.Pragmas.TileSizes[0])
        continue;
      ProgramSpec V = Spec;
      for (std::int64_t &S : V.Pragmas.TileSizes)
        S = Size;
      V.Variant = "tile=" + std::to_string(Size);
      Variants.push_back(std::move(V));
    }
  }
  if (Spec.Pragmas.UnrollFactor > 0) {
    for (unsigned F : {2u, 5u, 16u}) {
      if (F == Spec.Pragmas.UnrollFactor)
        continue;
      ProgramSpec V = Spec;
      V.Pragmas.UnrollFactor = F;
      V.Variant = "unroll=" + std::to_string(F);
      Variants.push_back(std::move(V));
    }
  }
  if (Spec.Pragmas.Fuse && !Spec.Pragmas.ParallelFor &&
      Spec.Siblings.size() >= 3 && Spec.Pragmas.FuseCount == 0) {
    // Partial-range variant of a full fuse: the middle members fuse, the
    // rest are re-emitted as plain siblings around the fused loop.
    ProgramSpec V = Spec;
    V.Pragmas.FuseFirst = 2;
    V.Pragmas.FuseCount = 2;
    V.Variant = "looprange(2,2)";
    Variants.push_back(std::move(V));
  }
  if (Spec.Pragmas.Permutation.size() >= 3) {
    // Alternate permutation of the same nest (rotation is never the
    // identity for size >= 2, so the transformation stays non-trivial).
    ProgramSpec V = Spec;
    std::rotate(V.Pragmas.Permutation.begin(),
                V.Pragmas.Permutation.begin() + 1,
                V.Pragmas.Permutation.end());
    V.Variant = "perm-rotated";
    Variants.push_back(std::move(V));
  }
  return Variants;
}

ProgramResult
DifferentialRunner::runWithVariants(const ProgramSpec &Spec) const {
  ProgramResult R = run(Spec);
  if (!R.ok() || !Opts.SweepFactors)
    return R;
  for (const ProgramSpec &V : factorVariants(Spec)) {
    ProgramResult VR = run(V);
    R.RunsExecuted += VR.RunsExecuted;
    R.ConservativeRejections += VR.ConservativeRejections;
    if (!VR.ok()) {
      VR.RunsExecuted = R.RunsExecuted;
      return VR;
    }
  }
  return R;
}

ProgramSpec DifferentialRunner::shrink(const ProgramSpec &Spec) const {
  auto StillFails = [&](const ProgramSpec &Candidate) {
    return !run(Candidate).ok();
  };
  if (!StillFails(Spec))
    return Spec; // not reproducible under the plain matrix; keep as-is

  ProgramSpec Cur = Spec;
  bool Progress = true;
  for (int Round = 0; Progress && Round < 8; ++Round) {
    Progress = false;

    // 1. Drop whole pragma components (largest semantic chunks first).
    {
      ProgramSpec C = Cur;
      C.Pragmas = PragmaSpec{};
      if (C.Pragmas.any() != Cur.Pragmas.any() && StillFails(C)) {
        Cur = C;
        Progress = true;
      }
    }
    for (int Component = 0; Component < 10; ++Component) {
      ProgramSpec C = Cur;
      switch (Component) {
      case 0:
        C.Pragmas.ParallelFor = false;
        C.Pragmas.OrphanFor = false;
        C.Pragmas.Schedule.clear();
        C.Pragmas.Collapse = 0;
        C.Pragmas.NumThreadsClause = 0;
        break;
      case 1:
        C.Pragmas.TileSizes.clear();
        break;
      case 2:
        C.Pragmas.UnrollFactor = 0;
        C.Pragmas.UnrollInnermost = false;
        break;
      case 3:
        C.Pragmas.UnrollFull = false;
        break;
      case 4:
        C.Pragmas.Schedule.clear();
        break;
      case 5:
        C.Pragmas.Collapse = 0;
        break;
      case 6:
        C.Pragmas.Reverse = false;
        break;
      case 7:
        C.Pragmas.Permutation.clear();
        break;
      case 8:
        // Dropping the fuse leaves a plain sibling sequence, which a
        // worksharing directive cannot associate with — drop it too.
        C.Pragmas.Fuse = false;
        C.Pragmas.FuseFirst = 0;
        C.Pragmas.FuseCount = 0;
        if (C.Siblings.size() > 1) {
          C.Pragmas.ParallelFor = false;
          C.Pragmas.OrphanFor = false;
          C.Pragmas.Schedule.clear();
          C.Pragmas.NumThreadsClause = 0;
        }
        break;
      case 9:
        C.Pragmas.DistributeLoop = false;
        break;
      }
      if (StillFails(C) && (C.Pragmas.ParallelFor != Cur.Pragmas.ParallelFor ||
                            C.Pragmas.OrphanFor != Cur.Pragmas.OrphanFor ||
                            C.Pragmas.TileSizes.size() !=
                                Cur.Pragmas.TileSizes.size() ||
                            C.Pragmas.UnrollFactor !=
                                Cur.Pragmas.UnrollFactor ||
                            C.Pragmas.UnrollFull != Cur.Pragmas.UnrollFull ||
                            C.Pragmas.Schedule != Cur.Pragmas.Schedule ||
                            C.Pragmas.Collapse != Cur.Pragmas.Collapse ||
                            C.Pragmas.Reverse != Cur.Pragmas.Reverse ||
                            C.Pragmas.Permutation !=
                                Cur.Pragmas.Permutation ||
                            C.Pragmas.Fuse != Cur.Pragmas.Fuse ||
                            C.Pragmas.DistributeLoop !=
                                Cur.Pragmas.DistributeLoop)) {
        Cur = C;
        Progress = true;
      }
    }

    // 2. Drop loops from the inside out.
    while (Cur.Loops.size() > 1) {
      ProgramSpec C = Cur;
      C.Loops.pop_back();
      if (C.Pragmas.TileSizes.size() > C.Loops.size())
        C.Pragmas.TileSizes.resize(C.Loops.size());
      if (C.Pragmas.Collapse > C.Loops.size())
        C.Pragmas.Collapse = 0;
      if (C.Pragmas.Permutation.size() > C.Loops.size())
        C.Pragmas.Permutation.clear();
      if (C.Loops.size() < 2)
        C.Pragmas.UnrollInnermost = false;
      if (!StillFails(C))
        break;
      Cur = std::move(C);
      Progress = true;
    }

    // 2b. Drop sibling loops from the back (a fuse needs at least two
    //     members; once the fuse itself is gone the sequence may shrink
    //     to a single loop).
    while (Cur.Siblings.size() > (Cur.Pragmas.Fuse ? 2u : 1u)) {
      ProgramSpec C = Cur;
      C.Siblings.pop_back();
      if (C.Pragmas.FuseCount > 0 &&
          C.Pragmas.FuseFirst + C.Pragmas.FuseCount - 1 > C.Siblings.size()) {
        C.Pragmas.FuseFirst = 0;
        C.Pragmas.FuseCount = 0;
      }
      if (!StillFails(C))
        break;
      Cur = std::move(C);
      Progress = true;
    }

    // 2c. Drop sibling body statements.
    for (std::size_t S = 0; S < Cur.Siblings.size(); ++S) {
      while (Cur.Siblings[S].Body.size() > 1) {
        ProgramSpec C = Cur;
        C.Siblings[S].Body.pop_back();
        if (!StillFails(C))
          break;
        Cur = std::move(C);
        Progress = true;
      }
    }

    // 3. Drop body statements.
    while (Cur.Body.size() > 1) {
      ProgramSpec C = Cur;
      C.Body.pop_back();
      if (!StillFails(C))
        break;
      Cur = std::move(C);
      Progress = true;
    }

    // 4. Shrink trip counts by moving Ub halfway toward the first
    //    iteration.
    for (std::size_t D = 0; D < Cur.Loops.size(); ++D) {
      for (;;) {
        const LoopSpec &L = Cur.Loops[D];
        std::int64_t Trip = L.tripCount();
        if (Trip <= 1)
          break;
        ProgramSpec C = Cur;
        LoopSpec &NL = C.Loops[D];
        std::int64_t NewTrip = Trip / 2;
        NL.Ub = NL.Lb + NL.Step * NewTrip;
        NL.Rel = NL.Rel == RelOp::NE ? RelOp::NE
                                     : (NL.Step > 0 ? RelOp::LT : RelOp::GT);
        if (!StillFails(C))
          break;
        Cur = std::move(C);
        Progress = true;
      }
    }

    // 4b. Shrink sibling trip counts (sibling loops are canonical-simple:
    //     lb 0, step 1, '<' — halving the Ub halves the trip).
    for (std::size_t S = 0; S < Cur.Siblings.size(); ++S) {
      for (;;) {
        std::int64_t Trip = Cur.Siblings[S].Loop.tripCount();
        if (Trip <= 1)
          break;
        ProgramSpec C = Cur;
        C.Siblings[S].Loop.Ub = Trip / 2;
        if (!StillFails(C))
          break;
        Cur = std::move(C);
        Progress = true;
      }
    }

    // 5. Shrink transformation factors.
    if (Cur.Pragmas.UnrollFactor > 2) {
      ProgramSpec C = Cur;
      C.Pragmas.UnrollFactor = 2;
      if (StillFails(C)) {
        Cur = std::move(C);
        Progress = true;
      }
    }
    for (std::size_t K = 0; K < Cur.Pragmas.TileSizes.size(); ++K) {
      if (Cur.Pragmas.TileSizes[K] <= 2)
        continue;
      ProgramSpec C = Cur;
      C.Pragmas.TileSizes[K] = 2;
      if (StillFails(C)) {
        Cur = std::move(C);
        Progress = true;
      }
    }
  }
  return Cur;
}

std::string DifferentialRunner::report(const ProgramResult &R) {
  std::string Out;
  Out += "=== differential mismatch ===\n";
  Out += "program:   " + R.Spec.describe() + "\n";
  Out += "reproduce: minicc-fuzz --seed=" + std::to_string(R.Spec.Seed) +
         " --count=1\n";
  Out += "expected checksum (host reference): " +
         std::to_string(R.Expected) + "\n";
  for (const RunRecord &Rec : R.Failures) {
    Out += "  FAIL " + Rec.Config + ": ";
    if (Rec.CompileFailed) {
      Out += "compilation failed\n";
      if (!Rec.Diagnostics.empty())
        Out += Rec.Diagnostics;
    } else if (!Rec.RuntimeInvariantViolation.empty()) {
      Out += "runtime invariant: " + Rec.RuntimeInvariantViolation + "\n";
    } else {
      Out += "checksum " + std::to_string(Rec.Checksum) + "\n";
    }
  }
  Out += "--- source ---\n";
  Out += R.Spec.render();
  Out += "--------------\n";
  return Out;
}

} // namespace mcc::fuzz
