//===--- SourceLocation.h - Compact source position handles ----*- C++ -*-===//
//
// Part of the miniclang-omp-loops project: a reproduction of the front-end
// infrastructure described in "Loop Transformations using Clang's Abstract
// Syntax Tree" (Kruse, 2021).
//
// A SourceLocation is an opaque 32-bit handle into the SourceManager's global
// offset space, exactly like Clang's. Location 0 is the invalid location.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_SUPPORT_SOURCELOCATION_H
#define MCC_SUPPORT_SOURCELOCATION_H

#include <cstdint>
#include <functional>

namespace mcc {

class SourceManager;

/// An opaque, cheap-to-copy handle identifying a position in some file
/// managed by a SourceManager. The raw encoding is a 1-based offset into the
/// SourceManager's concatenated buffer space; 0 means "invalid/unknown".
class SourceLocation {
public:
  SourceLocation() = default;

  [[nodiscard]] bool isValid() const { return Raw != 0; }
  [[nodiscard]] bool isInvalid() const { return Raw == 0; }

  /// Raw encoding accessors, for use by SourceManager only.
  [[nodiscard]] std::uint32_t getRawEncoding() const { return Raw; }
  static SourceLocation getFromRawEncoding(std::uint32_t Enc) {
    SourceLocation L;
    L.Raw = Enc;
    return L;
  }

  /// Returns a location \p Delta characters after this one (same file).
  [[nodiscard]] SourceLocation getLocWithOffset(std::int32_t Delta) const {
    if (isInvalid())
      return {};
    return getFromRawEncoding(Raw + static_cast<std::uint32_t>(Delta));
  }

  friend bool operator==(SourceLocation A, SourceLocation B) {
    return A.Raw == B.Raw;
  }
  friend bool operator!=(SourceLocation A, SourceLocation B) {
    return A.Raw != B.Raw;
  }
  friend bool operator<(SourceLocation A, SourceLocation B) {
    return A.Raw < B.Raw;
  }
  friend bool operator<=(SourceLocation A, SourceLocation B) {
    return A.Raw <= B.Raw;
  }

private:
  std::uint32_t Raw = 0;
};

/// A half-open pair of source locations delimiting a region of text.
class SourceRange {
public:
  SourceRange() = default;
  SourceRange(SourceLocation Loc) : Begin(Loc), End(Loc) {}
  SourceRange(SourceLocation B, SourceLocation E) : Begin(B), End(E) {}

  [[nodiscard]] SourceLocation getBegin() const { return Begin; }
  [[nodiscard]] SourceLocation getEnd() const { return End; }
  void setBegin(SourceLocation L) { Begin = L; }
  void setEnd(SourceLocation L) { End = L; }

  [[nodiscard]] bool isValid() const {
    return Begin.isValid() && End.isValid();
  }

  friend bool operator==(SourceRange A, SourceRange B) {
    return A.Begin == B.Begin && A.End == B.End;
  }

private:
  SourceLocation Begin;
  SourceLocation End;
};

/// A file/line/column triple produced by decomposing a SourceLocation.
/// Lines and columns are 1-based; an invalid location decomposes to 0/0.
struct PresumedLoc {
  const char *Filename = "<invalid>";
  unsigned Line = 0;
  unsigned Column = 0;

  [[nodiscard]] bool isValid() const { return Line != 0; }
};

} // namespace mcc

template <> struct std::hash<mcc::SourceLocation> {
  std::size_t operator()(mcc::SourceLocation L) const noexcept {
    return std::hash<std::uint32_t>()(L.getRawEncoding());
  }
};

#endif // MCC_SUPPORT_SOURCELOCATION_H
