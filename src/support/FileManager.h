//===--- FileManager.h - Virtual & on-disk file access ---------*- C++ -*-===//
//
// The bottom layer of the paper's Fig. 1. Supports an in-memory virtual file
// system (used heavily by tests and by #include resolution) and fallback to
// the real file system.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_SUPPORT_FILEMANAGER_H
#define MCC_SUPPORT_FILEMANAGER_H

#include "support/MemoryBuffer.h"

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mcc {

/// Owns the contents of every file the compiler reads. Files registered via
/// addVirtualFile shadow the real file system, which makes hermetic tests and
/// the #include machinery trivial to exercise.
class FileManager {
public:
  FileManager() = default;
  FileManager(const FileManager &) = delete;
  FileManager &operator=(const FileManager &) = delete;

  /// Registers (or replaces) an in-memory file. Re-registering a path with
  /// *identical* contents is a no-op that keeps the existing buffer — so
  /// repeated compiles of the same source reuse one MemoryBuffer (and one
  /// SourceManager FileID) instead of growing per request. When the
  /// contents differ, the old buffer is retired, not destroyed: a
  /// SourceManager (or a cached token stream) may still point into it.
  void addVirtualFile(std::string Path, std::string_view Contents);

  /// Returns the buffer for \p Path, reading from the virtual FS first and
  /// the real FS second. Returns nullptr if the file does not exist. The
  /// FileManager retains ownership; buffers live as long as the manager.
  const MemoryBuffer *getBuffer(const std::string &Path);

  [[nodiscard]] bool exists(const std::string &Path) const;

  [[nodiscard]] std::size_t getNumVirtualFiles() const {
    return VirtualFiles.size();
  }

  /// Buffers replaced by addVirtualFile but kept alive for old references
  /// (bounded by the number of *distinct* contents ever registered).
  [[nodiscard]] std::size_t getNumRetiredBuffers() const {
    return RetiredBuffers.size();
  }

private:
  std::map<std::string, std::unique_ptr<MemoryBuffer>> VirtualFiles;
  std::map<std::string, std::unique_ptr<MemoryBuffer>> DiskCache;
  std::vector<std::unique_ptr<MemoryBuffer>> RetiredBuffers;
};

} // namespace mcc

#endif // MCC_SUPPORT_FILEMANAGER_H
