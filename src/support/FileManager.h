//===--- FileManager.h - Virtual & on-disk file access ---------*- C++ -*-===//
//
// The bottom layer of the paper's Fig. 1. Supports an in-memory virtual file
// system (used heavily by tests and by #include resolution) and fallback to
// the real file system.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_SUPPORT_FILEMANAGER_H
#define MCC_SUPPORT_FILEMANAGER_H

#include "support/MemoryBuffer.h"

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace mcc {

/// Owns the contents of every file the compiler reads. Files registered via
/// addVirtualFile shadow the real file system, which makes hermetic tests and
/// the #include machinery trivial to exercise.
class FileManager {
public:
  FileManager() = default;
  FileManager(const FileManager &) = delete;
  FileManager &operator=(const FileManager &) = delete;

  /// Registers (or replaces) an in-memory file.
  void addVirtualFile(std::string Path, std::string_view Contents);

  /// Returns the buffer for \p Path, reading from the virtual FS first and
  /// the real FS second. Returns nullptr if the file does not exist. The
  /// FileManager retains ownership; buffers live as long as the manager.
  const MemoryBuffer *getBuffer(const std::string &Path);

  [[nodiscard]] bool exists(const std::string &Path) const;

  [[nodiscard]] std::size_t getNumVirtualFiles() const {
    return VirtualFiles.size();
  }

private:
  std::map<std::string, std::unique_ptr<MemoryBuffer>> VirtualFiles;
  std::map<std::string, std::unique_ptr<MemoryBuffer>> DiskCache;
};

} // namespace mcc

#endif // MCC_SUPPORT_FILEMANAGER_H
