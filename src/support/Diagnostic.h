//===--- Diagnostic.h - Diagnostic engine with notes ------------*- C++ -*-===//
//
// A Clang-style diagnostics engine: diagnostics are identified by an ID from
// a central table, carry a severity (error / warning / note / remark), a
// primary SourceLocation and %0/%1/... substitution arguments.
//
// Section 2 of the paper discusses two pitfalls of the shadow-AST approach
// that this engine is designed to test against:
//   * diagnostics accidentally naming internal variables like '.capture_expr.'
//   * diagnostics pointing into the shadow AST, for which a *representative
//     location* on the literal loop should be substituted.
// DiagnosticsEngine therefore supports location remapping regions (pushed
// while analyzing a transformed AST) so every report inside them is retargeted
// to the representative literal-loop location, plus note diagnostics to
// explain the transformation history (analogous to "in instantiation of ...").
//
//===----------------------------------------------------------------------===//
#ifndef MCC_SUPPORT_DIAGNOSTIC_H
#define MCC_SUPPORT_DIAGNOSTIC_H

#include "support/SourceLocation.h"

#include <cstdarg>
#include <functional>
#include <string>
#include <vector>

namespace mcc {

class SourceManager;

namespace diag {
/// Central list of all diagnostics the compiler can emit.
enum DiagID : unsigned {
#define DIAG(ID, SEVERITY, TEXT) ID,
#include "support/Diagnostics.def"
#undef DIAG
  NUM_DIAGNOSTICS
};

enum class Severity { Ignored, Remark, Note, Warning, Error };

Severity getSeverity(DiagID ID);
const char *getFormatString(DiagID ID);
const char *getName(DiagID ID);
} // namespace diag

/// One fully-formed diagnostic.
struct Diagnostic {
  diag::DiagID ID = diag::NUM_DIAGNOSTICS;
  diag::Severity Sev = diag::Severity::Ignored;
  SourceLocation Loc;
  std::string Message; // format string with %N already substituted
  std::vector<SourceRange> Ranges;
};

class DiagnosticsEngine;

/// Fluent builder returned by DiagnosticsEngine::report. Collects the %N
/// arguments and emits the diagnostic on destruction.
class DiagnosticBuilder {
public:
  DiagnosticBuilder(DiagnosticBuilder &&Other) noexcept
      : Engine(Other.Engine), D(std::move(Other.D)),
        Args(std::move(Other.Args)) {
    Other.Engine = nullptr;
  }
  DiagnosticBuilder(const DiagnosticBuilder &) = delete;
  DiagnosticBuilder &operator=(const DiagnosticBuilder &) = delete;
  ~DiagnosticBuilder();

  DiagnosticBuilder &operator<<(const std::string &S) {
    Args.push_back(S);
    return *this;
  }
  DiagnosticBuilder &operator<<(const char *S) {
    Args.emplace_back(S);
    return *this;
  }
  DiagnosticBuilder &operator<<(std::string_view S) {
    Args.emplace_back(S);
    return *this;
  }
  DiagnosticBuilder &operator<<(long long V) {
    Args.push_back(std::to_string(V));
    return *this;
  }
  DiagnosticBuilder &operator<<(unsigned long long V) {
    Args.push_back(std::to_string(V));
    return *this;
  }
  DiagnosticBuilder &operator<<(int V) {
    Args.push_back(std::to_string(V));
    return *this;
  }
  DiagnosticBuilder &operator<<(unsigned V) {
    Args.push_back(std::to_string(V));
    return *this;
  }
  DiagnosticBuilder &operator<<(SourceRange R) {
    D.Ranges.push_back(R);
    return *this;
  }

private:
  friend class DiagnosticsEngine;
  DiagnosticBuilder(DiagnosticsEngine *E, Diagnostic Diag)
      : Engine(E), D(std::move(Diag)) {}

  DiagnosticsEngine *Engine;
  Diagnostic D;
  std::vector<std::string> Args;
};

/// Receives fully-formed diagnostics. The default consumer stores them; the
/// TextDiagnosticPrinter renders clang-style "file:line:col: error: ..."
/// output with a caret line.
class DiagnosticConsumer {
public:
  virtual ~DiagnosticConsumer() = default;
  virtual void handleDiagnostic(const Diagnostic &D) = 0;
};

class StoringDiagnosticConsumer final : public DiagnosticConsumer {
public:
  void handleDiagnostic(const Diagnostic &D) override {
    Diags.push_back(D);
  }
  [[nodiscard]] const std::vector<Diagnostic> &getDiagnostics() const {
    return Diags;
  }
  void clear() { Diags.clear(); }

private:
  std::vector<Diagnostic> Diags;
};

class TextDiagnosticPrinter final : public DiagnosticConsumer {
public:
  TextDiagnosticPrinter(std::string &Out, const SourceManager *SM)
      : Out(Out), SM(SM) {}
  void handleDiagnostic(const Diagnostic &D) override;

private:
  std::string &Out;
  const SourceManager *SM;
};

/// The engine: reports diagnostics, tracks error counts, applies the
/// transformed-AST location remapping policy, and fans results out to a
/// consumer.
class DiagnosticsEngine {
public:
  explicit DiagnosticsEngine(DiagnosticConsumer *Consumer = nullptr)
      : Consumer(Consumer) {}

  void setConsumer(DiagnosticConsumer *C) { Consumer = C; }
  [[nodiscard]] DiagnosticConsumer *getConsumer() const { return Consumer; }

  DiagnosticBuilder report(SourceLocation Loc, diag::DiagID ID);

  [[nodiscard]] unsigned getNumErrors() const { return NumErrors; }
  [[nodiscard]] unsigned getNumWarnings() const { return NumWarnings; }
  [[nodiscard]] unsigned getNumRemarks() const { return NumRemarks; }
  [[nodiscard]] bool hasErrorOccurred() const { return NumErrors != 0; }
  void reset() {
    NumErrors = 0;
    NumWarnings = 0;
    NumRemarks = 0;
  }

  /// -w: drop all warnings (and the notes attached to them).
  void setSuppressAllWarnings(bool V) { SuppressAllWarnings = V; }
  [[nodiscard]] bool getSuppressAllWarnings() const {
    return SuppressAllWarnings;
  }

  /// -Werror: promote warnings to errors (they then count as errors, so
  /// compilation fails).
  void setWarningsAsErrors(bool V) { WarningsAsErrors = V; }
  [[nodiscard]] bool getWarningsAsErrors() const { return WarningsAsErrors; }

  /// While a remap region is active, every diagnostic whose location lies
  /// inside the shadow AST (i.e. has an invalid or internal location) is
  /// retargeted to \p RepresentativeLoc, and an explanatory note
  /// (note_omp_transformed_here) is emitted after it. This implements the
  /// policy discussed in Section 2 of the paper.
  void pushTransformRemap(SourceLocation RepresentativeLoc,
                          std::string TransformName) {
    RemapStack.push_back({RepresentativeLoc, std::move(TransformName)});
  }
  void popTransformRemap() { RemapStack.pop_back(); }
  [[nodiscard]] bool inTransformRemap() const { return !RemapStack.empty(); }

private:
  friend class DiagnosticBuilder;
  void emit(Diagnostic D, const std::vector<std::string> &Args);

  static std::string formatDiagnostic(const char *Format,
                                      const std::vector<std::string> &Args);

  struct RemapEntry {
    SourceLocation RepresentativeLoc;
    std::string TransformName;
  };

  DiagnosticConsumer *Consumer = nullptr;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
  unsigned NumRemarks = 0;
  std::vector<RemapEntry> RemapStack;
  bool EmittingRemapNote = false;
  bool SuppressAllWarnings = false;
  bool WarningsAsErrors = false;
  bool SuppressingAttachedNotes = false;
};

} // namespace mcc

#endif // MCC_SUPPORT_DIAGNOSTIC_H
