//===--- SourceManager.h - Global offset space over buffers ----*- C++ -*-===//
//
// Maps SourceLocations (opaque 32-bit offsets) back to buffers, lines and
// columns, mirroring Clang's SourceManager (Fig. 1 of the paper).
//
//===----------------------------------------------------------------------===//
#ifndef MCC_SUPPORT_SOURCEMANAGER_H
#define MCC_SUPPORT_SOURCEMANAGER_H

#include "support/MemoryBuffer.h"
#include "support/SourceLocation.h"

#include <cassert>
#include <mutex>
#include <string>
#include <vector>

namespace mcc {

/// Identifies one buffer registered with the SourceManager.
class FileID {
public:
  FileID() = default;

  [[nodiscard]] bool isValid() const { return Id != 0; }
  [[nodiscard]] unsigned getOpaqueValue() const { return Id; }

  friend bool operator==(FileID A, FileID B) { return A.Id == B.Id; }
  friend bool operator!=(FileID A, FileID B) { return A.Id != B.Id; }

private:
  friend class SourceManager;
  explicit FileID(unsigned V) : Id(V) {}
  unsigned Id = 0; // 1-based index into SourceManager::Entries.
};

/// Assigns each registered MemoryBuffer a contiguous, non-overlapping range
/// in a single global offset space (offset 0 is reserved for the invalid
/// location). Provides O(log n) decomposition of a SourceLocation into
/// (FileID, offset) and lazily-built line tables for line/column lookup.
class SourceManager {
public:
  SourceManager() = default;
  SourceManager(const SourceManager &) = delete;
  SourceManager &operator=(const SourceManager &) = delete;

  /// Registers \p Buf (not owned; must outlive the SourceManager) and
  /// returns its FileID. The first registered buffer becomes the main file.
  /// Re-registering the same buffer returns the existing FileID instead of
  /// growing the offset space, so repeated compiles of an unchanged file
  /// (and the compile service's artifact reuse) stay bounded.
  FileID createFileID(const MemoryBuffer *Buf);

  [[nodiscard]] FileID getMainFileID() const { return MainFile; }

  /// Location of the first character of \p FID.
  [[nodiscard]] SourceLocation getLocForStartOfFile(FileID FID) const;

  /// Location \p Offset characters into \p FID.
  [[nodiscard]] SourceLocation getLoc(FileID FID, unsigned Offset) const;

  [[nodiscard]] const MemoryBuffer *getBuffer(FileID FID) const;

  /// Decomposes \p Loc into its owning file and offset therein.
  [[nodiscard]] std::pair<FileID, unsigned>
  getDecomposedLoc(SourceLocation Loc) const;

  [[nodiscard]] FileID getFileID(SourceLocation Loc) const {
    return getDecomposedLoc(Loc).first;
  }

  /// Full filename/line/column decomposition; 1-based line and column.
  [[nodiscard]] PresumedLoc getPresumedLoc(SourceLocation Loc) const;

  [[nodiscard]] unsigned getLineNumber(SourceLocation Loc) const {
    return getPresumedLoc(Loc).Line;
  }
  [[nodiscard]] unsigned getColumnNumber(SourceLocation Loc) const {
    return getPresumedLoc(Loc).Column;
  }

  /// The text of the line containing \p Loc (without the newline), used for
  /// caret diagnostics.
  [[nodiscard]] std::string_view getLineText(SourceLocation Loc) const;

  /// Character data starting at \p Loc.
  [[nodiscard]] const char *getCharacterData(SourceLocation Loc) const;

  [[nodiscard]] unsigned getNumFiles() const {
    return static_cast<unsigned>(Entries.size());
  }

private:
  struct Entry {
    const MemoryBuffer *Buffer = nullptr;
    unsigned StartOffset = 0; // global offset of the buffer's first char
    // Lazily computed offsets (within the buffer) of each line start.
    // Guarded by LineTableMutex: a SourceManager inside a cached compile
    // artifact is shared read-only across service workers, and concurrent
    // diagnostic rendering must not race the first line-table build.
    mutable std::vector<unsigned> LineStarts;
  };

  const Entry &getEntry(FileID FID) const {
    assert(FID.isValid() && FID.Id <= Entries.size() && "invalid FileID");
    return Entries[FID.Id - 1];
  }

  void buildLineTable(const Entry &E) const;

  std::vector<Entry> Entries;
  unsigned NextOffset = 1; // 0 reserved for the invalid location
  FileID MainFile;
  mutable std::mutex LineTableMutex;
};

} // namespace mcc

#endif // MCC_SUPPORT_SOURCEMANAGER_H
