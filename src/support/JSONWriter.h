//===--- JSONWriter.h - Minimal JSON emission ------------------*- C++ -*-===//
//
// A tiny append-only JSON writer for machine-readable outputs (service
// stats scraping, daemon protocol payloads). Emission only — the repo has
// no JSON consumer — with automatic comma placement and RFC 8259 string
// escaping. Deliberately not a DOM: callers stream key/value pairs in
// order, which keeps output deterministic (stable for golden tests).
//
//===----------------------------------------------------------------------===//
#ifndef MCC_SUPPORT_JSONWRITER_H
#define MCC_SUPPORT_JSONWRITER_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace mcc::json {

/// Escapes \p S for inclusion inside a JSON string literal (the
/// surrounding quotes are the caller's). Control characters use \u00XX.
inline std::string escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else
        Out.push_back(C);
    }
  }
  return Out;
}

/// Streaming writer over a caller-owned string. Usage:
///   Writer W(Out);
///   W.beginObject();
///   W.field("requests", 42);
///   W.key("l1"); W.beginObject(); ... W.endObject();
///   W.endObject();
class Writer {
public:
  explicit Writer(std::string &Out) : Out(Out) {}

  void beginObject() {
    comma();
    Out += '{';
    Fresh.push_back(true);
  }
  void endObject() {
    Out += '}';
    Fresh.pop_back();
  }
  void beginArray() {
    comma();
    Out += '[';
    Fresh.push_back(true);
  }
  void endArray() {
    Out += ']';
    Fresh.pop_back();
  }

  /// Emits `"name":` (value must follow).
  void key(std::string_view Name) {
    comma();
    Out += '"';
    Out += escape(Name);
    Out += "\":";
    Pending = true;
  }

  void value(std::uint64_t V) {
    comma();
    Out += std::to_string(V);
  }
  void value(std::int64_t V) {
    comma();
    Out += std::to_string(V);
  }
  void value(bool V) {
    comma();
    Out += V ? "true" : "false";
  }
  void value(std::string_view V) {
    comma();
    Out += '"';
    Out += escape(V);
    Out += '"';
  }
  /// Without this overload a string literal would prefer the bool
  /// conversion (standard beats user-defined) and emit `true`.
  void value(const char *V) { value(std::string_view(V)); }

  /// Splices pre-rendered JSON in as one value (e.g. nesting another
  /// component's snapshot); the caller guarantees it is valid JSON.
  void rawValue(std::string_view J) {
    comma();
    Out += J;
  }

  void field(std::string_view Name, std::uint64_t V) { key(Name); value(V); }
  void field(std::string_view Name, std::int64_t V) { key(Name); value(V); }
  void field(std::string_view Name, bool V) { key(Name); value(V); }
  void field(std::string_view Name, std::string_view V) { key(Name); value(V); }
  void field(std::string_view Name, const char *V) { key(Name); value(V); }

private:
  /// Inserts a separating comma unless this is the container's first
  /// element or the value completes a pending `"key":`.
  void comma() {
    if (Pending) {
      Pending = false;
      return;
    }
    if (!Fresh.empty()) {
      if (!Fresh.back())
        Out += ',';
      Fresh.back() = false;
    }
  }

  std::string &Out;
  std::vector<bool> Fresh; ///< per open container: no element emitted yet
  bool Pending = false;    ///< a key was written; next value separates not
};

} // namespace mcc::json

#endif // MCC_SUPPORT_JSONWRITER_H
