//===--- Arena.h - Bump-pointer allocator for AST nodes ---------*- C++ -*-===//
//
// Clang allocates its (mostly immutable) AST out of the ASTContext's bump
// allocator and never runs destructors; we mirror that. Objects allocated
// here must therefore be trivially destructible or have destructors whose
// omission is benign (all our AST nodes qualify: they only reference other
// arena objects or ASTContext-interned data).
//
//===----------------------------------------------------------------------===//
#ifndef MCC_SUPPORT_ARENA_H
#define MCC_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace mcc {

class Arena {
public:
  explicit Arena(std::size_t SlabSize = 64 * 1024) : SlabSize(SlabSize) {}
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  void *allocate(std::size_t Size, std::size_t Align) {
    std::size_t Adjust = (Align - (CurPtr % Align)) % Align;
    if (Size + Adjust > CurEnd - CurPtr) {
      newSlab(Size + Align);
      Adjust = (Align - (CurPtr % Align)) % Align;
    }
    CurPtr += Adjust;
    void *Result = reinterpret_cast<void *>(CurPtr);
    CurPtr += Size;
    TotalAllocated += Size + Adjust;
    return Result;
  }

  template <typename T, typename... Args> T *create(Args &&...As) {
    void *Mem = allocate(sizeof(T), alignof(T));
    return ::new (Mem) T(std::forward<Args>(As)...);
  }

  /// Allocates an uninitialized array of \p N objects of type T.
  template <typename T> T *allocateArray(std::size_t N) {
    return static_cast<T *>(allocate(sizeof(T) * N, alignof(T)));
  }

  [[nodiscard]] std::size_t getTotalAllocated() const {
    return TotalAllocated;
  }
  [[nodiscard]] std::size_t getNumSlabs() const { return Slabs.size(); }

private:
  void newSlab(std::size_t MinSize) {
    std::size_t Size = MinSize > SlabSize ? MinSize : SlabSize;
    Slabs.push_back(std::make_unique<std::byte[]>(Size));
    CurPtr = reinterpret_cast<std::uintptr_t>(Slabs.back().get());
    CurEnd = CurPtr + Size;
  }

  std::size_t SlabSize;
  std::vector<std::unique_ptr<std::byte[]>> Slabs;
  std::uintptr_t CurPtr = 0;
  std::uintptr_t CurEnd = 0;
  std::size_t TotalAllocated = 0;
};

} // namespace mcc

#endif // MCC_SUPPORT_ARENA_H
