//===--- MemoryBuffer.h - Immutable owned text buffers ---------*- C++ -*-===//
//
// The FileManager hands out MemoryBuffers, mirroring the data flow in the
// paper's Fig. 1 (FileManager -> SourceManager -> Lexer).
//
//===----------------------------------------------------------------------===//
#ifndef MCC_SUPPORT_MEMORYBUFFER_H
#define MCC_SUPPORT_MEMORYBUFFER_H

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace mcc {

/// An immutable, named chunk of source text. The buffer is guaranteed to be
/// NUL-terminated one past getSize() so lexers can scan without bounds checks.
class MemoryBuffer {
public:
  static std::unique_ptr<MemoryBuffer> getMemBuffer(std::string_view Text,
                                                    std::string Name) {
    return std::unique_ptr<MemoryBuffer>(
        new MemoryBuffer(std::string(Text), std::move(Name)));
  }

  [[nodiscard]] const char *getBufferStart() const { return Data.data(); }
  [[nodiscard]] const char *getBufferEnd() const {
    return Data.data() + Data.size();
  }
  [[nodiscard]] std::size_t getSize() const { return Data.size(); }
  [[nodiscard]] std::string_view getBuffer() const { return Data; }
  [[nodiscard]] const std::string &getName() const { return Name; }

private:
  MemoryBuffer(std::string D, std::string N)
      : Data(std::move(D)), Name(std::move(N)) {}

  std::string Data; // std::string guarantees a trailing NUL.
  std::string Name;
};

} // namespace mcc

#endif // MCC_SUPPORT_MEMORYBUFFER_H
