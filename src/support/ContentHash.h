//===--- ContentHash.h - Stable content-addressed hashing ------*- C++ -*-===//
//
// 64-bit FNV-1a hashing over byte ranges, with an order-sensitive combiner,
// used by the compile service to derive content-addressed cache keys
// (DESIGN.md "Compilation service layer"). The hash is a pure function of
// the *bytes* — deliberately independent of buffer names/paths, pointer
// values, process lifetime, and platform, so that identical source text
// submitted under different file names maps to the same key on every run.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_SUPPORT_CONTENTHASH_H
#define MCC_SUPPORT_CONTENTHASH_H

#include "support/MemoryBuffer.h"

#include <cstdint>
#include <string_view>

namespace mcc {

inline constexpr std::uint64_t FNVOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t FNVPrime = 0x100000001b3ULL;

/// FNV-1a over \p Bytes, continuing from \p Seed (chain calls to hash a
/// logical concatenation without materializing it).
[[nodiscard]] constexpr std::uint64_t
hashBytes(std::string_view Bytes, std::uint64_t Seed = FNVOffsetBasis) {
  std::uint64_t H = Seed;
  for (char C : Bytes) {
    H ^= static_cast<unsigned char>(C);
    H *= FNVPrime;
  }
  return H;
}

/// Order-sensitive combination of two hashes/values. Feeds the eight bytes
/// of \p V through the same FNV-1a round function, so combine(a, b) !=
/// combine(b, a) and chained fields cannot cancel.
[[nodiscard]] constexpr std::uint64_t hashCombine(std::uint64_t H,
                                                  std::uint64_t V) {
  for (int I = 0; I < 8; ++I) {
    H ^= (V >> (I * 8)) & 0xff;
    H *= FNVPrime;
  }
  return H;
}

/// Content hash of a MemoryBuffer. The buffer *name* is excluded on
/// purpose: the compile service keys on what the lexer will see, not on
/// where it came from.
[[nodiscard]] inline std::uint64_t hashBufferContent(const MemoryBuffer &B) {
  return hashBytes(B.getBuffer());
}

} // namespace mcc

#endif // MCC_SUPPORT_CONTENTHASH_H
