#include "support/SourceManager.h"

#include <algorithm>

namespace mcc {

FileID SourceManager::createFileID(const MemoryBuffer *Buf) {
  assert(Buf && "null buffer");
  // Dedupe by buffer identity: repeated compiles of an unchanged file (the
  // FileManager hands back the same MemoryBuffer) must not grow the offset
  // space, or sustained service load would leak a FileID per request.
  for (std::size_t I = 0; I < Entries.size(); ++I)
    if (Entries[I].Buffer == Buf)
      return FileID(static_cast<unsigned>(I + 1));
  Entry E;
  E.Buffer = Buf;
  E.StartOffset = NextOffset;
  NextOffset += static_cast<unsigned>(Buf->getSize()) + 1; // +1: EOF location
  Entries.push_back(std::move(E));
  FileID FID(static_cast<unsigned>(Entries.size()));
  if (!MainFile.isValid())
    MainFile = FID;
  return FID;
}

SourceLocation SourceManager::getLocForStartOfFile(FileID FID) const {
  return SourceLocation::getFromRawEncoding(getEntry(FID).StartOffset);
}

SourceLocation SourceManager::getLoc(FileID FID, unsigned Offset) const {
  const Entry &E = getEntry(FID);
  assert(Offset <= E.Buffer->getSize() && "offset past end of buffer");
  return SourceLocation::getFromRawEncoding(E.StartOffset + Offset);
}

const MemoryBuffer *SourceManager::getBuffer(FileID FID) const {
  return getEntry(FID).Buffer;
}

std::pair<FileID, unsigned>
SourceManager::getDecomposedLoc(SourceLocation Loc) const {
  if (Loc.isInvalid() || Entries.empty())
    return {FileID(), 0};
  std::uint32_t Raw = Loc.getRawEncoding();
  // Binary search for the last entry whose StartOffset <= Raw.
  auto It = std::upper_bound(
      Entries.begin(), Entries.end(), Raw,
      [](std::uint32_t R, const Entry &E) { return R < E.StartOffset; });
  if (It == Entries.begin())
    return {FileID(), 0};
  --It;
  unsigned Index = static_cast<unsigned>(It - Entries.begin());
  unsigned Offset = Raw - It->StartOffset;
  if (Offset > It->Buffer->getSize())
    return {FileID(), 0};
  return {FileID(Index + 1), Offset};
}

void SourceManager::buildLineTable(const Entry &E) const {
  // Serialized: cached compile artifacts share one SourceManager across
  // service workers, so two threads may render diagnostics (and therefore
  // demand the same lazy line table) concurrently. Once built, the table
  // is immutable; the mutex acquisition also publishes it to late readers.
  std::lock_guard<std::mutex> Lock(LineTableMutex);
  if (!E.LineStarts.empty())
    return;
  std::vector<unsigned> Starts;
  Starts.push_back(0);
  std::string_view Text = E.Buffer->getBuffer();
  for (unsigned I = 0; I < Text.size(); ++I)
    if (Text[I] == '\n')
      Starts.push_back(I + 1);
  E.LineStarts = std::move(Starts);
}

PresumedLoc SourceManager::getPresumedLoc(SourceLocation Loc) const {
  auto [FID, Offset] = getDecomposedLoc(Loc);
  if (!FID.isValid())
    return {};
  const Entry &E = getEntry(FID);
  buildLineTable(E);
  auto It = std::upper_bound(E.LineStarts.begin(), E.LineStarts.end(), Offset);
  unsigned Line = static_cast<unsigned>(It - E.LineStarts.begin()); // 1-based
  unsigned LineStart = E.LineStarts[Line - 1];
  PresumedLoc P;
  P.Filename = E.Buffer->getName().c_str();
  P.Line = Line;
  P.Column = Offset - LineStart + 1;
  return P;
}

std::string_view SourceManager::getLineText(SourceLocation Loc) const {
  auto [FID, Offset] = getDecomposedLoc(Loc);
  if (!FID.isValid())
    return {};
  const Entry &E = getEntry(FID);
  buildLineTable(E);
  auto It = std::upper_bound(E.LineStarts.begin(), E.LineStarts.end(), Offset);
  unsigned Line = static_cast<unsigned>(It - E.LineStarts.begin());
  unsigned Start = E.LineStarts[Line - 1];
  unsigned End = (Line < E.LineStarts.size())
                     ? E.LineStarts[Line] - 1 // drop the '\n'
                     : static_cast<unsigned>(E.Buffer->getSize());
  return E.Buffer->getBuffer().substr(Start, End - Start);
}

const char *SourceManager::getCharacterData(SourceLocation Loc) const {
  auto [FID, Offset] = getDecomposedLoc(Loc);
  if (!FID.isValid())
    return nullptr;
  return getEntry(FID).Buffer->getBufferStart() + Offset;
}

} // namespace mcc
