#include "support/FileManager.h"

#include <fstream>
#include <sstream>

namespace mcc {

void FileManager::addVirtualFile(std::string Path, std::string_view Contents) {
  auto It = VirtualFiles.find(Path);
  if (It != VirtualFiles.end()) {
    // Identical re-registration dedupes to the existing buffer so repeated
    // compiles of the same source do not grow memory (and keep their
    // SourceManager FileID). A *changed* file retires the old buffer
    // instead of destroying it: SourceLocations handed out for the
    // previous compile must stay renderable.
    if (It->second->getBuffer() == Contents)
      return;
    RetiredBuffers.push_back(std::move(It->second));
    It->second = MemoryBuffer::getMemBuffer(Contents, Path);
    return;
  }
  VirtualFiles[Path] = MemoryBuffer::getMemBuffer(Contents, Path);
}

const MemoryBuffer *FileManager::getBuffer(const std::string &Path) {
  if (auto It = VirtualFiles.find(Path); It != VirtualFiles.end())
    return It->second.get();
  if (auto It = DiskCache.find(Path); It != DiskCache.end())
    return It->second.get();

  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return nullptr;
  std::ostringstream SS;
  SS << In.rdbuf();
  auto Buf = MemoryBuffer::getMemBuffer(SS.str(), Path);
  const MemoryBuffer *Raw = Buf.get();
  DiskCache[Path] = std::move(Buf);
  return Raw;
}

bool FileManager::exists(const std::string &Path) const {
  if (VirtualFiles.count(Path) || DiskCache.count(Path))
    return true;
  std::ifstream In(Path, std::ios::binary);
  return static_cast<bool>(In);
}

} // namespace mcc
