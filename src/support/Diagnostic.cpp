#include "support/Diagnostic.h"

#include "support/SourceManager.h"

#include <array>
#include <cassert>

namespace mcc {
namespace diag {

namespace {
struct DiagInfo {
  Severity Sev;
  const char *Format;
  const char *Name;
};

constexpr std::array<DiagInfo, NUM_DIAGNOSTICS> DiagTable = {{
#define DIAG(ID, SEVERITY, TEXT) {Severity::SEVERITY, TEXT, #ID},
#include "support/Diagnostics.def"
#undef DIAG
}};
} // namespace

Severity getSeverity(DiagID ID) {
  assert(ID < NUM_DIAGNOSTICS);
  return DiagTable[ID].Sev;
}

const char *getFormatString(DiagID ID) {
  assert(ID < NUM_DIAGNOSTICS);
  return DiagTable[ID].Format;
}

const char *getName(DiagID ID) {
  assert(ID < NUM_DIAGNOSTICS);
  return DiagTable[ID].Name;
}

} // namespace diag

DiagnosticBuilder::~DiagnosticBuilder() {
  if (Engine)
    Engine->emit(std::move(D), Args);
}

DiagnosticBuilder DiagnosticsEngine::report(SourceLocation Loc,
                                            diag::DiagID ID) {
  Diagnostic D;
  D.ID = ID;
  D.Sev = diag::getSeverity(ID);
  D.Loc = Loc;
  return DiagnosticBuilder(this, std::move(D));
}

std::string
DiagnosticsEngine::formatDiagnostic(const char *Format,
                                    const std::vector<std::string> &Args) {
  std::string Out;
  for (const char *P = Format; *P; ++P) {
    if (*P == '%' && P[1] >= '0' && P[1] <= '9') {
      unsigned Index = static_cast<unsigned>(P[1] - '0');
      if (Index < Args.size())
        Out += Args[Index];
      else
        Out += "<missing-arg>";
      ++P;
    } else {
      Out += *P;
    }
  }
  return Out;
}

void DiagnosticsEngine::emit(Diagnostic D,
                             const std::vector<std::string> &Args) {
  D.Message = formatDiagnostic(diag::getFormatString(D.ID), Args);

  // Transformed-AST location policy (paper section 2): retarget diagnostics
  // that point nowhere (into shadow AST nodes synthesized without a usable
  // location) at the representative location of the literal loop.
  bool Remapped = false;
  if (!RemapStack.empty() && !EmittingRemapNote && D.Loc.isInvalid() &&
      D.Sev >= diag::Severity::Warning) {
    D.Loc = RemapStack.back().RepresentativeLoc;
    Remapped = true;
  }

  // Warning-control flags (-w / -Werror). Notes never stand alone: when -w
  // drops a warning, the notes that follow it are dropped too.
  if (D.Sev == diag::Severity::Warning) {
    if (SuppressAllWarnings) {
      SuppressingAttachedNotes = true;
      return;
    }
    if (WarningsAsErrors)
      D.Sev = diag::Severity::Error;
  }
  if (D.Sev == diag::Severity::Note) {
    if (SuppressingAttachedNotes)
      return;
  } else {
    SuppressingAttachedNotes = false;
  }

  switch (D.Sev) {
  case diag::Severity::Error:
    ++NumErrors;
    break;
  case diag::Severity::Warning:
    ++NumWarnings;
    break;
  case diag::Severity::Remark:
    ++NumRemarks;
    break;
  default:
    break;
  }

  if (Consumer)
    Consumer->handleDiagnostic(D);

  // Explain the transformation history with a note, analogous to the
  // "in instantiation of template ..." notes for templates.
  if (Remapped) {
    EmittingRemapNote = true;
    report(RemapStack.back().RepresentativeLoc, diag::note_omp_transformed_here)
        << RemapStack.back().TransformName;
    EmittingRemapNote = false;
  }
}

void TextDiagnosticPrinter::handleDiagnostic(const Diagnostic &D) {
  const char *SevStr = "";
  switch (D.Sev) {
  case diag::Severity::Error:
    SevStr = "error";
    break;
  case diag::Severity::Warning:
    SevStr = "warning";
    break;
  case diag::Severity::Note:
    SevStr = "note";
    break;
  case diag::Severity::Remark:
    SevStr = "remark";
    break;
  case diag::Severity::Ignored:
    return;
  }

  if (SM && D.Loc.isValid()) {
    PresumedLoc P = SM->getPresumedLoc(D.Loc);
    if (P.isValid()) {
      Out += P.Filename;
      Out += ':';
      Out += std::to_string(P.Line);
      Out += ':';
      Out += std::to_string(P.Column);
      Out += ": ";
      Out += SevStr;
      Out += ": ";
      Out += D.Message;
      Out += '\n';
      // Caret line.
      std::string_view LineText = SM->getLineText(D.Loc);
      Out += LineText;
      Out += '\n';
      for (unsigned I = 1; I < P.Column; ++I)
        Out += (I - 1 < LineText.size() && LineText[I - 1] == '\t') ? '\t'
                                                                    : ' ';
      Out += "^\n";
      return;
    }
  }
  Out += SevStr;
  Out += ": ";
  Out += D.Message;
  Out += '\n';
}

} // namespace mcc
