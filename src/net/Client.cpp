//===--- Client.cpp - Compile-daemon client --------------------------------===//
#include "net/Client.h"

namespace mcc::net {

bool Client::connect(const std::string &SocketPath, std::string &Error) {
  Sock = Socket::connectUnix(SocketPath, Error);
  return Sock.valid();
}

bool Client::sendMsg(MsgType Type, std::uint64_t JobId, std::string Payload) {
  if (!Sock.valid())
    return false;
  Frame F;
  F.Type = Type;
  F.JobId = JobId;
  F.Payload = std::move(Payload);
  std::string Bytes = encodeFrame(F);
  return Sock.sendAll(Bytes.data(), Bytes.size());
}

bool Client::submit(std::uint64_t JobId, const std::string &Path,
                    const std::string &Flags, const std::string &Source) {
  SubmitMsg M;
  M.Path = Path;
  M.Flags = Flags;
  M.Source = Source;
  return sendMsg(MsgType::Submit, JobId, encodeSubmit(M));
}

bool Client::cancel(std::uint64_t JobId) {
  return sendMsg(MsgType::Cancel, JobId, std::string());
}

bool Client::requestStats(bool JSON) {
  StatsMsg M;
  M.JSON = JSON;
  return sendMsg(MsgType::Stats, 0, encodeStats(M));
}

bool Client::requestShutdown() {
  return sendMsg(MsgType::Shutdown, 0, std::string());
}

bool Client::next(ClientEvent &Ev, std::string &Error) {
  Error.clear();
  for (;;) {
    if (std::optional<Frame> F = Decoder.next(Error)) {
      Ev = ClientEvent();
      Ev.Type = F->Type;
      Ev.JobId = F->JobId;
      switch (F->Type) {
      case MsgType::Result:
        if (!decodeResult(F->Payload, Ev.Result)) {
          Error = "undecodable result payload";
          return false;
        }
        return true;
      case MsgType::Reject:
        if (!decodeReject(F->Payload, Ev.Reject)) {
          Error = "undecodable reject payload";
          return false;
        }
        return true;
      case MsgType::StatsReply:
        if (!decodeStatsReply(F->Payload, Ev.Text)) {
          Error = "undecodable stats payload";
          return false;
        }
        return true;
      case MsgType::ShutdownAck:
        return true;
      default:
        Error = "unexpected frame type from server";
        return false;
      }
    }
    if (!Error.empty())
      return false;
    char Buf[64 << 10];
    long N = Sock.recvSome(Buf, sizeof(Buf));
    if (N < 0) {
      Error = "recv failed";
      return false;
    }
    if (N == 0)
      return false; // orderly close; Error stays empty
    Decoder.append(Buf, static_cast<std::size_t>(N));
  }
}

} // namespace mcc::net
