//===--- Protocol.h - Compile-daemon wire protocol -------------*- C++ -*-===//
//
// The framed protocol spoken between minicc-serve's daemon mode and its
// clients over a Unix-domain socket. Deliberately small: length-prefixed
// binary frames with little-endian fixed-width integers and u32-prefixed
// strings — no delimiters to escape, no partial-parse states.
//
// Frame layout (on the wire):
//
//   u32 Length     bytes that follow this field (Type + JobId + payload)
//   u8  Type       MsgType
//   u64 JobId      client-chosen correlation id (0 for control verbs)
//   ..  payload    per-type, see the Msg structs below
//
// Verbs:
//   Submit      C->S  one compile job: path, flag words, source bytes
//   Result      S->C  verdict for a Submit (status, trace, exit, diags)
//   Reject      S->C  typed admission refusal (busy/quota/malformed/
//                     shutting-down) with a retry-after hint
//   Cancel      C->S  best-effort: pending jobs are dropped, running
//                     jobs complete but report Cancelled
//   Stats       C->S  request a statistics snapshot (text or JSON)
//   StatsReply  S->C  the rendered snapshot
//   Shutdown    C->S  ask the daemon to drain and exit
//   ShutdownAck S->C  shutdown accepted (drain has begun)
//
// Job options travel as the same flag words the job-file grammar uses
// (service/JobSpec.h), so socket jobs and file jobs cannot diverge in
// option semantics.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_NET_PROTOCOL_H
#define MCC_NET_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>

namespace mcc::net {

enum class MsgType : std::uint8_t {
  Submit = 1,
  Result = 2,
  Reject = 3,
  Cancel = 4,
  Stats = 5,
  StatsReply = 6,
  Shutdown = 7,
  ShutdownAck = 8,
};

enum class ResultStatus : std::uint8_t {
  Ok = 0,          ///< compiled (and ran, if requested) cleanly
  CompileFail = 1, ///< deterministic compile failure (diagnostics attached)
  Cancelled = 2,   ///< cancelled before or during execution
  InternalError = 3,
};

enum class RejectCode : std::uint8_t {
  Busy = 1,         ///< admission queue full; retry after RetryAfterMs
  Quota = 2,        ///< per-client in-flight quota exceeded
  Malformed = 3,    ///< unparseable submit payload / unknown flag
  ShuttingDown = 4, ///< daemon is draining; no new work
};

/// Which cache tier served the compile (the daemon analogue of
/// CacheTrace; Disk = warm-from-disk after a restart).
enum class TraceLevel : std::uint8_t {
  Cold = 0,
  L1 = 1,
  L2 = 2,
  L3 = 3,
  Disk = 4,
};

/// Frames larger than this are a protocol violation and close the
/// connection (64 MiB: far above any real source + diagnostics).
inline constexpr std::uint32_t MaxFrameBytes = 64u << 20;

struct Frame {
  MsgType Type = MsgType::Submit;
  std::uint64_t JobId = 0;
  std::string Payload;
};

struct SubmitMsg {
  std::string Path;  ///< registration path (cosmetic, see CompileJob)
  std::string Flags; ///< space-separated job flag words
  std::string Source;
};

struct ResultMsg {
  ResultStatus Status = ResultStatus::Ok;
  bool Executed = false;
  TraceLevel Trace = TraceLevel::Cold;
  std::int64_t ExitValue = 0;
  std::string Diagnostics;
};

struct RejectMsg {
  RejectCode Code = RejectCode::Busy;
  std::uint32_t RetryAfterMs = 0;
  std::string Message;
};

struct StatsMsg {
  bool JSON = false;
};

//===----------------------------------------------------------------------===//
// Payload (de)serialization. Encoders never fail; decoders return false
// on any truncation, trailing garbage, or out-of-range enum — a decode
// failure is a protocol violation, not a job failure.
//===----------------------------------------------------------------------===//

std::string encodeSubmit(const SubmitMsg &M);
std::string encodeResult(const ResultMsg &M);
std::string encodeReject(const RejectMsg &M);
std::string encodeStats(const StatsMsg &M);
std::string encodeStatsReply(const std::string &Text);

bool decodeSubmit(const std::string &Payload, SubmitMsg &M);
bool decodeResult(const std::string &Payload, ResultMsg &M);
bool decodeReject(const std::string &Payload, RejectMsg &M);
bool decodeStats(const std::string &Payload, StatsMsg &M);
bool decodeStatsReply(const std::string &Payload, std::string &Text);

/// Serializes a whole frame, length prefix included.
std::string encodeFrame(const Frame &F);

/// Incremental frame decoder over a byte buffer (append() whatever the
/// socket produced, then drain next() until nullopt). Detects oversized
/// frames and unknown types as hard errors.
class FrameDecoder {
public:
  void append(const char *Data, std::size_t N) { Buf.append(Data, N); }
  /// Returns the next complete frame, nullopt if more bytes are needed.
  /// Sets \p Error (and returns nullopt forever after) on a violation.
  std::optional<Frame> next(std::string &Error);

private:
  std::string Buf;
  bool Broken = false;
};

const char *resultStatusName(ResultStatus S);
const char *rejectCodeName(RejectCode C);
const char *traceLevelName(TraceLevel T);

} // namespace mcc::net

#endif // MCC_NET_PROTOCOL_H
