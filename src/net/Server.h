//===--- Server.h - Multi-tenant compile daemon ----------------*- C++ -*-===//
//
// The socket front end over a CompileService: accepts Unix-domain
// connections, speaks the framed protocol (net/Protocol.h), and stands
// between greedy clients and the shared worker pool with three layers of
// admission control:
//
//  * Bounded accept queue. At most MaxPendingJobs admitted-but-undis-
//    patched jobs exist across all clients; past that, submits are
//    rejected with a typed Busy + retry-after hint instead of queueing
//    unboundedly (backpressure the client can act on).
//
//  * Per-client in-flight quota. A single connection may have at most
//    PerClientInFlight jobs pending+running; the quota rejects (typed
//    Quota) rather than silently serializing, so a misbehaving client
//    sees its own misbehaviour.
//
//  * Fair round-robin draining. Admitted jobs sit in per-connection
//    queues; a cursor hands them to the service pool one per client per
//    turn, so one client with 200 queued jobs cannot starve a client
//    with 1. The number of jobs released into the pool at once is capped
//    (2x workers) — fairness is enforced here, not in the pool's FIFO.
//
// Threading: one accept thread, one reader thread per connection, and
// completion callbacks on the service's worker threads. ServerMutex
// guards admission state; socket writes serialize on a per-connection
// mutex and never happen under ServerMutex.
//
// Graceful shutdown (SIGINT/SIGTERM or the shutdown verb): new submits
// are rejected ShuttingDown, already-admitted jobs drain through the
// pool and their results are delivered, then connections close. The
// caller (minicc-serve) then shuts the service down — which flushes the
// disk store index — and prints final stats.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_NET_SERVER_H
#define MCC_NET_SERVER_H

#include "net/Protocol.h"
#include "net/Socket.h"
#include "service/CompileService.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

namespace mcc::net {

struct ServerOptions {
  std::string SocketPath;
  /// Bounded accept queue: max admitted-but-undispatched jobs, total.
  unsigned MaxPendingJobs = 256;
  /// Per-connection in-flight (pending + dispatched) quota.
  unsigned PerClientInFlight = 32;
  /// Retry hint attached to Busy rejections.
  unsigned RetryAfterMs = 20;
  /// Jobs released into the service pool at once; 0 = 2x service workers.
  unsigned MaxDispatched = 0;
};

struct ServerStatsSnapshot {
  std::uint64_t Connections = 0;
  std::uint64_t Accepted = 0;  ///< jobs admitted
  std::uint64_t Completed = 0; ///< results delivered (incl. cancelled)
  std::uint64_t Cancelled = 0;
  std::uint64_t RejectedBusy = 0;
  std::uint64_t RejectedQuota = 0;
  std::uint64_t RejectedMalformed = 0;
  std::uint64_t RejectedShutdown = 0;
  std::uint64_t PendingNow = 0;    ///< gauge
  std::uint64_t DispatchedNow = 0; ///< gauge
};

class Server {
public:
  Server(svc::CompileService &Service, ServerOptions Opts);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and starts the accept thread.
  bool start(std::string &Error);

  /// Begins a graceful drain (idempotent, thread-safe; also triggered by
  /// the protocol's shutdown verb).
  void requestShutdown();
  [[nodiscard]] bool shutdownRequested() const {
    return ShutdownFlag.load(std::memory_order_acquire);
  }
  /// Blocks until requestShutdown() (from any source) or \p TimeoutMs.
  /// Returns shutdownRequested().
  bool waitForShutdownRequest(int TimeoutMs = -1);

  /// Drains admitted jobs, delivers their results, closes connections and
  /// joins all threads. Idempotent; also run by the destructor.
  void shutdown();

  [[nodiscard]] ServerStatsSnapshot statsSnapshot() const;
  /// Combined service + daemon statistics (the stats verb / final dump).
  [[nodiscard]] std::string renderStats(bool JSON) const;

  [[nodiscard]] const ServerOptions &getOptions() const { return Opts; }

private:
  struct PendingJob {
    std::uint64_t JobId;
    svc::CompileJob Job;
  };

  struct Connection {
    Socket Sock;
    std::mutex WriteMutex;
    std::thread Reader;
    // --- guarded by Server::M ---
    std::deque<PendingJob> Pending;
    std::unordered_set<std::uint64_t> Dispatched;
    std::unordered_set<std::uint64_t> CancelledInFlight;
    unsigned InFlight = 0; ///< Pending.size() + Dispatched.size()
    bool Open = true;
  };

  void acceptLoop();
  void readerLoop(const std::shared_ptr<Connection> &C);
  void handleFrame(const std::shared_ptr<Connection> &C, Frame F);
  void handleSubmit(const std::shared_ptr<Connection> &C, Frame F);
  void handleCancel(const std::shared_ptr<Connection> &C, std::uint64_t JobId);
  /// Releases pending jobs into the pool, round-robin across connections,
  /// until the dispatch cap is reached. Caller holds M.
  void pumpLocked();
  void onJobDone(const std::shared_ptr<Connection> &C, std::uint64_t JobId,
                 const svc::CompileResult &R);
  void sendFrame(const std::shared_ptr<Connection> &C, MsgType Type,
                 std::uint64_t JobId, std::string Payload);
  unsigned dispatchCap() const;

  svc::CompileService &Service;
  ServerOptions Opts;

  Socket Listener;
  std::thread AcceptThread;
  std::atomic<bool> StopAccepting{false};
  std::atomic<bool> ShutdownFlag{false};
  std::mutex ShutdownMutex;
  std::condition_variable ShutdownCV;
  bool ShutdownDone = false; ///< guarded by ShutdownMutex

  mutable std::mutex M;
  std::vector<std::shared_ptr<Connection>> Connections;
  std::size_t RRCursor = 0;
  unsigned TotalPending = 0;
  unsigned TotalDispatched = 0;
  std::condition_variable DrainCV;
  bool Draining = false; ///< submits rejected; guarded by M

  std::atomic<std::uint64_t> StatConnections{0};
  std::atomic<std::uint64_t> StatAccepted{0};
  std::atomic<std::uint64_t> StatCompleted{0};
  std::atomic<std::uint64_t> StatCancelled{0};
  std::atomic<std::uint64_t> StatRejectedBusy{0};
  std::atomic<std::uint64_t> StatRejectedQuota{0};
  std::atomic<std::uint64_t> StatRejectedMalformed{0};
  std::atomic<std::uint64_t> StatRejectedShutdown{0};
};

} // namespace mcc::net

#endif // MCC_NET_SERVER_H
