//===--- Server.cpp - Multi-tenant compile daemon --------------------------===//
#include "net/Server.h"

#include "service/JobSpec.h"
#include "support/JSONWriter.h"

#include <algorithm>
#include <chrono>

#include <unistd.h>

namespace mcc::net {

Server::Server(svc::CompileService &Service, ServerOptions O)
    : Service(Service), Opts(std::move(O)) {}

Server::~Server() { shutdown(); }

unsigned Server::dispatchCap() const {
  if (Opts.MaxDispatched)
    return Opts.MaxDispatched;
  return 2 * std::max(1u, Service.getOptions().NumWorkers);
}

bool Server::start(std::string &Error) {
  Listener = Socket::listenUnix(Opts.SocketPath, /*Backlog=*/64, Error);
  if (!Listener.valid())
    return false;
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

//===----------------------------------------------------------------------===//
// Accept / read
//===----------------------------------------------------------------------===//

void Server::acceptLoop() {
  while (!StopAccepting.load(std::memory_order_acquire)) {
    // Short poll so a shutdown request is observed promptly even with no
    // connection traffic.
    if (!Listener.pollReadable(/*TimeoutMs=*/100))
      continue;
    Socket Conn = Listener.accept();
    if (!Conn.valid())
      continue;
    auto C = std::make_shared<Connection>();
    C->Sock = std::move(Conn);
    StatConnections.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(M);
    C->Reader = std::thread([this, C] { readerLoop(C); });
    Connections.push_back(C);
  }
}

void Server::readerLoop(const std::shared_ptr<Connection> &C) {
  FrameDecoder Decoder;
  char Buf[64 << 10];
  for (;;) {
    long N = C->Sock.recvSome(Buf, sizeof(Buf));
    if (N <= 0)
      break;
    Decoder.append(Buf, static_cast<std::size_t>(N));
    std::string Error;
    while (auto F = Decoder.next(Error))
      handleFrame(C, std::move(*F));
    if (!Error.empty())
      break; // protocol violation: drop the connection
  }
  // Client gone: abandon its queued jobs (results have nowhere to go).
  // Jobs already in the pool complete; onJobDone sees Open=false and
  // discards the result.
  std::lock_guard<std::mutex> Lock(M);
  C->Open = false;
  TotalPending -= static_cast<unsigned>(C->Pending.size());
  C->InFlight -= static_cast<unsigned>(C->Pending.size());
  C->Pending.clear();
  if (TotalPending == 0 && TotalDispatched == 0)
    DrainCV.notify_all();
}

//===----------------------------------------------------------------------===//
// Frame handling
//===----------------------------------------------------------------------===//

void Server::sendFrame(const std::shared_ptr<Connection> &C, MsgType Type,
                       std::uint64_t JobId, std::string Payload) {
  Frame F;
  F.Type = Type;
  F.JobId = JobId;
  F.Payload = std::move(Payload);
  std::string Bytes = encodeFrame(F);
  std::lock_guard<std::mutex> Lock(C->WriteMutex);
  C->Sock.sendAll(Bytes.data(), Bytes.size());
}

void Server::handleFrame(const std::shared_ptr<Connection> &C, Frame F) {
  switch (F.Type) {
  case MsgType::Submit:
    handleSubmit(C, std::move(F));
    return;
  case MsgType::Cancel:
    handleCancel(C, F.JobId);
    return;
  case MsgType::Stats: {
    StatsMsg S;
    bool JSON = decodeStats(F.Payload, S) && S.JSON;
    sendFrame(C, MsgType::StatsReply, F.JobId,
              encodeStatsReply(renderStats(JSON)));
    return;
  }
  case MsgType::Shutdown:
    sendFrame(C, MsgType::ShutdownAck, F.JobId, std::string());
    requestShutdown();
    return;
  default:
    // Server-to-client types arriving at the server: ignore rather than
    // kill the connection (a lenient reader keeps version skew debuggable).
    return;
  }
}

void Server::handleSubmit(const std::shared_ptr<Connection> &C, Frame F) {
  auto Reject = [&](RejectCode Code, std::uint32_t RetryMs,
                    std::string Msg) {
    RejectMsg R;
    R.Code = Code;
    R.RetryAfterMs = RetryMs;
    R.Message = std::move(Msg);
    sendFrame(C, MsgType::Reject, F.JobId, encodeReject(R));
  };

  SubmitMsg Sub;
  if (!decodeSubmit(F.Payload, Sub)) {
    StatRejectedMalformed.fetch_add(1, std::memory_order_relaxed);
    Reject(RejectCode::Malformed, 0, "undecodable submit payload");
    return;
  }
  svc::CompileJob Job;
  Job.Path = Sub.Path.empty() ? "input.c" : Sub.Path;
  Job.Source = std::move(Sub.Source);
  for (const std::string &W : svc::splitJobWords(Sub.Flags)) {
    std::string Error;
    if (!svc::parseJobFlagWord(W, Job, Error)) {
      StatRejectedMalformed.fetch_add(1, std::memory_order_relaxed);
      Reject(RejectCode::Malformed, 0, Error);
      return;
    }
  }

  {
    std::lock_guard<std::mutex> Lock(M);
    if (Draining) {
      StatRejectedShutdown.fetch_add(1, std::memory_order_relaxed);
      Reject(RejectCode::ShuttingDown, 0, "daemon is draining");
      return;
    }
    if (C->Dispatched.count(F.JobId) ||
        std::any_of(C->Pending.begin(), C->Pending.end(),
                    [&](const PendingJob &P) { return P.JobId == F.JobId; })) {
      StatRejectedMalformed.fetch_add(1, std::memory_order_relaxed);
      Reject(RejectCode::Malformed, 0, "duplicate job id in flight");
      return;
    }
    if (C->InFlight >= Opts.PerClientInFlight) {
      StatRejectedQuota.fetch_add(1, std::memory_order_relaxed);
      Reject(RejectCode::Quota, Opts.RetryAfterMs,
             "per-client in-flight quota (" +
                 std::to_string(Opts.PerClientInFlight) + ") exceeded");
      return;
    }
    if (TotalPending >= Opts.MaxPendingJobs) {
      StatRejectedBusy.fetch_add(1, std::memory_order_relaxed);
      Reject(RejectCode::Busy, Opts.RetryAfterMs,
             "admission queue full (" + std::to_string(Opts.MaxPendingJobs) +
                 " jobs)");
      return;
    }
    C->Pending.push_back({F.JobId, std::move(Job)});
    ++C->InFlight;
    ++TotalPending;
    StatAccepted.fetch_add(1, std::memory_order_relaxed);
    pumpLocked();
  }
}

void Server::handleCancel(const std::shared_ptr<Connection> &C,
                          std::uint64_t JobId) {
  bool SendCancelled = false;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = std::find_if(C->Pending.begin(), C->Pending.end(),
                           [&](const PendingJob &P) { return P.JobId == JobId; });
    if (It != C->Pending.end()) {
      // Not yet dispatched: the job simply never runs.
      C->Pending.erase(It);
      --C->InFlight;
      --TotalPending;
      SendCancelled = true;
      StatCancelled.fetch_add(1, std::memory_order_relaxed);
      if (TotalPending == 0 && TotalDispatched == 0)
        DrainCV.notify_all();
    } else if (C->Dispatched.count(JobId)) {
      // Already compiling: the compile completes (it is shared, cached
      // work), but this client's result is reported Cancelled.
      C->CancelledInFlight.insert(JobId);
      StatCancelled.fetch_add(1, std::memory_order_relaxed);
    }
    // Unknown/already-completed ids are ignored: the result (or nothing)
    // was already sent and a late Cancel must not confuse the stream.
  }
  if (SendCancelled) {
    ResultMsg R;
    R.Status = ResultStatus::Cancelled;
    sendFrame(C, MsgType::Result, JobId, encodeResult(R));
  }
}

//===----------------------------------------------------------------------===//
// Dispatch (fair round-robin) and completion
//===----------------------------------------------------------------------===//

void Server::pumpLocked() {
  const unsigned Cap = dispatchCap();
  while (TotalDispatched < Cap && TotalPending > 0 && !Connections.empty()) {
    // One job per client per turn: the cursor remembers whose turn it is
    // across pump calls, so bursts from one client interleave with
    // everyone else's queue.
    std::size_t Scanned = 0;
    std::shared_ptr<Connection> Next;
    while (Scanned < Connections.size()) {
      std::shared_ptr<Connection> &Cand =
          Connections[RRCursor % Connections.size()];
      RRCursor = (RRCursor + 1) % std::max<std::size_t>(1, Connections.size());
      ++Scanned;
      if (Cand->Open && !Cand->Pending.empty()) {
        Next = Cand;
        break;
      }
    }
    if (!Next)
      return; // pending jobs all belong to closed connections (impossible
              // by invariant, but keep the loop safe)
    PendingJob PJ = std::move(Next->Pending.front());
    Next->Pending.pop_front();
    --TotalPending;
    ++TotalDispatched;
    Next->Dispatched.insert(PJ.JobId);
    const std::uint64_t JobId = PJ.JobId;
    Service.enqueueAsync(std::move(PJ.Job),
                         [this, Next, JobId](const svc::CompileResult &R) {
                           onJobDone(Next, JobId, R);
                         });
  }
}

void Server::onJobDone(const std::shared_ptr<Connection> &C,
                       std::uint64_t JobId, const svc::CompileResult &R) {
  bool Deliver = false;
  bool Cancelled = false;
  {
    std::lock_guard<std::mutex> Lock(M);
    --TotalDispatched;
    C->Dispatched.erase(JobId);
    --C->InFlight;
    Cancelled = C->CancelledInFlight.erase(JobId) > 0;
    Deliver = C->Open;
    StatCompleted.fetch_add(1, std::memory_order_relaxed);
    pumpLocked();
    if (TotalPending == 0 && TotalDispatched == 0)
      DrainCV.notify_all();
  }
  if (!Deliver)
    return;
  ResultMsg Msg;
  if (Cancelled)
    Msg.Status = ResultStatus::Cancelled;
  else
    Msg.Status = R.Succeeded ? ResultStatus::Ok : ResultStatus::CompileFail;
  Msg.Executed = R.Executed;
  Msg.ExitValue = R.ExitValue;
  Msg.Diagnostics = R.Diagnostics;
  if (R.Trace.DiskHit)
    Msg.Trace = TraceLevel::Disk;
  else if (R.Trace.L3Hit)
    Msg.Trace = TraceLevel::L3;
  else if (R.Trace.L2Hit)
    Msg.Trace = TraceLevel::L2;
  else if (R.Trace.L1Hit)
    Msg.Trace = TraceLevel::L1;
  else
    Msg.Trace = TraceLevel::Cold;
  sendFrame(C, MsgType::Result, JobId, encodeResult(Msg));
}

//===----------------------------------------------------------------------===//
// Shutdown
//===----------------------------------------------------------------------===//

void Server::requestShutdown() {
  ShutdownFlag.store(true, std::memory_order_release);
  ShutdownCV.notify_all();
}

bool Server::waitForShutdownRequest(int TimeoutMs) {
  std::unique_lock<std::mutex> Lock(ShutdownMutex);
  auto Requested = [this] { return shutdownRequested(); };
  if (TimeoutMs < 0)
    ShutdownCV.wait(Lock, Requested);
  else
    ShutdownCV.wait_for(Lock, std::chrono::milliseconds(TimeoutMs), Requested);
  return shutdownRequested();
}

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(ShutdownMutex);
    if (ShutdownDone)
      return;
    ShutdownDone = true;
  }
  requestShutdown();

  // 1. No new connections. Unlink the socket path too: a stale file would
  //    make a restarting daemon's clients poll a dead socket (ECONNREFUSED)
  //    instead of waiting for the new bind.
  StopAccepting.store(true, std::memory_order_release);
  if (AcceptThread.joinable())
    AcceptThread.join();
  Listener.close();
  ::unlink(Opts.SocketPath.c_str());

  // 2. No new admissions; drain what was admitted. Readers stay alive so
  //    clients receive their remaining results (and cancels/stats still
  //    work during the drain).
  std::vector<std::shared_ptr<Connection>> Conns;
  {
    std::unique_lock<std::mutex> Lock(M);
    Draining = true;
    pumpLocked();
    DrainCV.wait(Lock, [this] {
      return TotalPending == 0 && TotalDispatched == 0;
    });
    Conns = Connections;
  }

  // 3. Close connections and join their readers.
  for (auto &C : Conns)
    C->Sock.shutdownBoth();
  for (auto &C : Conns)
    if (C->Reader.joinable())
      C->Reader.join();
  {
    std::lock_guard<std::mutex> Lock(M);
    Connections.clear();
  }
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

ServerStatsSnapshot Server::statsSnapshot() const {
  ServerStatsSnapshot S;
  S.Connections = StatConnections.load(std::memory_order_relaxed);
  S.Accepted = StatAccepted.load(std::memory_order_relaxed);
  S.Completed = StatCompleted.load(std::memory_order_relaxed);
  S.Cancelled = StatCancelled.load(std::memory_order_relaxed);
  S.RejectedBusy = StatRejectedBusy.load(std::memory_order_relaxed);
  S.RejectedQuota = StatRejectedQuota.load(std::memory_order_relaxed);
  S.RejectedMalformed = StatRejectedMalformed.load(std::memory_order_relaxed);
  S.RejectedShutdown = StatRejectedShutdown.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(M);
  S.PendingNow = TotalPending;
  S.DispatchedNow = TotalDispatched;
  return S;
}

std::string Server::renderStats(bool JSON) const {
  ServerStatsSnapshot S = statsSnapshot();
  if (!JSON) {
    std::string Out = Service.renderStats();
    Out += "== compile daemon ==\n";
    char Buf[512];
    std::snprintf(Buf, sizeof(Buf),
                  "connections=%llu accepted=%llu completed=%llu "
                  "cancelled=%llu pending=%llu dispatched=%llu\n"
                  "rejected: busy=%llu quota=%llu malformed=%llu "
                  "shutdown=%llu\n",
                  static_cast<unsigned long long>(S.Connections),
                  static_cast<unsigned long long>(S.Accepted),
                  static_cast<unsigned long long>(S.Completed),
                  static_cast<unsigned long long>(S.Cancelled),
                  static_cast<unsigned long long>(S.PendingNow),
                  static_cast<unsigned long long>(S.DispatchedNow),
                  static_cast<unsigned long long>(S.RejectedBusy),
                  static_cast<unsigned long long>(S.RejectedQuota),
                  static_cast<unsigned long long>(S.RejectedMalformed),
                  static_cast<unsigned long long>(S.RejectedShutdown));
    Out += Buf;
    return Out;
  }

  std::string ServiceJSON = Service.renderStatsJSON();
  while (!ServiceJSON.empty() && ServiceJSON.back() == '\n')
    ServiceJSON.pop_back();
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.key("service");
  W.rawValue(ServiceJSON);
  W.key("daemon");
  W.beginObject();
  W.field("connections", S.Connections);
  W.field("accepted", S.Accepted);
  W.field("completed", S.Completed);
  W.field("cancelled", S.Cancelled);
  W.field("pending", S.PendingNow);
  W.field("dispatched", S.DispatchedNow);
  W.field("rejected_busy", S.RejectedBusy);
  W.field("rejected_quota", S.RejectedQuota);
  W.field("rejected_malformed", S.RejectedMalformed);
  W.field("rejected_shutdown", S.RejectedShutdown);
  W.endObject();
  W.endObject();
  Out += '\n';
  return Out;
}

} // namespace mcc::net
