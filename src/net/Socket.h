//===--- Socket.h - RAII Unix-domain sockets -------------------*- C++ -*-===//
//
// Thin POSIX wrappers used by the daemon and client: listen/accept/
// connect over AF_UNIX, whole-buffer send/recv (EINTR-retrying), and a
// poll-with-timeout so the accept loop can observe shutdown requests.
// SIGPIPE is suppressed per-send (MSG_NOSIGNAL) so a vanished peer is an
// error return, never a process kill.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_NET_SOCKET_H
#define MCC_NET_SOCKET_H

#include <cstddef>
#include <string>

namespace mcc::net {

class Socket {
public:
  Socket() = default;
  explicit Socket(int FD) : FD(FD) {}
  ~Socket() { close(); }
  Socket(Socket &&O) noexcept : FD(O.FD) { O.FD = -1; }
  Socket &operator=(Socket &&O) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  /// Binds and listens on \p Path (unlinking a stale socket file first).
  static Socket listenUnix(const std::string &Path, int Backlog,
                           std::string &Error);
  /// Connects to a listening daemon at \p Path.
  static Socket connectUnix(const std::string &Path, std::string &Error);

  [[nodiscard]] bool valid() const { return FD >= 0; }
  [[nodiscard]] int fd() const { return FD; }

  /// Accepts one connection; invalid socket on error/timeout handling is
  /// the caller's (pair with pollReadable on the listen fd).
  Socket accept();

  /// Sends the whole buffer; false on any error (including EPIPE).
  bool sendAll(const void *Data, std::size_t N);
  /// Receives up to \p N bytes (one recv); 0 = orderly peer close,
  /// negative = error.
  long recvSome(void *Data, std::size_t N);

  /// True when the fd becomes readable within \p TimeoutMs (-1 = wait
  /// forever); false on timeout or error.
  bool pollReadable(int TimeoutMs) const;

  /// Half-closes both directions — unblocks a thread parked in recv.
  void shutdownBoth();
  void close();

private:
  int FD = -1;
};

} // namespace mcc::net

#endif // MCC_NET_SOCKET_H
