//===--- Socket.cpp - RAII Unix-domain sockets -----------------------------===//
#include "net/Socket.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mcc::net {

Socket &Socket::operator=(Socket &&O) noexcept {
  if (this != &O) {
    close();
    FD = O.FD;
    O.FD = -1;
  }
  return *this;
}

void Socket::close() {
  if (FD >= 0) {
    ::close(FD);
    FD = -1;
  }
}

void Socket::shutdownBoth() {
  if (FD >= 0)
    ::shutdown(FD, SHUT_RDWR);
}

namespace {

bool fillUnixAddr(const std::string &Path, sockaddr_un &Addr,
                  std::string &Error) {
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + Path;
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

Socket Socket::listenUnix(const std::string &Path, int Backlog,
                          std::string &Error) {
  sockaddr_un Addr;
  if (!fillUnixAddr(Path, Addr, Error))
    return Socket();
  int FD = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (FD < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return Socket();
  }
  // A previous daemon's socket file would make bind fail with EADDRINUSE;
  // the file is only a rendezvous name, safe to reclaim.
  ::unlink(Path.c_str());
  if (::bind(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "bind " + Path + ": " + std::strerror(errno);
    ::close(FD);
    return Socket();
  }
  if (::listen(FD, Backlog) < 0) {
    Error = "listen " + Path + ": " + std::strerror(errno);
    ::close(FD);
    return Socket();
  }
  return Socket(FD);
}

Socket Socket::connectUnix(const std::string &Path, std::string &Error) {
  sockaddr_un Addr;
  if (!fillUnixAddr(Path, Addr, Error))
    return Socket();
  int FD = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (FD < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return Socket();
  }
  if (::connect(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "connect " + Path + ": " + std::strerror(errno);
    ::close(FD);
    return Socket();
  }
  return Socket(FD);
}

Socket Socket::accept() {
  for (;;) {
    int C = ::accept4(FD, nullptr, nullptr, SOCK_CLOEXEC);
    if (C >= 0)
      return Socket(C);
    if (errno != EINTR)
      return Socket();
  }
}

bool Socket::sendAll(const void *Data, std::size_t N) {
  const char *P = static_cast<const char *>(Data);
  while (N > 0) {
    long W = ::send(FD, P, N, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += W;
    N -= static_cast<std::size_t>(W);
  }
  return true;
}

long Socket::recvSome(void *Data, std::size_t N) {
  for (;;) {
    long R = ::recv(FD, Data, N, 0);
    if (R >= 0 || errno != EINTR)
      return R;
  }
}

bool Socket::pollReadable(int TimeoutMs) const {
  pollfd PFD{FD, POLLIN, 0};
  for (;;) {
    int R = ::poll(&PFD, 1, TimeoutMs);
    if (R > 0)
      return (PFD.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    if (R == 0)
      return false;
    if (errno != EINTR)
      return false;
  }
}

} // namespace mcc::net
