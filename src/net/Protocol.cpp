//===--- Protocol.cpp - Compile-daemon wire protocol -----------------------===//
#include "net/Protocol.h"

#include <cstring>

namespace mcc::net {

namespace {

void putU32(std::string &Out, std::uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (I * 8)) & 0xff));
}

void putU64(std::string &Out, std::uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (I * 8)) & 0xff));
}

void putStr(std::string &Out, const std::string &S) {
  putU32(Out, static_cast<std::uint32_t>(S.size()));
  Out += S;
}

/// Bounds-checked sequential reader over a payload.
class Reader {
public:
  explicit Reader(const std::string &Bytes) : P(Bytes.data()), N(Bytes.size()) {}

  bool u8(std::uint8_t &V) {
    if (Pos + 1 > N)
      return false;
    V = static_cast<std::uint8_t>(P[Pos++]);
    return true;
  }
  bool u32(std::uint32_t &V) {
    if (Pos + 4 > N)
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<std::uint32_t>(static_cast<unsigned char>(P[Pos + I]))
           << (I * 8);
    Pos += 4;
    return true;
  }
  bool u64(std::uint64_t &V) {
    if (Pos + 8 > N)
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<std::uint64_t>(static_cast<unsigned char>(P[Pos + I]))
           << (I * 8);
    Pos += 8;
    return true;
  }
  bool str(std::string &S) {
    std::uint32_t Len;
    if (!u32(Len) || Pos + Len > N)
      return false;
    S.assign(P + Pos, Len);
    Pos += Len;
    return true;
  }
  /// Trailing garbage is a protocol violation too.
  [[nodiscard]] bool atEnd() const { return Pos == N; }

private:
  const char *P;
  std::size_t N;
  std::size_t Pos = 0;
};

} // namespace

std::string encodeSubmit(const SubmitMsg &M) {
  std::string Out;
  putStr(Out, M.Path);
  putStr(Out, M.Flags);
  putStr(Out, M.Source);
  return Out;
}

bool decodeSubmit(const std::string &Payload, SubmitMsg &M) {
  Reader R(Payload);
  return R.str(M.Path) && R.str(M.Flags) && R.str(M.Source) && R.atEnd();
}

std::string encodeResult(const ResultMsg &M) {
  std::string Out;
  Out.push_back(static_cast<char>(M.Status));
  Out.push_back(M.Executed ? '\x01' : '\x00');
  Out.push_back(static_cast<char>(M.Trace));
  putU64(Out, static_cast<std::uint64_t>(M.ExitValue));
  putStr(Out, M.Diagnostics);
  return Out;
}

bool decodeResult(const std::string &Payload, ResultMsg &M) {
  Reader R(Payload);
  std::uint8_t Status, Executed, Trace;
  std::uint64_t Exit;
  if (!R.u8(Status) || !R.u8(Executed) || !R.u8(Trace) || !R.u64(Exit) ||
      !R.str(M.Diagnostics) || !R.atEnd())
    return false;
  if (Status > static_cast<std::uint8_t>(ResultStatus::InternalError) ||
      Trace > static_cast<std::uint8_t>(TraceLevel::Disk) || Executed > 1)
    return false;
  M.Status = static_cast<ResultStatus>(Status);
  M.Executed = Executed != 0;
  M.Trace = static_cast<TraceLevel>(Trace);
  M.ExitValue = static_cast<std::int64_t>(Exit);
  return true;
}

std::string encodeReject(const RejectMsg &M) {
  std::string Out;
  Out.push_back(static_cast<char>(M.Code));
  putU32(Out, M.RetryAfterMs);
  putStr(Out, M.Message);
  return Out;
}

bool decodeReject(const std::string &Payload, RejectMsg &M) {
  Reader R(Payload);
  std::uint8_t Code;
  if (!R.u8(Code) || !R.u32(M.RetryAfterMs) || !R.str(M.Message) || !R.atEnd())
    return false;
  if (Code < static_cast<std::uint8_t>(RejectCode::Busy) ||
      Code > static_cast<std::uint8_t>(RejectCode::ShuttingDown))
    return false;
  M.Code = static_cast<RejectCode>(Code);
  return true;
}

std::string encodeStats(const StatsMsg &M) {
  std::string Out;
  Out.push_back(M.JSON ? '\x01' : '\x00');
  return Out;
}

bool decodeStats(const std::string &Payload, StatsMsg &M) {
  Reader R(Payload);
  std::uint8_t J;
  if (!R.u8(J) || !R.atEnd() || J > 1)
    return false;
  M.JSON = J != 0;
  return true;
}

std::string encodeStatsReply(const std::string &Text) {
  std::string Out;
  putStr(Out, Text);
  return Out;
}

bool decodeStatsReply(const std::string &Payload, std::string &Text) {
  Reader R(Payload);
  return R.str(Text) && R.atEnd();
}

std::string encodeFrame(const Frame &F) {
  std::string Out;
  putU32(Out, static_cast<std::uint32_t>(1 + 8 + F.Payload.size()));
  Out.push_back(static_cast<char>(F.Type));
  putU64(Out, F.JobId);
  Out += F.Payload;
  return Out;
}

std::optional<Frame> FrameDecoder::next(std::string &Error) {
  if (Broken)
    return std::nullopt;
  if (Buf.size() < 4)
    return std::nullopt;
  std::uint32_t Len = 0;
  for (int I = 0; I < 4; ++I)
    Len |= static_cast<std::uint32_t>(static_cast<unsigned char>(Buf[I]))
           << (I * 8);
  if (Len < 9 || Len > MaxFrameBytes) {
    Error = "invalid frame length " + std::to_string(Len);
    Broken = true;
    return std::nullopt;
  }
  if (Buf.size() < 4 + static_cast<std::size_t>(Len))
    return std::nullopt;

  Frame F;
  std::uint8_t Type = static_cast<std::uint8_t>(Buf[4]);
  if (Type < static_cast<std::uint8_t>(MsgType::Submit) ||
      Type > static_cast<std::uint8_t>(MsgType::ShutdownAck)) {
    Error = "unknown frame type " + std::to_string(Type);
    Broken = true;
    return std::nullopt;
  }
  F.Type = static_cast<MsgType>(Type);
  F.JobId = 0;
  for (int I = 0; I < 8; ++I)
    F.JobId |= static_cast<std::uint64_t>(static_cast<unsigned char>(Buf[5 + I]))
               << (I * 8);
  F.Payload.assign(Buf, 13, Len - 9);
  Buf.erase(0, 4 + static_cast<std::size_t>(Len));
  return F;
}

const char *resultStatusName(ResultStatus S) {
  switch (S) {
  case ResultStatus::Ok:
    return "ok";
  case ResultStatus::CompileFail:
    return "compile-fail";
  case ResultStatus::Cancelled:
    return "cancelled";
  case ResultStatus::InternalError:
    return "internal-error";
  }
  return "?";
}

const char *rejectCodeName(RejectCode C) {
  switch (C) {
  case RejectCode::Busy:
    return "busy";
  case RejectCode::Quota:
    return "quota";
  case RejectCode::Malformed:
    return "malformed";
  case RejectCode::ShuttingDown:
    return "shutting-down";
  }
  return "?";
}

const char *traceLevelName(TraceLevel T) {
  switch (T) {
  case TraceLevel::Cold:
    return "cold";
  case TraceLevel::L1:
    return "L1 hit";
  case TraceLevel::L2:
    return "L2 hit";
  case TraceLevel::L3:
    return "L3 hit";
  case TraceLevel::Disk:
    return "disk hit";
  }
  return "?";
}

} // namespace mcc::net
