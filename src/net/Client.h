//===--- Client.h - Compile-daemon client ----------------------*- C++ -*-===//
//
// The client half of the framed protocol: connect to a daemon socket,
// push submits/cancels/control verbs, and pull server frames back as
// typed events. Deliberately unopinionated about scheduling — the caller
// (minicc-serve --client, tests) decides how many jobs to keep in flight
// and how to react to Busy/Quota rejections (the retry-after hint is in
// the event). Single-threaded use per Client instance.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_NET_CLIENT_H
#define MCC_NET_CLIENT_H

#include "net/Protocol.h"
#include "net/Socket.h"

#include <cstdint>
#include <string>

namespace mcc::net {

/// One server->client frame, decoded. Which member is meaningful depends
/// on Type (Result / Reject / StatsReply / ShutdownAck).
struct ClientEvent {
  MsgType Type = MsgType::Result;
  std::uint64_t JobId = 0;
  ResultMsg Result;
  RejectMsg Reject;
  std::string Text; ///< StatsReply payload
};

class Client {
public:
  Client() = default;

  bool connect(const std::string &SocketPath, std::string &Error);
  [[nodiscard]] bool connected() const { return Sock.valid(); }

  bool submit(std::uint64_t JobId, const std::string &Path,
              const std::string &Flags, const std::string &Source);
  bool cancel(std::uint64_t JobId);
  bool requestStats(bool JSON);
  bool requestShutdown();

  /// Blocks for the next server frame. Returns false when the server
  /// closed the connection (Error empty) or on a transport/protocol
  /// error (Error set).
  bool next(ClientEvent &Ev, std::string &Error);

  void close() { Sock.close(); }

private:
  bool sendMsg(MsgType Type, std::uint64_t JobId, std::string Payload);

  Socket Sock;
  FrameDecoder Decoder;
};

} // namespace mcc::net

#endif // MCC_NET_CLIENT_H
