//===--- Verifier.cpp - Structural IR validation ---------------------------===//
//
// Catches malformed IR early: unterminated blocks, type mismatches,
// phis inconsistent with predecessors, uses of values from other
// functions... The OpenMPIRBuilder's CanonicalLoopInfo::assertOK builds on
// top of this (loop-skeleton-specific invariants).
//
//===----------------------------------------------------------------------===//
#include "ir/IR.h"

#include <set>
#include <sstream>

namespace mcc::ir {

namespace {

class FunctionVerifier {
public:
  explicit FunctionVerifier(const Function &F) : F(F) {}

  std::string run() {
    if (F.isDeclaration())
      return {};
    collectDefinitions();
    for (const auto &BB : F.blocks())
      verifyBlock(*BB);
    return Errors.str();
  }

private:
  void error(const BasicBlock &BB, const Instruction *I,
             const std::string &Msg) {
    Errors << F.getName() << "/" << BB.getName();
    if (I)
      Errors << " (" << getOpcodeName(I->getOpcode()) << ")";
    Errors << ": " << Msg << "\n";
  }

  void collectDefinitions() {
    for (unsigned I = 0; I < F.getNumArgs(); ++I)
      Defined.insert(F.getArg(I));
    for (const auto &BB : F.blocks()) {
      BlocksInFunction.insert(BB.get());
      for (const auto &I : BB->instructions())
        Defined.insert(I.get());
    }
  }

  void verifyOperand(const BasicBlock &BB, const Instruction &I,
                     const Value *Op) {
    switch (Op->getValueKind()) {
    case Value::ValueKind::ConstantInt:
    case Value::ValueKind::ConstantFP:
    case Value::ValueKind::ConstantNull:
    case Value::ValueKind::Global:
    case Value::ValueKind::Function:
      return;
    case Value::ValueKind::BasicBlock:
      if (!BlocksInFunction.count(ir_cast<BasicBlock>(Op)))
        error(BB, &I, "references block from another function");
      return;
    case Value::ValueKind::Argument:
    case Value::ValueKind::Instruction:
      if (!Defined.count(Op))
        error(BB, &I, "operand not defined in this function");
      return;
    }
  }

  void verifyBlock(const BasicBlock &BB) {
    if (BB.empty()) {
      error(BB, nullptr, "empty basic block");
      return;
    }
    if (!BB.getTerminator())
      error(BB, nullptr, "block is not terminated");

    bool SeenNonPhi = false;
    for (std::size_t Index = 0; Index < BB.size(); ++Index) {
      const Instruction &I = *BB.instructions()[Index];
      if (I.isTerminator() && Index + 1 != BB.size())
        error(BB, &I, "terminator in the middle of a block");

      if (I.getOpcode() == Opcode::Phi) {
        if (SeenNonPhi)
          error(BB, &I, "phi after non-phi instruction");
        verifyPhi(BB, I);
      } else {
        SeenNonPhi = true;
      }

      for (const Value *Op : I.operands()) {
        // A phi may use itself through a backedge; anywhere else a
        // self-referencing instruction cannot dominate its own use.
        if (Op == &I && I.getOpcode() != Opcode::Phi)
          error(BB, &I, "instruction uses itself as an operand");
        verifyOperand(BB, I, Op);
      }

      verifyTypes(BB, I);
    }
  }

  void verifyPhi(const BasicBlock &BB, const Instruction &I) {
    std::vector<BasicBlock *> Preds = BB.predecessors();
    if (I.getNumIncoming() != Preds.size()) {
      error(BB, &I,
            "phi has " + std::to_string(I.getNumIncoming()) +
                " incoming values but block has " +
                std::to_string(Preds.size()) + " predecessors");
      return;
    }
    for (unsigned P = 0; P < I.getNumIncoming(); ++P) {
      BasicBlock *In = I.getIncomingBlock(P);
      bool Found = false;
      for (BasicBlock *Pred : Preds)
        if (Pred == In)
          Found = true;
      if (!Found)
        error(BB, &I, "phi incoming block is not a predecessor");
      if (I.getIncomingValue(P)->getType() != I.getType())
        error(BB, &I, "phi incoming value type mismatch");
    }
  }

  void verifyTypes(const BasicBlock &BB, const Instruction &I) {
    auto Expect = [&](bool Cond, const char *Msg) {
      if (!Cond)
        error(BB, &I, Msg);
    };
    switch (I.getOpcode()) {
    case Opcode::Sub:
      // Pointer difference: ptr - ptr -> i64 is permitted.
      if (I.getType() == IRType::getI64() &&
          I.getOperand(0)->getType()->isPointer() &&
          I.getOperand(1)->getType()->isPointer())
        break;
      [[fallthrough]];
    case Opcode::Add:
    case Opcode::Mul:
    case Opcode::SDiv:
    case Opcode::UDiv:
    case Opcode::SRem:
    case Opcode::URem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::AShr:
    case Opcode::LShr:
      Expect(I.getType()->isInteger(), "integer op with non-integer type");
      Expect(I.getOperand(0)->getType() == I.getType() &&
                 I.getOperand(1)->getType() == I.getType(),
             "operand type mismatch");
      break;
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
      Expect(I.getType()->isDouble(), "fp op with non-fp type");
      Expect(I.getOperand(0)->getType() == I.getType() &&
                 I.getOperand(1)->getType() == I.getType(),
             "operand type mismatch");
      break;
    case Opcode::ICmp:
      Expect(I.getType() == IRType::getI1(), "icmp must produce i1");
      Expect(I.getOperand(0)->getType() == I.getOperand(1)->getType(),
             "icmp operand type mismatch");
      break;
    case Opcode::FCmp:
      Expect(I.getType() == IRType::getI1(), "fcmp must produce i1");
      break;
    case Opcode::Alloca:
      Expect(I.getType()->isPointer(), "alloca must produce ptr");
      Expect(I.ElemTy != nullptr, "alloca without element type");
      break;
    case Opcode::Load:
      Expect(I.getOperand(0)->getType()->isPointer(),
             "load address must be ptr");
      break;
    case Opcode::Store:
      Expect(I.getOperand(1)->getType()->isPointer(),
             "store address must be ptr");
      Expect(I.getType()->isVoid(), "store must be void");
      break;
    case Opcode::GEP:
      Expect(I.getOperand(0)->getType()->isPointer(),
             "gep base must be ptr");
      Expect(I.getOperand(1)->getType()->isInteger(),
             "gep index must be integer");
      Expect(I.ElemTy != nullptr, "gep without element type");
      break;
    case Opcode::Call: {
      const auto *Callee = ir_dyn_cast<Function>(I.getOperand(0));
      if (!Callee) {
        error(BB, &I, "call of non-function value");
        break;
      }
      if (I.getNumOperands() - 1 != Callee->getNumArgs()) {
        error(BB, &I, "call arity mismatch for @" + Callee->getName());
        break;
      }
      for (unsigned A = 0; A < Callee->getNumArgs(); ++A)
        if (I.getOperand(A + 1)->getType() !=
            Callee->getArg(A)->getType())
          error(BB, &I,
                "call argument " + std::to_string(A) + " type mismatch");
      Expect(I.getType() == Callee->getReturnType(),
             "call result type mismatch");
      break;
    }
    case Opcode::Ret: {
      const IRType *RetTy = F.getReturnType();
      if (RetTy->isVoid())
        Expect(I.getNumOperands() == 0, "ret with value in void function");
      else {
        Expect(I.getNumOperands() == 1, "ret without value");
        if (I.getNumOperands() == 1)
          Expect(I.getOperand(0)->getType() == RetTy,
                 "ret value type mismatch");
      }
      break;
    }
    case Opcode::Br:
      if (I.isConditionalBr())
        Expect(I.getOperand(0)->getType() == IRType::getI1(),
               "branch condition must be i1");
      break;
    case Opcode::Select:
      Expect(I.getOperand(0)->getType() == IRType::getI1(),
             "select condition must be i1");
      Expect(I.getOperand(1)->getType() == I.getType() &&
                 I.getOperand(2)->getType() == I.getType(),
             "select operand type mismatch");
      break;
    default:
      break;
    }
  }

  const Function &F;
  std::set<const Value *> Defined;
  std::set<const BasicBlock *> BlocksInFunction;
  std::ostringstream Errors;
};

} // namespace

std::string verifyFunction(const Function &F) {
  return FunctionVerifier(F).run();
}

std::string verifyModule(const Module &M) {
  std::string Errors;
  for (const auto &F : M.functions())
    Errors += verifyFunction(*F);
  return Errors;
}

} // namespace mcc::ir
