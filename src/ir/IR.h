//===--- IR.h - Miniature LLVM-like intermediate representation -*- C++ -*-===//
//
// The IR that CodeGen lowers the AST into (Fig. 1: "source.ll"). Modeled on
// LLVM: a Module of Functions of BasicBlocks of Instructions in SSA form
// (front-end generated code uses allocas rather than phis, like Clang;
// the OpenMPIRBuilder's canonical loop skeleton uses a phi induction
// variable, like LLVM's). Types are opaque-pointer style: there is a single
// 'ptr' type; loads, stores, allocas and GEPs carry their element type.
//
// Loop metadata ("llvm.loop.unroll.*") attaches to latch branch
// instructions and is consumed by the mid-end LoopUnroll pass — the
// deferral mechanism of the paper's Section 2.2.
//
//===----------------------------------------------------------------------===//
#ifndef MCC_IR_IR_H
#define MCC_IR_IR_H

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mcc::ir {

class BasicBlock;
class Function;
class Module;

// ===--------------------------- Types --------------------------------=== //

enum class TypeKind { Void, I1, I8, I32, I64, Double, Ptr };

class IRType {
public:
  [[nodiscard]] TypeKind getKind() const { return K; }
  [[nodiscard]] bool isVoid() const { return K == TypeKind::Void; }
  [[nodiscard]] bool isInteger() const {
    return K == TypeKind::I1 || K == TypeKind::I8 || K == TypeKind::I32 ||
           K == TypeKind::I64;
  }
  [[nodiscard]] bool isDouble() const { return K == TypeKind::Double; }
  [[nodiscard]] bool isPointer() const { return K == TypeKind::Ptr; }

  [[nodiscard]] unsigned getBitWidth() const {
    switch (K) {
    case TypeKind::I1:
      return 1;
    case TypeKind::I8:
      return 8;
    case TypeKind::I32:
      return 32;
    case TypeKind::I64:
    case TypeKind::Ptr:
      return 64;
    case TypeKind::Double:
      return 64;
    case TypeKind::Void:
      return 0;
    }
    return 0;
  }
  [[nodiscard]] unsigned getSizeInBytes() const {
    return K == TypeKind::I1 ? 1 : getBitWidth() / 8;
  }

  [[nodiscard]] const char *getName() const {
    switch (K) {
    case TypeKind::Void:
      return "void";
    case TypeKind::I1:
      return "i1";
    case TypeKind::I8:
      return "i8";
    case TypeKind::I32:
      return "i32";
    case TypeKind::I64:
      return "i64";
    case TypeKind::Double:
      return "double";
    case TypeKind::Ptr:
      return "ptr";
    }
    return "?";
  }

  static const IRType *getVoid();
  static const IRType *getI1();
  static const IRType *getI8();
  static const IRType *getI32();
  static const IRType *getI64();
  static const IRType *getDouble();
  static const IRType *getPtr();

private:
  explicit constexpr IRType(TypeKind K) : K(K) {}
  TypeKind K;
};

// ===--------------------------- Values -------------------------------=== //

class Value {
public:
  enum class ValueKind {
    ConstantInt,
    ConstantFP,
    ConstantNull,
    Argument,
    Global,
    Instruction,
    BasicBlock,
    Function,
  };

  virtual ~Value() = default;

  [[nodiscard]] ValueKind getValueKind() const { return VK; }
  [[nodiscard]] const IRType *getType() const { return Ty; }
  [[nodiscard]] const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

protected:
  Value(ValueKind VK, const IRType *Ty, std::string Name = "")
      : VK(VK), Ty(Ty), Name(std::move(Name)) {}

private:
  ValueKind VK;
  const IRType *Ty;
  std::string Name;
};

template <typename To> To *ir_dyn_cast(Value *V) {
  return (V && To::classof(V)) ? static_cast<To *>(V) : nullptr;
}
template <typename To> const To *ir_dyn_cast(const Value *V) {
  return (V && To::classof(V)) ? static_cast<const To *>(V) : nullptr;
}
template <typename To> To *ir_cast(Value *V) {
  assert(V && To::classof(V) && "bad ir_cast");
  return static_cast<To *>(V);
}
template <typename To> const To *ir_cast(const Value *V) {
  assert(V && To::classof(V) && "bad ir_cast");
  return static_cast<const To *>(V);
}

class ConstantInt final : public Value {
public:
  ConstantInt(const IRType *Ty, std::int64_t V)
      : Value(ValueKind::ConstantInt, Ty), V(V) {
    assert(Ty->isInteger());
  }
  [[nodiscard]] std::int64_t getValue() const { return V; }
  [[nodiscard]] std::uint64_t getZExtValue() const {
    unsigned Bits = getType()->getBitWidth();
    if (Bits >= 64)
      return static_cast<std::uint64_t>(V);
    return static_cast<std::uint64_t>(V) & ((1ULL << Bits) - 1);
  }
  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::ConstantInt;
  }

private:
  std::int64_t V;
};

class ConstantFP final : public Value {
public:
  explicit ConstantFP(double V)
      : Value(ValueKind::ConstantFP, IRType::getDouble()), V(V) {}
  [[nodiscard]] double getValue() const { return V; }
  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::ConstantFP;
  }

private:
  double V;
};

class ConstantNull final : public Value {
public:
  ConstantNull() : Value(ValueKind::ConstantNull, IRType::getPtr()) {}
  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::ConstantNull;
  }
};

class Argument final : public Value {
public:
  Argument(const IRType *Ty, std::string Name, unsigned Index)
      : Value(ValueKind::Argument, Ty, std::move(Name)), Index(Index) {}
  [[nodiscard]] unsigned getIndex() const { return Index; }
  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Argument;
  }

private:
  unsigned Index;
};

/// A module-level variable; its Value is the address (type ptr).
class GlobalVariable final : public Value {
public:
  GlobalVariable(std::string Name, const IRType *ElemTy,
                 std::uint64_t NumElements)
      : Value(ValueKind::Global, IRType::getPtr(), std::move(Name)),
        ElemTy(ElemTy), NumElements(NumElements) {}

  [[nodiscard]] const IRType *getElementType() const { return ElemTy; }
  [[nodiscard]] std::uint64_t getNumElements() const { return NumElements; }
  [[nodiscard]] std::uint64_t getSizeInBytes() const {
    return NumElements * ElemTy->getSizeInBytes();
  }

  /// Optional scalar initializer (integers stored sign-extended).
  std::vector<std::int64_t> IntInit;
  std::vector<double> FPInit;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Global;
  }

private:
  const IRType *ElemTy;
  std::uint64_t NumElements;
};

// ===------------------------ Instructions ----------------------------=== //

enum class Opcode {
  // Memory
  Alloca, // [numElements : i64]           (ElemTy = allocated type)
  Load,   // [ptr]                         (result type = loaded type)
  Store,  // [value, ptr]
  GEP,    // [ptr, index : int]            (ElemTy = element type; scaled)
  // Integer arithmetic
  Add,
  Sub,
  Mul,
  SDiv,
  UDiv,
  SRem,
  URem,
  And,
  Or,
  Xor,
  Shl,
  AShr,
  LShr,
  // Floating point
  FAdd,
  FSub,
  FMul,
  FDiv,
  FNeg,
  // Comparisons (predicate in CmpPred)
  ICmp,
  FCmp,
  // Casts
  ZExt,
  SExt,
  Trunc,
  SIToFP,
  UIToFP,
  FPToSI,
  FPToUI,
  FPExt, // modeled as identity (single double type)
  // Control flow
  Br,     // [target] or [cond, trueBB, falseBB]
  Ret,    // [] or [value]
  Call,   // [callee, args...]
  Select, // [cond, trueV, falseV]
  Phi,    // [v0, bb0, v1, bb1, ...]
  Unreachable,
};

const char *getOpcodeName(Opcode Op);

enum class CmpPred {
  EQ,
  NE,
  SLT,
  SLE,
  SGT,
  SGE,
  ULT,
  ULE,
  UGT,
  UGE,
  // FCmp uses the ordered subset
  OEQ,
  ONE,
  OLT,
  OLE,
  OGT,
  OGE,
};

const char *getPredName(CmpPred P);

/// Loop metadata attached to a loop's latch branch, mirroring the
/// llvm.loop.unroll.* metadata Clang emits for LoopHintAttr (paper
/// Section 2.2). Consumed (and cleared) by the mid-end LoopUnroll pass.
struct LoopMetadata {
  bool UnrollEnable = false; // llvm.loop.unroll.enable
  bool UnrollFull = false;   // llvm.loop.unroll.full
  unsigned UnrollCount = 0;  // llvm.loop.unroll.count(N)
  bool Vectorize = false;    // llvm.loop.vectorize.enable
  bool UnrollDisable = false; // set after processing to prevent re-unrolling

  [[nodiscard]] bool any() const {
    return UnrollEnable || UnrollFull || UnrollCount > 0 || Vectorize ||
           UnrollDisable;
  }
};

class Instruction final : public Value {
public:
  Instruction(Opcode Op, const IRType *Ty, std::vector<Value *> Operands,
              std::string Name = "")
      : Value(ValueKind::Instruction, Ty, std::move(Name)), Op(Op),
        Operands(std::move(Operands)) {}

  [[nodiscard]] Opcode getOpcode() const { return Op; }
  [[nodiscard]] const std::vector<Value *> &operands() const {
    return Operands;
  }
  [[nodiscard]] Value *getOperand(unsigned I) const { return Operands[I]; }
  void setOperand(unsigned I, Value *V) { Operands[I] = V; }
  /// Replaces the whole operand list (used by phi pruning).
  void setOperands(std::vector<Value *> NewOps) {
    Operands = std::move(NewOps);
  }
  [[nodiscard]] unsigned getNumOperands() const {
    return static_cast<unsigned>(Operands.size());
  }

  [[nodiscard]] BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  // Cmp predicate (ICmp/FCmp only).
  CmpPred Pred = CmpPred::EQ;
  // Element type for Alloca / Load / GEP; meaningless otherwise.
  const IRType *ElemTy = nullptr;
  // Loop metadata (Br only).
  LoopMetadata LoopMD;

  [[nodiscard]] bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::Ret ||
           Op == Opcode::Unreachable;
  }
  [[nodiscard]] bool isConditionalBr() const {
    return Op == Opcode::Br && Operands.size() == 3;
  }

  /// For Br: the successor blocks.
  [[nodiscard]] BasicBlock *getSuccessor(unsigned I) const;
  [[nodiscard]] unsigned getNumSuccessors() const {
    if (Op != Opcode::Br)
      return 0;
    return isConditionalBr() ? 2 : 1;
  }
  void setSuccessor(unsigned I, BasicBlock *BB);

  /// For Phi: adds an incoming (value, block) pair.
  void addIncoming(Value *V, BasicBlock *BB);
  [[nodiscard]] unsigned getNumIncoming() const {
    return getNumOperands() / 2;
  }
  [[nodiscard]] Value *getIncomingValue(unsigned I) const {
    return Operands[2 * I];
  }
  [[nodiscard]] BasicBlock *getIncomingBlock(unsigned I) const;
  /// Replaces the incoming block \p Old with \p New (value unchanged).
  void replaceIncomingBlock(BasicBlock *Old, BasicBlock *New);

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Instruction;
  }

private:
  Opcode Op;
  std::vector<Value *> Operands;
  BasicBlock *Parent = nullptr;
};

// ===----------------------- BasicBlock / Function --------------------=== //

class BasicBlock final : public Value {
public:
  explicit BasicBlock(std::string Name)
      : Value(ValueKind::BasicBlock, IRType::getPtr(), std::move(Name)) {}

  [[nodiscard]] Function *getParent() const { return Parent; }
  void setParent(Function *F) { Parent = F; }

  [[nodiscard]] const std::vector<std::unique_ptr<Instruction>> &
  instructions() const {
    return Insts;
  }
  [[nodiscard]] bool empty() const { return Insts.empty(); }
  [[nodiscard]] std::size_t size() const { return Insts.size(); }
  [[nodiscard]] Instruction *front() const { return Insts.front().get(); }
  [[nodiscard]] Instruction *getTerminator() const {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back().get();
  }

  Instruction *append(std::unique_ptr<Instruction> I) {
    I->setParent(this);
    Insts.push_back(std::move(I));
    return Insts.back().get();
  }
  Instruction *insertAt(std::size_t Index, std::unique_ptr<Instruction> I) {
    I->setParent(this);
    auto It = Insts.begin() + static_cast<std::ptrdiff_t>(Index);
    return Insts.insert(It, std::move(I))->get();
  }
  /// Removes and destroys the instruction at \p Index.
  void erase(std::size_t Index) {
    Insts.erase(Insts.begin() + static_cast<std::ptrdiff_t>(Index));
  }
  /// Removes the instruction, transferring ownership.
  std::unique_ptr<Instruction> take(std::size_t Index) {
    auto I = std::move(Insts[Index]);
    Insts.erase(Insts.begin() + static_cast<std::ptrdiff_t>(Index));
    return I;
  }

  /// The blocks branching to this one (computed by scanning the parent).
  [[nodiscard]] std::vector<BasicBlock *> predecessors() const;

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::BasicBlock;
  }

private:
  Function *Parent = nullptr;
  std::vector<std::unique_ptr<Instruction>> Insts;
};

class Function final : public Value {
public:
  Function(std::string Name, const IRType *RetTy,
           std::vector<const IRType *> ParamTys,
           std::vector<std::string> ParamNames = {})
      : Value(ValueKind::Function, IRType::getPtr(), std::move(Name)),
        RetTy(RetTy) {
    for (unsigned I = 0; I < ParamTys.size(); ++I) {
      std::string PName =
          I < ParamNames.size() ? ParamNames[I] : "arg" + std::to_string(I);
      Args.push_back(
          std::make_unique<Argument>(ParamTys[I], std::move(PName), I));
    }
  }

  [[nodiscard]] const IRType *getReturnType() const { return RetTy; }
  [[nodiscard]] unsigned getNumArgs() const {
    return static_cast<unsigned>(Args.size());
  }
  [[nodiscard]] Argument *getArg(unsigned I) const { return Args[I].get(); }

  [[nodiscard]] bool isDeclaration() const { return Blocks.empty(); }

  [[nodiscard]] const std::vector<std::unique_ptr<BasicBlock>> &
  blocks() const {
    return Blocks;
  }
  [[nodiscard]] BasicBlock *getEntryBlock() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }

  BasicBlock *createBlock(std::string BlockName) {
    Blocks.push_back(std::make_unique<BasicBlock>(uniquify(BlockName)));
    Blocks.back()->setParent(this);
    return Blocks.back().get();
  }

  /// Inserts \p BB after \p After (or at the end when null).
  BasicBlock *createBlockAfter(BasicBlock *After, std::string BlockName);

  /// Removes the block (must have no predecessors except itself).
  void eraseBlock(BasicBlock *BB);

  /// Makes a value name unique within this function.
  std::string uniquify(const std::string &Base) {
    unsigned &N = NameCounters[Base];
    if (N++ == 0)
      return Base;
    return Base + "." + std::to_string(N - 1);
  }

  static bool classof(const Value *V) {
    return V->getValueKind() == ValueKind::Function;
  }

private:
  const IRType *RetTy;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::map<std::string, unsigned> NameCounters;
};

class Module {
public:
  explicit Module(std::string Name = "module") : Name(std::move(Name)) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  [[nodiscard]] const std::string &getName() const { return Name; }

  Function *createFunction(std::string FnName, const IRType *RetTy,
                           std::vector<const IRType *> ParamTys,
                           std::vector<std::string> ParamNames = {}) {
    Functions.push_back(std::make_unique<Function>(
        std::move(FnName), RetTy, std::move(ParamTys),
        std::move(ParamNames)));
    return Functions.back().get();
  }

  [[nodiscard]] Function *getFunction(const std::string &FnName) const {
    for (const auto &F : Functions)
      if (F->getName() == FnName)
        return F.get();
    return nullptr;
  }

  Function *getOrInsertFunction(const std::string &FnName,
                                const IRType *RetTy,
                                std::vector<const IRType *> ParamTys) {
    if (Function *F = getFunction(FnName))
      return F;
    return createFunction(FnName, RetTy, std::move(ParamTys));
  }

  GlobalVariable *createGlobal(std::string GName, const IRType *ElemTy,
                               std::uint64_t NumElements) {
    Globals.push_back(std::make_unique<GlobalVariable>(std::move(GName),
                                                       ElemTy, NumElements));
    return Globals.back().get();
  }
  [[nodiscard]] GlobalVariable *getGlobal(const std::string &GName) const {
    for (const auto &G : Globals)
      if (G->getName() == GName)
        return G.get();
    return nullptr;
  }

  [[nodiscard]] const std::vector<std::unique_ptr<Function>> &
  functions() const {
    return Functions;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<GlobalVariable>> &
  globals() const {
    return Globals;
  }

  // --- Uniqued constants (owned by the module) ---
  ConstantInt *getInt(const IRType *Ty, std::int64_t V);
  ConstantInt *getI1(bool V) { return getInt(IRType::getI1(), V); }
  ConstantInt *getI32(std::int32_t V) { return getInt(IRType::getI32(), V); }
  ConstantInt *getI64(std::int64_t V) { return getInt(IRType::getI64(), V); }
  ConstantFP *getDouble(double V);
  ConstantNull *getNullPtr();

private:
  std::string Name;
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  std::map<std::pair<const IRType *, std::int64_t>,
           std::unique_ptr<ConstantInt>>
      IntConstants;
  std::map<double, std::unique_ptr<ConstantFP>> FPConstants;
  std::unique_ptr<ConstantNull> NullPtr;
};

// ===--------------------------- Utilities ----------------------------=== //

/// Dense value numbering for one function: arguments first, then every
/// value-producing (non-void) instruction in block order. This is the one
/// layout both execution engines agree on — the tree-walker's slot map and
/// the bytecode compiler's virtual-register file are built from it, so a
/// value's number is stable across backends.
struct ValueNumbering {
  std::map<const Value *, unsigned> Index;
  unsigned NumArgs = 0;
  unsigned NumValues = 0; ///< NumArgs + value-producing instructions
};

ValueNumbering numberFunctionValues(const Function &F);

/// Renders the module as LLVM-flavored text.
std::string printModule(const Module &M);
std::string printFunction(const Function &F);

/// Structural validation: every block terminated, operands defined,
/// phis consistent with predecessors, calls arity-correct, ... Returns an
/// empty string when valid; otherwise a description of the first problems.
std::string verifyModule(const Module &M);
std::string verifyFunction(const Function &F);

} // namespace mcc::ir

#endif // MCC_IR_IR_H
