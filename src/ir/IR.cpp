#include "ir/IR.h"

#include <algorithm>

namespace mcc::ir {

const IRType *IRType::getVoid() {
  static constexpr IRType T(TypeKind::Void);
  return &T;
}
const IRType *IRType::getI1() {
  static constexpr IRType T(TypeKind::I1);
  return &T;
}
const IRType *IRType::getI8() {
  static constexpr IRType T(TypeKind::I8);
  return &T;
}
const IRType *IRType::getI32() {
  static constexpr IRType T(TypeKind::I32);
  return &T;
}
const IRType *IRType::getI64() {
  static constexpr IRType T(TypeKind::I64);
  return &T;
}
const IRType *IRType::getDouble() {
  static constexpr IRType T(TypeKind::Double);
  return &T;
}
const IRType *IRType::getPtr() {
  static constexpr IRType T(TypeKind::Ptr);
  return &T;
}

const char *getOpcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Alloca:
    return "alloca";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::GEP:
    return "getelementptr";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::SDiv:
    return "sdiv";
  case Opcode::UDiv:
    return "udiv";
  case Opcode::SRem:
    return "srem";
  case Opcode::URem:
    return "urem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::AShr:
    return "ashr";
  case Opcode::LShr:
    return "lshr";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FNeg:
    return "fneg";
  case Opcode::ICmp:
    return "icmp";
  case Opcode::FCmp:
    return "fcmp";
  case Opcode::ZExt:
    return "zext";
  case Opcode::SExt:
    return "sext";
  case Opcode::Trunc:
    return "trunc";
  case Opcode::SIToFP:
    return "sitofp";
  case Opcode::UIToFP:
    return "uitofp";
  case Opcode::FPToSI:
    return "fptosi";
  case Opcode::FPToUI:
    return "fptoui";
  case Opcode::FPExt:
    return "fpext";
  case Opcode::Br:
    return "br";
  case Opcode::Ret:
    return "ret";
  case Opcode::Call:
    return "call";
  case Opcode::Select:
    return "select";
  case Opcode::Phi:
    return "phi";
  case Opcode::Unreachable:
    return "unreachable";
  }
  return "?";
}

const char *getPredName(CmpPred P) {
  switch (P) {
  case CmpPred::EQ:
    return "eq";
  case CmpPred::NE:
    return "ne";
  case CmpPred::SLT:
    return "slt";
  case CmpPred::SLE:
    return "sle";
  case CmpPred::SGT:
    return "sgt";
  case CmpPred::SGE:
    return "sge";
  case CmpPred::ULT:
    return "ult";
  case CmpPred::ULE:
    return "ule";
  case CmpPred::UGT:
    return "ugt";
  case CmpPred::UGE:
    return "uge";
  case CmpPred::OEQ:
    return "oeq";
  case CmpPred::ONE:
    return "one";
  case CmpPred::OLT:
    return "olt";
  case CmpPred::OLE:
    return "ole";
  case CmpPred::OGT:
    return "ogt";
  case CmpPred::OGE:
    return "oge";
  }
  return "?";
}

BasicBlock *Instruction::getSuccessor(unsigned I) const {
  assert(getOpcode() == Opcode::Br);
  if (isConditionalBr())
    return ir_cast<BasicBlock>(Operands[1 + I]);
  assert(I == 0);
  return ir_cast<BasicBlock>(Operands[0]);
}

void Instruction::setSuccessor(unsigned I, BasicBlock *BB) {
  assert(getOpcode() == Opcode::Br);
  if (isConditionalBr())
    Operands[1 + I] = BB;
  else {
    assert(I == 0);
    Operands[0] = BB;
  }
}

void Instruction::addIncoming(Value *V, BasicBlock *BB) {
  assert(getOpcode() == Opcode::Phi);
  Operands.push_back(V);
  Operands.push_back(BB);
}

BasicBlock *Instruction::getIncomingBlock(unsigned I) const {
  assert(getOpcode() == Opcode::Phi);
  return ir_cast<BasicBlock>(Operands[2 * I + 1]);
}

void Instruction::replaceIncomingBlock(BasicBlock *Old, BasicBlock *New) {
  assert(getOpcode() == Opcode::Phi);
  for (unsigned I = 1; I < Operands.size(); I += 2)
    if (Operands[I] == Old)
      Operands[I] = New;
}

std::vector<BasicBlock *> BasicBlock::predecessors() const {
  std::vector<BasicBlock *> Preds;
  if (!Parent)
    return Preds;
  for (const auto &BB : Parent->blocks()) {
    Instruction *Term = BB->getTerminator();
    if (!Term || Term->getOpcode() != Opcode::Br)
      continue;
    for (unsigned I = 0; I < Term->getNumSuccessors(); ++I)
      if (Term->getSuccessor(I) == this) {
        Preds.push_back(BB.get());
        break;
      }
  }
  return Preds;
}

BasicBlock *Function::createBlockAfter(BasicBlock *After,
                                       std::string BlockName) {
  auto NewBB = std::make_unique<BasicBlock>(uniquify(std::move(BlockName)));
  NewBB->setParent(this);
  BasicBlock *Raw = NewBB.get();
  if (!After) {
    Blocks.push_back(std::move(NewBB));
    return Raw;
  }
  auto It = std::find_if(Blocks.begin(), Blocks.end(),
                         [After](const auto &B) { return B.get() == After; });
  assert(It != Blocks.end() && "After block not in function");
  Blocks.insert(It + 1, std::move(NewBB));
  return Raw;
}

void Function::eraseBlock(BasicBlock *BB) {
  auto It = std::find_if(Blocks.begin(), Blocks.end(),
                         [BB](const auto &B) { return B.get() == BB; });
  assert(It != Blocks.end() && "block not in function");
  Blocks.erase(It);
}

ValueNumbering numberFunctionValues(const Function &F) {
  ValueNumbering VN;
  for (unsigned I = 0; I < F.getNumArgs(); ++I)
    VN.Index[F.getArg(I)] = VN.NumValues++;
  VN.NumArgs = VN.NumValues;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (!I->getType()->isVoid())
        VN.Index[I.get()] = VN.NumValues++;
  return VN;
}

ConstantInt *Module::getInt(const IRType *Ty, std::int64_t V) {
  auto Key = std::make_pair(Ty, V);
  auto It = IntConstants.find(Key);
  if (It != IntConstants.end())
    return It->second.get();
  auto C = std::make_unique<ConstantInt>(Ty, V);
  ConstantInt *Raw = C.get();
  IntConstants[Key] = std::move(C);
  return Raw;
}

ConstantFP *Module::getDouble(double V) {
  auto It = FPConstants.find(V);
  if (It != FPConstants.end())
    return It->second.get();
  auto C = std::make_unique<ConstantFP>(V);
  ConstantFP *Raw = C.get();
  FPConstants[V] = std::move(C);
  return Raw;
}

ConstantNull *Module::getNullPtr() {
  if (!NullPtr)
    NullPtr = std::make_unique<ConstantNull>();
  return NullPtr.get();
}

} // namespace mcc::ir
