//===--- IRPrinter.cpp - LLVM-flavored textual IR output -------------------===//
#include "ir/IR.h"

#include <map>
#include <set>
#include <sstream>

namespace mcc::ir {

namespace {

/// Assigns %N names to unnamed values within a function.
class ValueNamer {
public:
  explicit ValueNamer(const Function &F) {
    for (unsigned I = 0; I < F.getNumArgs(); ++I)
      nameOf(F.getArg(I));
    for (const auto &BB : F.blocks()) {
      BlockNames[BB.get()] = BB->getName();
      for (const auto &I : BB->instructions())
        if (!I->getType()->isVoid())
          nameOf(I.get());
    }
  }

  std::string operator()(const Value *V) {
    if (const auto *CI = ir_dyn_cast<ConstantInt>(V))
      return std::to_string(CI->getValue());
    if (const auto *CF = ir_dyn_cast<ConstantFP>(V)) {
      std::ostringstream SS;
      SS << CF->getValue();
      std::string S = SS.str();
      if (S.find('.') == std::string::npos &&
          S.find('e') == std::string::npos &&
          S.find("inf") == std::string::npos &&
          S.find("nan") == std::string::npos)
        S += ".0";
      return S;
    }
    if (ir_dyn_cast<ConstantNull>(V))
      return "null";
    if (const auto *BB = ir_dyn_cast<BasicBlock>(V))
      return "%" + BB->getName();
    if (const auto *F = ir_dyn_cast<Function>(V))
      return "@" + F->getName();
    if (const auto *G = ir_dyn_cast<GlobalVariable>(V))
      return "@" + G->getName();
    return "%" + nameOf(V);
  }

private:
  std::string nameOf(const Value *V) {
    auto It = Names.find(V);
    if (It != Names.end())
      return It->second;
    std::string Name =
        V->getName().empty() ? std::to_string(NextId++) : V->getName();
    // Disambiguate duplicate explicit names.
    while (UsedNames.count(Name))
      Name += "." + std::to_string(NextId++);
    UsedNames.insert(Name);
    Names[V] = Name;
    return Name;
  }

  std::map<const Value *, std::string> Names;
  std::map<const BasicBlock *, std::string> BlockNames;
  std::set<std::string> UsedNames;
  unsigned NextId = 0;
};

std::string typedName(ValueNamer &N, const Value *V) {
  return std::string(V->getType()->getName()) + " " + N(V);
}

void printInstruction(std::ostringstream &OS, ValueNamer &N,
                      const Instruction &I) {
  OS << "  ";
  if (!I.getType()->isVoid())
    OS << N(&I) << " = ";

  switch (I.getOpcode()) {
  case Opcode::Alloca:
    OS << "alloca " << I.ElemTy->getName();
    if (const auto *CI = ir_dyn_cast<ConstantInt>(I.getOperand(0));
        !CI || CI->getValue() != 1)
      OS << ", i64 " << N(I.getOperand(0));
    break;
  case Opcode::Load:
    OS << "load " << I.getType()->getName() << ", ptr "
       << N(I.getOperand(0));
    break;
  case Opcode::Store:
    OS << "store " << typedName(N, I.getOperand(0)) << ", ptr "
       << N(I.getOperand(1));
    break;
  case Opcode::GEP:
    OS << "getelementptr " << I.ElemTy->getName() << ", ptr "
       << N(I.getOperand(0)) << ", " << typedName(N, I.getOperand(1));
    break;
  case Opcode::ICmp:
  case Opcode::FCmp:
    OS << getOpcodeName(I.getOpcode()) << " " << getPredName(I.Pred) << " "
       << typedName(N, I.getOperand(0)) << ", " << N(I.getOperand(1));
    break;
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::Trunc:
  case Opcode::SIToFP:
  case Opcode::UIToFP:
  case Opcode::FPToSI:
  case Opcode::FPToUI:
  case Opcode::FPExt:
    OS << getOpcodeName(I.getOpcode()) << " " << typedName(N, I.getOperand(0))
       << " to " << I.getType()->getName();
    break;
  case Opcode::Br:
    if (I.isConditionalBr())
      OS << "br i1 " << N(I.getOperand(0)) << ", label "
         << N(I.getOperand(1)) << ", label " << N(I.getOperand(2));
    else
      OS << "br label " << N(I.getOperand(0));
    if (I.LoopMD.any()) {
      OS << "  ; !llvm.loop";
      if (I.LoopMD.UnrollFull)
        OS << " !unroll.full";
      if (I.LoopMD.UnrollCount)
        OS << " !unroll.count(" << I.LoopMD.UnrollCount << ")";
      if (I.LoopMD.UnrollEnable)
        OS << " !unroll.enable";
      if (I.LoopMD.Vectorize)
        OS << " !vectorize.enable";
      if (I.LoopMD.UnrollDisable)
        OS << " !unroll.disable";
    }
    break;
  case Opcode::Ret:
    OS << "ret";
    if (I.getNumOperands() > 0)
      OS << " " << typedName(N, I.getOperand(0));
    else
      OS << " void";
    break;
  case Opcode::Call: {
    const auto *Callee = ir_cast<Function>(I.getOperand(0));
    OS << "call " << Callee->getReturnType()->getName() << " @"
       << Callee->getName() << "(";
    for (unsigned A = 1; A < I.getNumOperands(); ++A) {
      if (A > 1)
        OS << ", ";
      OS << typedName(N, I.getOperand(A));
    }
    OS << ")";
    break;
  }
  case Opcode::Select:
    OS << "select i1 " << N(I.getOperand(0)) << ", "
       << typedName(N, I.getOperand(1)) << ", "
       << typedName(N, I.getOperand(2));
    break;
  case Opcode::Phi: {
    OS << "phi " << I.getType()->getName() << " ";
    for (unsigned P = 0; P < I.getNumIncoming(); ++P) {
      if (P > 0)
        OS << ", ";
      OS << "[ " << N(I.getIncomingValue(P)) << ", "
         << N(I.getIncomingBlock(P)) << " ]";
    }
    break;
  }
  case Opcode::Unreachable:
    OS << "unreachable";
    break;
  default: // binary arithmetic
    OS << getOpcodeName(I.getOpcode()) << " "
       << typedName(N, I.getOperand(0)) << ", " << N(I.getOperand(1));
    break;
  }
  OS << "\n";
}

void printFunctionImpl(std::ostringstream &OS, const Function &F) {
  ValueNamer N(F);
  OS << (F.isDeclaration() ? "declare " : "define ")
     << F.getReturnType()->getName() << " @" << F.getName() << "(";
  for (unsigned I = 0; I < F.getNumArgs(); ++I) {
    if (I > 0)
      OS << ", ";
    OS << F.getArg(I)->getType()->getName() << " " << N(F.getArg(I));
  }
  OS << ")";
  if (F.isDeclaration()) {
    OS << "\n";
    return;
  }
  OS << " {\n";
  bool FirstBlock = true;
  for (const auto &BB : F.blocks()) {
    if (!FirstBlock)
      OS << "\n";
    FirstBlock = false;
    OS << BB->getName() << ":\n";
    for (const auto &I : BB->instructions())
      printInstruction(OS, N, *I);
  }
  OS << "}\n";
}

} // namespace

std::string printFunction(const Function &F) {
  std::ostringstream OS;
  printFunctionImpl(OS, F);
  return OS.str();
}

std::string printModule(const Module &M) {
  std::ostringstream OS;
  OS << "; ModuleID = '" << M.getName() << "'\n";
  for (const auto &G : M.globals()) {
    OS << "@" << G->getName() << " = global " << G->getElementType()->getName();
    if (G->getNumElements() != 1)
      OS << " x " << G->getNumElements();
    OS << " zeroinitializer\n";
  }
  if (!M.globals().empty())
    OS << "\n";
  for (const auto &F : M.functions()) {
    printFunctionImpl(OS, *F);
    OS << "\n";
  }
  return OS.str();
}

} // namespace mcc::ir
